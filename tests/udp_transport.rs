//! Real-socket integration tests: the *same* `ServerSession`/`ClientSession`
//! code paths the `SimMulticast` tests use, driven over `std::net::UdpSocket`
//! loopback — no simulation-only branches anywhere.  The server runs in a
//! background thread (the I/O driver the sans-I/O design asks for); the
//! client pumps its transport on the test thread.

use digital_fountain::proto::{
    ClientSession, ControlRequest, ControlResponse, Driver, DriverConfig, DriverEvent, EventLoop,
    FountainServer, LoopEvent, Pacing, ServerSession, SessionConfig, SessionHandle, Transport,
    UdpMulticastTransport,
};
use std::net::{Ipv4Addr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn patterned_file(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + salt) % 251) as u8).collect()
}

/// Drive `client` over `transport` until completion or `deadline`, passing
/// every received datagram through `filter` first (identity for lossless
/// runs, a deterministic dropper for the artificial-loss run).
///
/// The receive loop blocks in `recv_timeout` (kernel `poll(2)`, no
/// spin-and-sleep): if the sender dies mid-download the loop still wakes up
/// every interval, reaches the deadline check, and fails loudly instead of
/// hanging CI.
fn download(
    client: &mut ClientSession,
    transport: &mut UdpMulticastTransport,
    deadline: Duration,
    mut filter: impl FnMut(&[u8]) -> bool,
) {
    let t0 = Instant::now();
    while !client.is_complete() {
        assert!(
            t0.elapsed() < deadline,
            "download did not complete within {deadline:?}: {:?}",
            client.stats()
        );
        if let Some((_group, datagram)) = transport.recv_timeout(Duration::from_millis(100)) {
            if filter(&datagram) {
                client.handle_datagram(datagram);
            }
        }
    }
}

/// Background server driver: answer control requests and pump the carousel
/// until `stop` is raised.
fn serve(
    mut server: FountainServer,
    control: UdpSocket,
    mut transport: UdpMulticastTransport,
    stop: Arc<AtomicBool>,
) {
    control
        .set_nonblocking(true)
        .expect("nonblocking control socket");
    let mut buf = [0u8; 2048];
    let mut burst = 0u32;
    // ordering: Relaxed — the flag is a plain shutdown signal; thread::join
    // below is the synchronization point, no data rides on this load.
    while !stop.load(Ordering::Relaxed) {
        while let Ok((len, from)) = control.recv_from(&mut buf) {
            let reply = server.handle_control_datagram(&buf[..len]);
            let _ = control.send_to(&reply, from);
        }
        if let Some((group, datagram)) = server.poll_transmit() {
            transport.send(group, datagram);
        }
        burst += 1;
        if burst.is_multiple_of(64) {
            // Pace the carousel so the loopback receiver is not hosed by
            // kernel-buffer overruns (which would be mere loss, but slow the
            // test down).
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Fetch a session's ControlInfo over the real UDP control channel.
fn describe_over_udp(control_addr: (Ipv4Addr, u16), session_id: u32) -> ClientSession {
    let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind control client");
    socket
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let mut buf = [0u8; 2048];
    // The control channel is UDP: retry the request a few times like a real
    // client would.
    for _ in 0..20 {
        socket
            .send_to(
                &ControlRequest::Describe { session_id }.to_bytes(),
                control_addr,
            )
            .expect("send control request");
        if let Ok((len, _)) = socket.recv_from(&mut buf) {
            match ControlResponse::from_bytes(&buf[..len]) {
                Some(ControlResponse::Session { info }) => {
                    return ClientSession::new(info).expect("valid control info")
                }
                other => panic!("unexpected control response {other:?}"),
            }
        }
    }
    panic!("control channel never answered");
}

#[test]
fn udp_loopback_lossless_download_via_control_channel() {
    let control_port = 48109;
    let data_port = 48110;
    let file = patterned_file(80_000, 1);

    let mut server = FountainServer::new();
    let id = server
        .add_session(
            &file,
            SessionConfig {
                layers: 2,
                code_seed: 77,
                ..SessionConfig::default()
            },
        )
        .unwrap();
    let control = UdpSocket::bind((Ipv4Addr::LOCALHOST, control_port)).expect("bind control");
    let server_transport = UdpMulticastTransport::loopback(data_port).unwrap();

    let mut client_transport = UdpMulticastTransport::loopback(data_port).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = stop.clone();
        std::thread::spawn(move || serve(server, control, server_transport, stop))
    };
    // A fountain client can join the carousel at any time: fetch the session
    // parameters over the real UDP control channel, then subscribe.
    let mut client = describe_over_udp((Ipv4Addr::LOCALHOST, control_port), id);
    for group in client.groups().collect::<Vec<_>>() {
        client_transport.join(group).unwrap();
    }

    download(
        &mut client,
        &mut client_transport,
        Duration::from_secs(60),
        |_| true,
    );
    // ordering: Relaxed — shutdown signal only; the join right below is the
    // synchronization point.
    stop.store(true, Ordering::Relaxed);
    server_thread.join().unwrap();

    assert_eq!(client.file().unwrap(), &file[..]);
    assert!(client.stats().decode_attempts() >= 1);
}

#[test]
fn udp_loopback_download_survives_artificially_dropped_datagrams() {
    let data_port = 48210;
    let file = patterned_file(60_000, 2);

    let mut session = ServerSession::new(
        &file,
        SessionConfig {
            layers: 1,
            code_seed: 5,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let control_info = session.control_info().clone();
    let mut server_transport = UdpMulticastTransport::loopback(data_port).unwrap();

    let mut client = ClientSession::new(control_info).unwrap();
    let mut client_transport = UdpMulticastTransport::loopback(data_port).unwrap();
    for group in client.groups().collect::<Vec<_>>() {
        client_transport.join(group).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut sent = 0u32;
            // ordering: Relaxed — shutdown signal only, synchronized by join.
            while !stop.load(Ordering::Relaxed) {
                session.send_round(&mut server_transport);
                sent += 1;
                // A round is a buffer-sized burst; give the receiver air.
                std::thread::sleep(Duration::from_millis(if sent < 4 { 1 } else { 5 }));
            }
        })
    };

    // Drop every third datagram *after* the socket delivered it: on top of
    // whatever genuine kernel-buffer loss occurs, the client provably
    // tolerates a 33 % loss process on a real socket path.
    let mut counter = 0u64;
    download(
        &mut client,
        &mut client_transport,
        Duration::from_secs(60),
        move |_| {
            counter += 1;
            !counter.is_multiple_of(3)
        },
    );
    // ordering: Relaxed — shutdown signal only; the join right below is the
    // synchronization point.
    stop.store(true, Ordering::Relaxed);
    server_thread.join().unwrap();

    assert_eq!(client.file().unwrap(), &file[..]);
    // The artificial dropper alone guarantees duplicates and a reception
    // efficiency visibly below 1.
    let stats = client.stats();
    assert!(stats.received() >= stats.k());
    assert!(stats.reception_efficiency() <= 1.0);
}

#[test]
fn udp_loopback_layered_download_with_receiver_driven_joins() {
    // The layered congestion-control mode over real sockets: the client
    // starts subscribed to the base layer only (one bound UDP port), climbs
    // by joining further group ports as its session emits Join intents at
    // clean sync points, and completes the download — the same
    // ClientSession code path the SimMulticast layered tests drive.
    let control_port = 48409;
    let data_port = 48410;
    let file = patterned_file(60_000, 4);

    let mut server = FountainServer::new();
    let id = server
        .add_session(
            &file,
            SessionConfig {
                layers: 6,
                code_seed: 31,
                sp_interval: 2,
                burst_rounds: 1,
                ..SessionConfig::default()
            },
        )
        .unwrap();
    let control = UdpSocket::bind((Ipv4Addr::LOCALHOST, control_port)).expect("bind control");
    let server_transport = UdpMulticastTransport::loopback(data_port).unwrap();
    let mut client_transport = UdpMulticastTransport::loopback(data_port).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = stop.clone();
        std::thread::spawn(move || serve(server, control, server_transport, stop))
    };

    // The cadence arrives over the real control channel, like everything
    // else the client knows about the session.
    let mut client = describe_over_udp((Ipv4Addr::LOCALHOST, control_port), id);
    assert!(client.is_layered());
    assert_eq!(client.control_info().sp_interval, 2);
    let initial = client.subscribed_groups();
    assert_eq!(
        initial.len(),
        1,
        "a layered receiver starts at the base layer"
    );
    for group in initial {
        client_transport.join(group).unwrap();
    }

    let t0 = Instant::now();
    let mut joins = 0usize;
    let mut leaves = 0usize;
    while !client.is_complete() {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "layered download did not complete: {:?} (level {:?}, {joins} joins, {leaves} leaves)",
            client.stats(),
            client.subscription_level(),
        );
        if let Some((_group, datagram)) = client_transport.recv_timeout(Duration::from_millis(100))
        {
            match client.handle_datagram(datagram) {
                digital_fountain::proto::ClientEvent::Join { group } => {
                    client_transport.join(group).unwrap();
                    joins += 1;
                }
                digital_fountain::proto::ClientEvent::Leave { group } => {
                    client_transport.leave(group);
                    leaves += 1;
                }
                _ => {}
            }
        }
    }
    // ordering: Relaxed — shutdown signal only; the join right below is the
    // synchronization point.
    stop.store(true, Ordering::Relaxed);
    server_thread.join().unwrap();

    assert_eq!(client.file().unwrap(), &file[..]);
    assert!(
        joins >= 1,
        "an unthrottled loopback receiver must climb at least one layer"
    );
    // The driver's membership always mirrors the session's subscription.
    let mut expected = client.subscribed_groups();
    let mut joined = client_transport.joined_groups();
    expected.sort_unstable();
    joined.sort_unstable();
    assert_eq!(joined, expected);
}

#[test]
fn recv_timeout_expires_when_the_sender_dies() {
    // The CI-hang bugfix in miniature: a receiver whose sender is gone gets
    // control back after the timeout instead of blocking (or spinning)
    // forever, so test deadlines are always reached.
    let mut rx = UdpMulticastTransport::loopback(48650).unwrap();
    rx.join(0).unwrap();
    let t0 = Instant::now();
    assert_eq!(rx.recv_timeout(Duration::from_millis(80)), None);
    let waited = t0.elapsed();
    assert!(
        waited >= Duration::from_millis(70),
        "returned early: {waited:?}"
    );
    assert!(
        waited < Duration::from_secs(5),
        "timeout did not bound the wait: {waited:?}"
    );
    // A transport with nothing joined also times out rather than hanging.
    let mut empty = UdpMulticastTransport::loopback(48655).unwrap();
    assert_eq!(empty.recv_timeout(Duration::from_millis(20)), None);
}

#[test]
fn event_loop_drives_64_concurrent_real_socket_clients_on_one_thread() {
    // The readiness-driven driver at real-socket scale: one EventLoop on the
    // test thread owns the server carousel (64 sessions on 64 groups) AND 64
    // downloading clients, each with its own UDP loopback transport — 65
    // session state machines, 64 receive sockets in one poll(2) set, zero
    // helper threads.  Every client must complete and verify its file.
    let clients = 64;
    let files: Vec<Vec<u8>> = (0..clients).map(|i| patterned_file(20_000, i)).collect();

    let try_setup = |data_port: u16| -> std::io::Result<(
        EventLoop<UdpMulticastTransport>,
        Vec<digital_fountain::proto::Token>,
    )> {
        let mut server = FountainServer::new();
        let mut ids = Vec::new();
        for (i, file) in files.iter().enumerate() {
            ids.push(
                server
                    .add_session(
                        file,
                        SessionConfig {
                            code_seed: 100 + i as u64,
                            ..SessionConfig::default()
                        },
                    )
                    .unwrap(),
            );
        }
        let infos: Vec<_> = ids
            .iter()
            .map(|&id| server.session(id).unwrap().control_info().clone())
            .collect();

        let mut el: EventLoop<UdpMulticastTransport> = EventLoop::new();
        el.add_fountain_server(
            server,
            UdpMulticastTransport::loopback(data_port)?,
            None,
            // 128 datagrams/ms across 64 sessions: each client sees ~2 per ms,
            // well inside loopback socket buffers.
            Pacing::new(Duration::from_millis(1), 128),
        )?;

        let mut tokens = Vec::new();
        for info in infos {
            let client = ClientSession::new(info).unwrap();
            let transport = UdpMulticastTransport::loopback(data_port)?;
            tokens.push(el.add_client(client, transport)?);
        }
        Ok((el, tokens))
    };

    // The 64 consecutive data ports sit inside the kernel's ephemeral range,
    // so an unrelated socket (another test's sender, another process) can
    // legitimately hold one of them; move to a fresh range instead of
    // flaking.
    let mut attempt = 0u16;
    let (mut el, tokens) = loop {
        match try_setup(48700 + attempt * 200) {
            Ok(setup) => break setup,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && attempt < 4 => attempt += 1,
            Err(e) => panic!("could not stage the loopback fleet: {e}"),
        }
    };

    let all_done = el.run(Duration::from_secs(60)).unwrap();
    assert!(
        all_done,
        "only {}/{} clients completed: {:?}",
        el.completed_clients(),
        clients,
        el.stats()
    );
    // Completions are drained events, not callbacks: every client token must
    // surface exactly one Completed carrying its final stats.
    let mut completed_tokens: Vec<_> = el
        .poll_events()
        .into_iter()
        .filter_map(|event| match event {
            LoopEvent::Completed { token, stats } => {
                assert!(stats.distinct() > 0, "empty stats on a completion event");
                Some(token)
            }
            _ => None,
        })
        .collect();
    completed_tokens.sort_unstable();
    let mut expected_tokens = tokens.clone();
    expected_tokens.sort_unstable();
    assert_eq!(completed_tokens, expected_tokens);
    for (i, token) in tokens.into_iter().enumerate() {
        let (client, _transport) = el.take_client(token).unwrap();
        assert_eq!(
            client.file().unwrap(),
            &files[i][..],
            "client {i} reconstructed the wrong bytes"
        );
    }
}

#[test]
fn sharded_driver_downloads_over_real_sockets_on_two_shards() {
    // The PR-10 facade at real-socket scale: a two-shard Driver owns one
    // FountainServer (8 sessions) and 8 UDP loopback clients, the workers
    // pacing themselves on their own threads while the test thread only
    // waits and drains events.  Every download must complete and verify
    // byte-for-byte out of the shutdown report.
    let sessions = 8;
    let files: Vec<Vec<u8>> = (0..sessions)
        .map(|i| patterned_file(15_000, 50 + i))
        .collect();

    type ShardedFleet = (Driver<UdpMulticastTransport>, Vec<(SessionHandle, usize)>);
    let try_setup = |data_port: u16| -> std::io::Result<ShardedFleet> {
        let mut server = FountainServer::new();
        let mut ids = Vec::new();
        for (i, file) in files.iter().enumerate() {
            ids.push(
                server
                    .add_session(
                        file,
                        SessionConfig {
                            code_seed: 900 + i as u64,
                            ..SessionConfig::default()
                        },
                    )
                    .unwrap(),
            );
        }
        let infos: Vec<_> = ids
            .iter()
            .map(|&id| server.session(id).unwrap().control_info().clone())
            .collect();

        let mut driver = DriverConfig::new()
            .shards(2)
            .placement(digital_fountain::proto::Placement::LeastLoaded)
            .pacing(Pacing::new(Duration::from_millis(1), 64))
            .build::<UdpMulticastTransport>();
        driver.add_fountain_server(server, UdpMulticastTransport::loopback(data_port)?, None)?;
        let mut handles = Vec::new();
        for (i, info) in infos.into_iter().enumerate() {
            let client = ClientSession::new(info).unwrap();
            let transport = UdpMulticastTransport::loopback(data_port)?;
            handles.push((driver.add_client(client, transport)?, i));
        }
        Ok((driver, handles))
    };

    let mut attempt = 0u16;
    let (mut driver, handles) = loop {
        match try_setup(49500 + attempt * 100) {
            Ok(setup) => break setup,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && attempt < 4 => attempt += 1,
            Err(e) => panic!("could not stage the sharded loopback fleet: {e}"),
        }
    };
    // LeastLoaded placement must actually have spread the registrations.
    assert!(
        driver.shard_counts().iter().all(|&c| c > 0),
        "placement left a shard empty: {:?}",
        driver.shard_counts()
    );

    let all_done = driver.wait_complete(Duration::from_secs(60));
    assert!(
        all_done,
        "only {}/{} clients completed",
        driver.completed_clients(),
        sessions
    );
    let report = driver.shutdown().unwrap();
    let mut verified = 0;
    for event in &report.events {
        if let DriverEvent::Completed {
            handle, session, ..
        } = event
        {
            let &(_, i) = handles
                .iter()
                .find(|(h, _)| h == handle)
                .expect("completion for a registered handle");
            assert_eq!(
                session.file().unwrap(),
                &files[i][..],
                "client {i} reconstructed the wrong bytes"
            );
            verified += 1;
        }
    }
    assert_eq!(
        verified, sessions,
        "every download verifies from the report"
    );
}

#[test]
fn udp_loopback_and_sim_emit_identical_datagrams() {
    // The real-socket proof in miniature: the datagrams a ServerSession emits
    // are byte-identical whether the driver hands them to SimMulticast or to
    // a UDP socket, because the session never knows which it is.
    use digital_fountain::proto::SimMulticast;

    let file = patterned_file(20_000, 3);
    let mut over_sim = ServerSession::with_defaults(&file, 2, 9).unwrap();
    let mut over_udp = ServerSession::with_defaults(&file, 2, 9).unwrap();

    let net = SimMulticast::new(0);
    let mut sim_tx = net.endpoint(0.0);
    let mut sim_rx = net.endpoint(0.0);
    sim_rx.join(0).unwrap();
    sim_rx.join(1).unwrap();
    over_sim.send_round(&mut sim_tx);
    let mut from_sim = Vec::new();
    while let Some((g, d)) = sim_rx.recv() {
        from_sim.push((g, d.to_vec()));
    }

    let base_port = 48310;
    let mut udp_rx = UdpMulticastTransport::loopback(base_port).unwrap();
    udp_rx.join(0).unwrap();
    udp_rx.join(1).unwrap();
    let mut udp_tx = UdpMulticastTransport::loopback(base_port).unwrap();
    over_udp.send_round(&mut udp_tx);
    let mut from_udp = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while from_udp.len() < from_sim.len() && Instant::now() < deadline {
        if let Some((g, d)) = udp_rx.recv_timeout(Duration::from_millis(100)) {
            from_udp.push((g, d.to_vec()));
        }
    }
    // Global interleaving across groups is a transport property (the UDP
    // receiver round-robins its group sockets), so compare the transcripts
    // as multisets.  UDP loopback may also genuinely drop under burst; what
    // must hold is that everything received is exactly what the session
    // emitted, byte for byte.
    from_sim.sort();
    from_udp.sort();
    if from_udp.len() == from_sim.len() {
        assert_eq!(from_udp, from_sim);
    } else {
        let mut sim_iter = from_sim.iter().peekable();
        for got in &from_udp {
            while sim_iter.peek().is_some_and(|s| *s < got) {
                sim_iter.next();
            }
            assert_eq!(
                sim_iter.next(),
                Some(got),
                "UDP datagram not in the sim transcript"
            );
        }
    }
}
