//! Workspace integration tests: drive the prototype protocol end-to-end over
//! the simulated multicast network and check the cross-crate claims the paper
//! makes (digital-fountain property, Tornado vs interleaved ordering, layered
//! receivers adapting to their bottleneck).

use digital_fountain::core::{reassemble_file, PacketizedFile, TornadoCode, TORNADO_B};
use digital_fountain::proto::{
    ClientEvent, ClientSession, EventLoop, FountainServer, Pacing, ServerSession, SessionConfig,
    SimMulticast, Transport,
};
use digital_fountain::sim::{
    simulate_interleaved_receiver, simulate_tornado_receiver, BernoulliLoss, InterleavedCode,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn random_file(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn prototype_distributes_a_file_to_heterogeneous_clients() {
    // One server, three clients behind different loss rates, all reconstruct
    // the same file from the same carousel with no retransmissions.
    let data = random_file(200_000, 1);
    let mut server = ServerSession::with_defaults(&data, 4, 42).unwrap();
    let net = SimMulticast::new(7);
    let mut tx = net.endpoint(0.0);
    let losses = [0.0, 0.15, 0.4];
    let mut endpoints: Vec<_> = losses.iter().map(|&l| net.endpoint(l)).collect();
    let mut clients: Vec<ClientSession> = (0..losses.len())
        .map(|_| ClientSession::new(server.control_info().clone()).unwrap())
        .collect();
    for (ep, c) in endpoints.iter_mut().zip(&clients) {
        for group in c.groups() {
            ep.join(group).unwrap();
        }
    }
    for _ in 0..20_000 {
        server.send_round(&mut tx);
        for (ep, c) in endpoints.iter_mut().zip(clients.iter_mut()) {
            while let Some((_g, dgram)) = ep.recv() {
                c.handle_datagram(dgram);
            }
        }
        if clients.iter().all(|c| c.is_complete()) {
            break;
        }
    }
    for (c, &loss) in clients.iter().zip(&losses) {
        assert!(c.is_complete(), "client behind {loss} loss never finished");
        assert_eq!(
            c.file().unwrap(),
            &data[..],
            "client behind {loss} loss got corrupted data"
        );
        // Every client keeps a sensible efficiency even at 40 % loss.
        assert!(c.stats().reception_efficiency() > 0.3);
    }
}

#[test]
fn fountain_server_carousels_two_files_concurrently_over_disjoint_groups() {
    // The multi-session server of Section 7.1: two files, two disjoint group
    // sets, two clients downloading concurrently from one interleaved
    // carousel — each client subscribed only to its own session's groups.
    let file_a = random_file(150_000, 10);
    let file_b = random_file(60_000, 11);
    let mut server = FountainServer::new();
    let id_a = server
        .add_session(
            &file_a,
            SessionConfig {
                layers: 4,
                code_seed: 42,
                ..SessionConfig::default()
            },
        )
        .unwrap();
    let id_b = server
        .add_session(
            &file_b,
            SessionConfig {
                layers: 2,
                code_seed: 43,
                profile: digital_fountain::core::TORNADO_B,
                ..SessionConfig::default()
            },
        )
        .unwrap();

    // Clients discover their sessions over the wire-level control channel.
    let mut clients = Vec::new();
    for id in [id_a, id_b] {
        let resp = server.handle_control_datagram(
            &digital_fountain::proto::ControlRequest::Describe { session_id: id }.to_bytes(),
        );
        let info = match digital_fountain::proto::ControlResponse::from_bytes(&resp).unwrap() {
            digital_fountain::proto::ControlResponse::Session { info } => info,
            other => panic!("expected Session response, got {other:?}"),
        };
        clients.push(ClientSession::new(info).unwrap());
    }
    let groups_a: Vec<u32> = clients[0].groups().collect();
    let groups_b: Vec<u32> = clients[1].groups().collect();
    assert!(
        groups_a.iter().all(|g| !groups_b.contains(g)),
        "sessions must use disjoint group sets: {groups_a:?} vs {groups_b:?}"
    );

    let net = SimMulticast::new(3);
    let mut tx = net.endpoint(0.0);
    let mut endpoints: Vec<_> = [0.1, 0.25].iter().map(|&loss| net.endpoint(loss)).collect();
    for (ep, c) in endpoints.iter_mut().zip(&clients) {
        for group in c.groups() {
            ep.join(group).unwrap();
        }
    }

    // Progress of the *other* client at the moment the first one completes:
    // nonzero proves the carousels are interleaved (a server that finished
    // file A's whole carousel before starting file B would leave this at 0).
    let mut other_progress_at_first_completion = None;
    let mut sent = 0u64;
    while clients.iter().any(|c| !c.is_complete()) {
        assert!(sent < 5_000_000, "downloads did not converge");
        let (group, datagram) = server.poll_transmit().expect("two live sessions");
        tx.send(group, datagram);
        sent += 1;
        for i in 0..clients.len() {
            while let Some((_g, dgram)) = endpoints[i].recv() {
                if clients[i].handle_datagram(dgram) == ClientEvent::Complete
                    && other_progress_at_first_completion.is_none()
                {
                    other_progress_at_first_completion = Some(clients[1 - i].stats().received());
                }
            }
        }
    }
    assert_eq!(clients[0].file().unwrap(), &file_a[..]);
    assert_eq!(clients[1].file().unwrap(), &file_b[..]);
    assert!(
        other_progress_at_first_completion.unwrap() > 0,
        "the second download must already have received packets when the \
         first completed — the sessions are carouselled concurrently, not \
         sequentially"
    );
}

#[test]
fn heterogeneous_bottlenecks_find_distinct_layers_and_all_complete() {
    // Section 7.1's receiver-driven congestion control, end to end: one
    // layered carousel (6 layers, SP every 2 rounds, 1-round burst), three
    // receivers behind 1×, 3× and 7× base-rate bottlenecks, each running the
    // same `ClientSession` join/leave state machine the UDP loopback test
    // drives.  Every receiver must converge to the highest cumulative level
    // its bottleneck sustains (relative bandwidths 1, 2, 4, …) and still
    // reconstruct the file; a wider pipe must finish sooner.
    let rows = digital_fountain::sim::layered_population_experiment(
        400_000,
        6,
        2,
        1,
        &[1.0, 3.0, 7.0],
        9,
        400,
    );
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!(
            row.complete,
            "receiver behind {}x bottleneck never completed",
            row.bottleneck
        );
        assert_eq!(row.k, 800);
    }
    let levels: Vec<usize> = rows.iter().map(|r| r.final_level).collect();
    assert_eq!(
        levels,
        vec![0, 1, 2],
        "1x/3x/7x bottlenecks must converge to distinct subscription levels"
    );
    // Completion time scales down as the subscribed rate scales up.
    assert!(rows[0].rounds > rows[1].rounds && rows[1].rounds > rows[2].rounds);
    // The narrow receiver holds one level throughout, so the One Level
    // Property keeps its stream duplicate-free; the adapting receivers pay
    // burst duplicates for their probes.
    assert!(rows[0].distinctness_efficiency() > 0.99);
}

#[test]
fn event_loop_multiplexes_flat_and_layered_sessions_concurrently() {
    // The readiness-driven driver as the system's front door: one EventLoop
    // hosts a two-session FountainServer (one flat carousel, one layered
    // SP/burst session) and five clients — flat clients behind different
    // loss rates plus a layered client that climbs by Join intents the loop
    // executes — all advancing deterministically via `step` on one thread.
    let file_flat = random_file(120_000, 21);
    let file_layered = random_file(200_000, 22);
    let mut server = FountainServer::new();
    let id_flat = server
        .add_session(
            &file_flat,
            SessionConfig {
                layers: 2,
                code_seed: 5,
                ..SessionConfig::default()
            },
        )
        .unwrap();
    let id_layered = server
        .add_session(
            &file_layered,
            SessionConfig {
                layers: 6,
                code_seed: 6,
                sp_interval: 2,
                burst_rounds: 1,
                ..SessionConfig::default()
            },
        )
        .unwrap();
    let info_flat = server.session(id_flat).unwrap().control_info().clone();
    let info_layered = server.session(id_layered).unwrap().control_info().clone();
    assert!(info_layered.sp_interval > 0);

    let net = SimMulticast::new(31);
    let mut el: EventLoop<digital_fountain::proto::SimEndpoint> = EventLoop::new();
    el.add_fountain_server(
        server,
        net.endpoint(0.0),
        None,
        Pacing::new(Duration::from_millis(1), 2_000),
    )
    .unwrap();

    let mut flat_tokens = Vec::new();
    for loss in [0.0, 0.15, 0.4] {
        let client = ClientSession::new(info_flat.clone()).unwrap();
        flat_tokens.push(el.add_client(client, net.endpoint(loss)).unwrap());
    }
    let layered_tokens: Vec<_> = (0..2)
        .map(|_| {
            let client = ClientSession::new(info_layered.clone()).unwrap();
            el.add_client(client, net.endpoint(0.0)).unwrap()
        })
        .collect();

    for _ in 0..3_000 {
        el.step();
        if el.all_clients_complete() {
            break;
        }
    }
    assert!(
        el.all_clients_complete(),
        "not all clients finished: {:?}",
        el.stats()
    );
    for token in flat_tokens {
        let client = el.client(token).unwrap();
        assert_eq!(client.file().unwrap(), &file_flat[..]);
        assert!(client.subscription_level().is_none(), "flat session");
    }
    for token in layered_tokens {
        let client = el.client(token).unwrap();
        assert_eq!(client.file().unwrap(), &file_layered[..]);
        assert!(
            client.subscription_level().unwrap() >= 1,
            "the loop must have executed at least one Join intent"
        );
    }
    assert_eq!(el.stats().join_failures, 0);
}

#[test]
fn tornado_b_code_roundtrips_through_packetized_files() {
    let data = random_file(123_457, 2);
    let file = PacketizedFile::split(&data, 512).unwrap();
    let code = TornadoCode::with_profile(file.num_packets(), TORNADO_B, 5).unwrap();
    let encoding = code.encode(file.packets()).unwrap();
    // Receive only the redundant half plus a few source packets, in reverse.
    let received: Vec<(usize, Vec<u8>)> = (0..code.n())
        .rev()
        .take(code.n() - code.k() / 2)
        .map(|i| (i, encoding[i].clone()))
        .collect();
    let decoded = code.decode(&received).unwrap();
    assert_eq!(reassemble_file(&decoded, data.len()), data);
}

#[test]
fn tornado_scales_with_receivers_better_than_interleaving() {
    // The headline of Figures 4 and 5: at high loss the interleaved scheme's
    // worst-case receiver collapses while Tornado's efficiency stays flat.
    //
    // The file must be large enough for the claim to hold in the *worst case*
    // over 30 trials: at k = 500 a Tornado graph's stopping-set tail is fat
    // enough that unlucky (graph seed, reception order) pairs lose to
    // interleaving, and which seeds are unlucky depends on the RNG stream (the
    // in-tree rand shims produce different streams than upstream rand).  At
    // k = 2000 — closer to the paper's Figure 4/5 file sizes — the worst-case
    // margin is comfortably positive for every graph seed probed.
    let k = 2000;
    let tornado = TornadoCode::new_a(k, 9).unwrap();
    let interleaved = InterleavedCode::new(k, 20, 2.0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut worst_tornado: f64 = 1.0;
    let mut worst_interleaved: f64 = 1.0;
    for _ in 0..30 {
        let mut loss = BernoulliLoss::new(0.5);
        let t = simulate_tornado_receiver(&tornado, &mut loss, &mut rng);
        worst_tornado = worst_tornado.min(t.reception_efficiency());
        let mut loss = BernoulliLoss::new(0.5);
        let i = simulate_interleaved_receiver(&interleaved, &mut loss, &mut rng);
        worst_interleaved = worst_interleaved.min(i.reception_efficiency());
    }
    assert!(
        worst_tornado > worst_interleaved,
        "worst-case Tornado receiver ({worst_tornado:.3}) must beat worst-case interleaved ({worst_interleaved:.3})"
    );
}
