//! Workspace integration tests: drive the prototype protocol end-to-end over
//! the simulated multicast network and check the cross-crate claims the paper
//! makes (digital-fountain property, Tornado vs interleaved ordering, layered
//! receivers adapting to their bottleneck).

use digital_fountain::core::{reassemble_file, PacketizedFile, TornadoCode, TORNADO_B};
use digital_fountain::proto::{Client, Server, SimMulticast};
use digital_fountain::sim::{
    simulate_interleaved_receiver, simulate_tornado_receiver, BernoulliLoss, InterleavedCode,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_file(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn prototype_distributes_a_file_to_heterogeneous_clients() {
    // One server, three clients behind different loss rates, all reconstruct
    // the same file from the same carousel with no retransmissions.
    let data = random_file(200_000, 1);
    let mut server = Server::with_defaults(&data, 4, 42).unwrap();
    let mut net = SimMulticast::new(7);
    let losses = [0.0, 0.15, 0.4];
    let handles: Vec<_> = losses.iter().map(|&l| net.add_receiver(l)).collect();
    for h in &handles {
        for layer in 0..4 {
            h.subscribe(layer);
        }
    }
    let mut clients: Vec<Client> = (0..losses.len())
        .map(|_| Client::new(server.control_info().clone()).unwrap())
        .collect();
    for _ in 0..20_000 {
        server.send_round(&mut net);
        for (h, c) in handles.iter().zip(clients.iter_mut()) {
            while let Some((_g, dgram)) = h.recv() {
                c.handle_datagram(dgram);
            }
        }
        if clients.iter().all(|c| c.is_complete()) {
            break;
        }
    }
    for (c, &loss) in clients.iter().zip(&losses) {
        assert!(c.is_complete(), "client behind {loss} loss never finished");
        assert_eq!(
            c.file().unwrap(),
            &data[..],
            "client behind {loss} loss got corrupted data"
        );
        // Every client keeps a sensible efficiency even at 40 % loss.
        assert!(c.stats().reception_efficiency() > 0.3);
    }
}

#[test]
fn tornado_b_code_roundtrips_through_packetized_files() {
    let data = random_file(123_457, 2);
    let file = PacketizedFile::split(&data, 512).unwrap();
    let code = TornadoCode::with_profile(file.num_packets(), TORNADO_B, 5).unwrap();
    let encoding = code.encode(file.packets()).unwrap();
    // Receive only the redundant half plus a few source packets, in reverse.
    let received: Vec<(usize, Vec<u8>)> = (0..code.n())
        .rev()
        .take(code.n() - code.k() / 2)
        .map(|i| (i, encoding[i].clone()))
        .collect();
    let decoded = code.decode(&received).unwrap();
    assert_eq!(reassemble_file(&decoded, data.len()), data);
}

#[test]
fn tornado_scales_with_receivers_better_than_interleaving() {
    // The headline of Figures 4 and 5: at high loss the interleaved scheme's
    // worst-case receiver collapses while Tornado's efficiency stays flat.
    //
    // The file must be large enough for the claim to hold in the *worst case*
    // over 30 trials: at k = 500 a Tornado graph's stopping-set tail is fat
    // enough that unlucky (graph seed, reception order) pairs lose to
    // interleaving, and which seeds are unlucky depends on the RNG stream (the
    // in-tree rand shims produce different streams than upstream rand).  At
    // k = 2000 — closer to the paper's Figure 4/5 file sizes — the worst-case
    // margin is comfortably positive for every graph seed probed.
    let k = 2000;
    let tornado = TornadoCode::new_a(k, 9).unwrap();
    let interleaved = InterleavedCode::new(k, 20, 2.0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut worst_tornado: f64 = 1.0;
    let mut worst_interleaved: f64 = 1.0;
    for _ in 0..30 {
        let mut loss = BernoulliLoss::new(0.5);
        let t = simulate_tornado_receiver(&tornado, &mut loss, &mut rng);
        worst_tornado = worst_tornado.min(t.reception_efficiency());
        let mut loss = BernoulliLoss::new(0.5);
        let i = simulate_interleaved_receiver(&interleaved, &mut loss, &mut rng);
        worst_interleaved = worst_interleaved.min(i.reception_efficiency());
    }
    assert!(
        worst_tornado > worst_interleaved,
        "worst-case Tornado receiver ({worst_tornado:.3}) must beat worst-case interleaved ({worst_interleaved:.3})"
    );
}
