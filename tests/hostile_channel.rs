//! Hostile-channel integration: the readiness-driven [`EventLoop`] pumping a
//! layered carousel to a fleet of receivers that each sit behind their own
//! [`HostileChannel`] — Gilbert–Elliott bursty loss up to a 50 % bad state,
//! reordering, duplication and delay jitter — plus the sweep-level claims the
//! `repro hostile` table is built on.
//!
//! The acceptance criteria under test: every receiver completes, nobody
//! panics, client memory stays inside its cap, and the adaptive subscription
//! logic does not oscillate (leaves bounded by the channel's burst episodes).

use digital_fountain::proto::{
    ClientSession, EventLoop, Pacing, ServerSession, SessionConfig, SimEndpoint, SimMulticast,
};
use digital_fountain::sim::{
    hostile_channel_experiment, hostile_sweep, HostileChannel, HostileChannelBuilder, HostileConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn random_file(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

/// Staged + decoder-held packets never exceed the advertised cap.
fn assert_bounded(client: &ClientSession) {
    assert!(
        client.buffered_packets() + client.decoder_packets_fed() <= client.buffer_cap(),
        "memory bound violated: {} staged + {} fed > cap {}",
        client.buffered_packets(),
        client.decoder_packets_fed(),
        client.buffer_cap()
    );
}

#[test]
fn event_loop_completes_a_fleet_behind_hostile_channels() {
    // One layered carousel, eight receivers, each behind an independently
    // seeded hostile channel averaging ~15 % loss in long bursts.  The
    // server rides a *transparent* HostileChannel (empty pipeline) so the
    // whole fleet shares one EventLoop<HostileChannel<SimEndpoint>>.
    let data = random_file(80_000, 21);
    let server = ServerSession::new(
        &data,
        SessionConfig {
            layers: 4,
            code_seed: 21,
            sp_interval: 2,
            burst_rounds: 1,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let n = server.code().expect("carousel session").n();
    let info = server.control_info().clone();

    let net = SimMulticast::new(21);
    let mut el: EventLoop<HostileChannel<SimEndpoint>> = EventLoop::new();
    el.add_server_session(
        server,
        HostileChannelBuilder::new(0).wrap(net.endpoint(0.0)),
        Pacing::new(Duration::from_millis(1), n.div_ceil(4).max(1)),
    );
    let fleet = 8;
    let mut tokens = Vec::with_capacity(fleet);
    for i in 0..fleet as u64 {
        let session = ClientSession::new(info.clone()).unwrap();
        let channel = HostileChannelBuilder::new(900 + i)
            .gilbert_elliott(0.15, 8.0)
            .reorder(0.05, 6)
            .duplicate(0.02)
            .jitter(2)
            .wrap(net.endpoint(0.0));
        tokens.push(el.add_client(session, channel).unwrap());
    }

    let mut steps = 0;
    while steps < 600_000 && !el.all_clients_complete() {
        el.step();
        steps += 1;
        if steps % 4096 == 0 {
            for &token in &tokens {
                assert_bounded(el.client(token).unwrap());
            }
        }
    }

    assert!(
        el.all_clients_complete(),
        "only {}/{fleet} hostile-channel clients completed after {steps} steps",
        el.completed_clients()
    );
    for token in tokens {
        let client = el.client(token).unwrap();
        assert_eq!(
            client.file().unwrap(),
            &data[..],
            "corrupted reconstruction"
        );
        assert_eq!(client.stats().rejected(), 0, "honest carousel hit the cap");
        assert_bounded(client);
    }
}

#[test]
fn ge_sweep_up_to_half_loss_completes_without_oscillating() {
    // The headline acceptance sweep: bad-state loss up to 50 %, two burst
    // scales.  Every cell must complete, stay inside the memory cap, and
    // leave at most once per burst episode (no sustained oscillation).
    for out in hostile_sweep(&[0.2, 0.5], &[4.0, 16.0], 31) {
        assert!(
            out.complete,
            "receiver under loss_bad={} burst_len={} never completed: {out:?}",
            out.loss_bad, out.burst_len
        );
        assert_eq!(out.rejected, 0, "honest traffic must never be rejected");
        assert!(
            out.leaves() as u64 <= out.burst_episodes,
            "oscillation at loss_bad={}: {} leaves for {} episodes",
            out.loss_bad,
            out.leaves(),
            out.burst_episodes
        );
        assert!(
            out.reception_efficiency() > 0.15,
            "efficiency collapsed: {out:?}"
        );
    }
}

#[test]
fn a_hostile_run_replays_identically_from_its_seed() {
    // Trace-replay determinism at the harshest sweep point: the full
    // join/leave event sequence, round count and channel counters are a pure
    // function of the config.
    let cfg = HostileConfig {
        loss_bad: 0.5,
        burst_len: 16.0,
        seed: 99,
        ..HostileConfig::default()
    };
    let a = hostile_channel_experiment(&cfg);
    let b = hostile_channel_experiment(&cfg);
    assert_eq!(a.events, b.events, "join/leave trace must replay exactly");
    assert_eq!(a, b, "the full outcome must replay exactly");
    assert!(a.complete);
}
