//! Layered multicast distribution (Section 7 of the paper): the server
//! carousels a Tornado-encoded movie clip over four multicast layers with
//! geometrically increasing rates; heterogeneous receivers subscribe to as
//! many layers as their bottleneck allows, adapting at synchronisation points
//! with no feedback to the source.
//!
//! Run with: `cargo run --release --example layered_multicast`

use digital_fountain::core::TornadoCode;
use digital_fountain::mcast::LayeredSession;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // The paper's test object: a movie clip slightly over 2 MB, 500-byte
    // packets, encoded with Tornado A at stretch factor 2, spread over six
    // multicast layers with a sync point every other round (frequent SPs
    // relative to the ~17-round base-layer download, so receivers actually
    // adapt during the transfer).
    let k = 2 * 1024 * 1024 / 500;
    let code = TornadoCode::new_a(k, 1998).expect("valid parameters");
    let session = LayeredSession::new(6, code.n(), 2, 1).expect("valid layered parameters");
    println!(
        "clip: {} source packets, {} encoding packets, {} layers",
        code.k(),
        code.n(),
        session.schedule().layers()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    println!(
        "{:<32} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "receiver", "level", "eta_d", "eta_c", "eta", "rounds"
    );
    for (label, bottleneck, extra_loss) in [
        ("campus LAN (wide bottleneck)", 16.0, 0.00),
        ("DSL (mid bottleneck)", 4.0, 0.00),
        ("modem (base layer only)", 1.0, 0.00),
        ("congested transit (10% loss)", 8.0, 0.10),
        ("lossy wireless (30% loss)", 8.0, 0.30),
    ] {
        let r = session.simulate_receiver(&code, bottleneck, extra_loss, &mut rng);
        assert!(r.complete, "{label} did not finish");
        println!(
            "{:<32} {:>6} {:>8.3} {:>8.3} {:>8.3} {:>8}",
            label,
            r.final_level,
            r.distinctness_efficiency(),
            r.coding_efficiency(),
            r.reception_efficiency(),
            r.rounds
        );
    }
    println!(
        "receivers never sent a single packet upstream: congestion control is receiver-driven"
    );
}
