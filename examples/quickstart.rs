//! Quickstart: encode a file with a Tornado code, lose half the packets, and
//! reconstruct it — the digital-fountain property in a dozen lines.
//!
//! Run with: `cargo run --release --example quickstart`

use digital_fountain::core::{reassemble_file, PacketizedFile, TornadoCode};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A 1 MB "software release" split into 1 KB packets.
    let data: Vec<u8> = (0..1024 * 1024).map(|i| (i % 251) as u8).collect();
    let file = PacketizedFile::split(&data, 1024).expect("non-empty file");
    println!(
        "file: {} bytes -> {} source packets",
        data.len(),
        file.num_packets()
    );

    // Build a Tornado A code with stretch factor 2 and encode.
    let code = TornadoCode::new_a(file.num_packets(), 0x5eed).expect("valid parameters");
    let encoding = code.encode(file.packets()).expect("encode");
    println!(
        "encoding: {} packets (stretch factor {:.1})",
        code.n(),
        code.stretch_factor()
    );

    // A receiver that hears a random subset of the encoding — any sufficiently
    // large subset will do, which is the digital-fountain property.
    let mut order: Vec<usize> = (0..code.n()).collect();
    order.shuffle(&mut ChaCha8Rng::seed_from_u64(42));
    let mut decoder = code.decoder();
    let mut used = 0;
    for &i in &order {
        used += 1;
        if decoder.add_packet_ref(i, &encoding[i]).expect("in range")
            == digital_fountain::core::AddOutcome::Complete
        {
            break;
        }
    }
    let source = decoder.source().expect("decoding completed");
    let recovered = reassemble_file(&source, data.len());
    assert_eq!(recovered, data);
    println!(
        "reconstructed from {} received packets (reception overhead {:.1} %)",
        used,
        (used as f64 / code.k() as f64 - 1.0) * 100.0
    );
}
