//! Receiver-driven layered congestion control over real UDP sockets
//! (Section 7.1 of the paper): the server carousels one Tornado encoding
//! across six multicast groups at geometrically increasing rates, with a
//! synchronisation point every other round and a double-rate burst before
//! each SP.  Receivers subscribe to the base layer only and then *find
//! their own rate* — the session emits `ClientEvent::Join`/`Leave` intents
//! and the [`EventLoop`] executes them on the slot's transport, joining a
//! higher group after every clean burst and shedding the top layer on
//! sustained loss.  No receiver ever sends a packet towards the source.
//!
//! Run with: `cargo run --release --example layered_fountain`
//!
//! Server and receiver share **one readiness-driven event loop on one
//! thread**.  Two receivers use the carousel in turn (a fountain client
//! joins the perpetual stream whenever it likes; sequential receivers also
//! keep the group ports free for one another in loopback mode): an
//! unthrottled one that climbs as far as the download length allows, and
//! one behind a deliberately lossy access link — modelled as a transport
//! wrapper that eats every fourth received datagram, exactly where a real
//! bottleneck queue would sit — whose bursts are never clean, so it stays
//! pinned near the base layer and finishes later.  That heterogeneity is
//! what the layered scheme exists to serve.
//!
//! Addressing: real IPv4 multicast when the host can loop it back,
//! loopback unicast otherwise (same sessions, same datagrams either way).

use digital_fountain::proto::{
    ClientSession, EventLoop, FountainServer, GroupAddressing, LoopEvent, Pacing, Readiness,
    SessionConfig, Transport, UdpMulticastTransport,
};
use std::time::{Duration, Instant};

const MCAST_ADDR: std::net::Ipv4Addr = std::net::Ipv4Addr::new(239, 255, 71, 92);
const DATA_PORT: u16 = 47101;
/// A probe-only group well above the session's group range.
const PROBE_GROUP: u32 = 900;

/// Decide once whether this host can loop multicast back to itself; fall
/// back to loopback unicast otherwise so the example runs anywhere.
fn choose_addressing() -> GroupAddressing {
    if let Ok(mut probe) = UdpMulticastTransport::multicast(MCAST_ADDR, DATA_PORT) {
        if probe.join(PROBE_GROUP).is_ok() {
            probe.send(PROBE_GROUP, bytes::Bytes::from_static(b"probe"));
            if probe.recv_timeout(Duration::from_millis(300)).is_some() {
                return probe.addressing();
            }
        }
    }
    println!("(multicast loop unavailable; using loopback unicast addressing)");
    GroupAddressing::LoopbackUnicast {
        base_port: DATA_PORT,
    }
}

fn patterned_file(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

/// A congested access link as a transport decorator: every `drop_every`-th
/// *received* datagram is discarded before the session sees it (0 = clean
/// path).  Sends, joins and readiness pass straight through — the loss sits
/// exactly where a bottleneck queue would.
struct ThrottledLink {
    inner: UdpMulticastTransport,
    drop_every: u64,
    seen: u64,
}

impl ThrottledLink {
    fn new(inner: UdpMulticastTransport, drop_every: u64) -> ThrottledLink {
        ThrottledLink {
            inner,
            drop_every,
            seen: 0,
        }
    }
}

impl Transport for ThrottledLink {
    fn send(&mut self, group: u32, datagram: bytes::Bytes) {
        self.inner.send(group, datagram);
    }
    fn recv(&mut self) -> Option<(u32, bytes::Bytes)> {
        loop {
            let got = self.inner.recv()?;
            self.seen += 1;
            if self.drop_every != 0 && self.seen.is_multiple_of(self.drop_every) {
                continue; // the congested path eats this one
            }
            return Some(got);
        }
    }
    fn join(&mut self, group: u32) -> std::io::Result<()> {
        self.inner.join(group)
    }
    fn leave(&mut self, group: u32) {
        self.inner.leave(group);
    }
    fn readiness(&self) -> Readiness {
        self.inner.readiness()
    }
}

/// Run one receiver through the shared event loop until its download
/// completes, reporting its subscription journey.
fn run_receiver(
    el: &mut EventLoop<ThrottledLink>,
    name: &'static str,
    addressing: GroupAddressing,
    drop_every: u64,
    info: digital_fountain::proto::ControlInfo,
    expected: &[u8],
) {
    let client = ClientSession::new(info).expect("valid control info");
    println!(
        "[{name}] session: {} packets over {} layers, SP every {} rounds",
        client.control_info().n,
        client.control_info().layers,
        client.control_info().sp_interval
    );
    let link = ThrottledLink::new(
        UdpMulticastTransport::new(addressing).expect("client transport"),
        drop_every,
    );
    let t0 = Instant::now();
    let token = el.add_client(client, link).expect("join base layer");
    let done = el
        .run(Duration::from_secs(120))
        .expect("event loop runs to completion");
    // Completion is an event drained from the loop, not a callback: the
    // single-shard engine speaks the same drain dialect as the sharded
    // `Driver` facade.
    let stats = el
        .poll_events()
        .into_iter()
        .find_map(|event| match event {
            LoopEvent::Completed { token: t, stats } if t == token => Some(stats),
            _ => None,
        })
        .unwrap_or_else(|| panic!("[{name}] no completion event (done = {done})"));
    let (client, _link) = el.take_client(token).expect("token valid");
    assert!(done, "[{name}] download stalled at {:?}", stats);
    assert_eq!(client.file().unwrap(), expected, "[{name}] corrupt file");
    println!(
        "[{name}] complete in {:.2?}: level {}, {} received / {} distinct (eta {:.3}, eta_d {:.3})",
        t0.elapsed(),
        client.subscription_level().unwrap(),
        stats.received(),
        stats.distinct(),
        stats.reception_efficiency(),
        stats.distinctness_efficiency()
    );
    // The carousel's structural cost: once loss or a late join forces the
    // receiver across multiple cycles, repeats accumulate and eta_d decays
    // toward the sampling-with-replacement floor of 1 - 1/e ≈ 0.64.  A
    // rateless session (`SessionConfig::rateless`) never repeats a seed, so
    // its eta_d is exactly 1.0 — see examples/rateless_fountain.rs.
    if stats.distinctness_efficiency() < 1.0 {
        println!(
            "[{name}] duplicates cost eta_d {:.3} (carousel floor ≈ 0.64; rateless mode holds 1.0)",
            stats.distinctness_efficiency()
        );
    }
}

fn main() {
    let addressing = choose_addressing();
    let file = patterned_file(80_000);

    let mut server = FountainServer::new();
    let id = server
        .add_session(
            &file,
            SessionConfig {
                layers: 6,
                code_seed: 1998,
                sp_interval: 2,
                burst_rounds: 1,
                ..SessionConfig::default()
            },
        )
        .expect("layered session encodes");
    let info = server.session(id).unwrap().control_info().clone();
    println!(
        "server: 1 layered session, groups 0..6, bandwidths 1,1,2,4,8,16 (SP/burst congestion control)"
    );

    // One event loop owns the carousel and, in turn, each receiver — the
    // server keeps transmitting between receivers, as a real carousel does.
    let mut el: EventLoop<ThrottledLink> = EventLoop::new();
    el.add_fountain_server(
        server,
        ThrottledLink::new(
            UdpMulticastTransport::new(addressing).expect("server transport"),
            0,
        ),
        None,
        Pacing::new(Duration::from_millis(1), 64),
    )
    .expect("register server slot");

    run_receiver(&mut el, "wideband", addressing, 0, info.clone(), &file);
    run_receiver(&mut el, "congested", addressing, 4, info, &file);

    let stats = el.stats();
    println!(
        "both receivers rebuilt the file; neither sent a packet upstream \
         ({} datagrams caroused on one thread)",
        stats.datagrams_sent
    );
}
