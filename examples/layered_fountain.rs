//! Receiver-driven layered congestion control over real UDP sockets
//! (Section 7.1 of the paper): the server carousels one Tornado encoding
//! across six multicast groups at geometrically increasing rates, with a
//! synchronisation point every other round and a double-rate burst before
//! each SP.  Receivers subscribe to the base layer only and then *find
//! their own rate* — the session emits `ClientEvent::Join`/`Leave` intents
//! and the driver loop executes them on the transport, joining a higher
//! group after every clean burst and shedding the top layer on sustained
//! loss.  No receiver ever sends a packet towards the source.
//!
//! Run with: `cargo run --release --example layered_fountain`
//!
//! Two receivers use the carousel in turn (a fountain client joins the
//! perpetual stream whenever it likes; sequential receivers also keep the
//! group ports free for one another in loopback mode): an unthrottled one
//! that climbs as far as the download length allows, and one behind a
//! deliberately lossy path (every fourth datagram dropped in the driver)
//! whose bursts are never clean — it stays pinned near the base layer,
//! finishing later, exactly the heterogeneity the layered scheme exists to
//! serve.
//!
//! Addressing: real IPv4 multicast when the host can loop it back,
//! loopback unicast otherwise (same sessions, same datagrams either way).

use digital_fountain::proto::{
    ClientEvent, ClientSession, ControlRequest, ControlResponse, FountainServer, GroupAddressing,
    SessionConfig, Transport, UdpMulticastTransport,
};
use std::net::{Ipv4Addr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MCAST_ADDR: Ipv4Addr = Ipv4Addr::new(239, 255, 71, 92);
const DATA_PORT: u16 = 47101;
const CONTROL_PORT: u16 = 47100;
/// A probe-only group well above the session's group range.
const PROBE_GROUP: u32 = 900;

/// Decide once whether this host can loop multicast back to itself; fall
/// back to loopback unicast otherwise so the example runs anywhere.
fn choose_addressing() -> GroupAddressing {
    if let Ok(mut probe) = UdpMulticastTransport::multicast(MCAST_ADDR, DATA_PORT) {
        if probe.join(PROBE_GROUP).is_ok() {
            probe.send(PROBE_GROUP, bytes::Bytes::from_static(b"probe"));
            let deadline = Instant::now() + Duration::from_millis(300);
            while Instant::now() < deadline {
                if probe.recv().is_some() {
                    return probe.addressing();
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    println!("(multicast loop unavailable; using loopback unicast addressing)");
    GroupAddressing::LoopbackUnicast {
        base_port: DATA_PORT,
    }
}

fn patterned_file(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

/// One receiver: fetch the session over the control channel, join the base
/// layer, then obey the session's join/leave intents until the file is
/// whole.  `drop_every` simulates a congested path by discarding every
/// n-th datagram in the driver (0 = clean path).
fn run_receiver(
    name: &'static str,
    addressing: GroupAddressing,
    drop_every: u64,
    expected: Vec<u8>,
) {
    let control = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind control client");
    control
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let mut buf = [0u8; 2048];
    let mut client: Option<ClientSession> = None;
    for _ in 0..20 {
        control
            .send_to(
                &ControlRequest::Describe { session_id: 0 }.to_bytes(),
                (Ipv4Addr::LOCALHOST, CONTROL_PORT),
            )
            .expect("send control request");
        if let Ok((len, _)) = control.recv_from(&mut buf) {
            if let Some(ControlResponse::Session { info }) =
                ControlResponse::from_bytes(&buf[..len])
            {
                client = Some(ClientSession::new(info).expect("valid control info"));
                break;
            }
        }
    }
    let mut client = client.expect("control channel answered");
    println!(
        "[{name}] session: {} packets over {} layers, SP every {} rounds",
        client.control_info().n,
        client.control_info().layers,
        client.control_info().sp_interval
    );

    let mut transport = UdpMulticastTransport::new(addressing).expect("client transport");
    for group in client.subscribed_groups() {
        transport.join(group).expect("join base layer");
    }

    let t0 = Instant::now();
    let mut seen = 0u64;
    let mut journey: Vec<String> = vec!["L0".into()];
    while !client.is_complete() {
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "[{name}] download stalled at {:?}",
            client.stats()
        );
        let Some((_group, datagram)) = transport.recv() else {
            std::thread::sleep(Duration::from_micros(200));
            continue;
        };
        seen += 1;
        if drop_every != 0 && seen.is_multiple_of(drop_every) {
            continue; // the congested path eats this one
        }
        match client.handle_datagram(datagram) {
            ClientEvent::Join { group } => {
                transport.join(group).expect("join next layer");
                journey.push(format!("+L{}", client.subscription_level().unwrap()));
            }
            ClientEvent::Leave { group } => {
                transport.leave(group);
                journey.push(format!("-to L{}", client.subscription_level().unwrap()));
            }
            _ => {}
        }
    }
    assert_eq!(
        client.file().unwrap(),
        &expected[..],
        "[{name}] corrupt file"
    );
    let stats = client.stats();
    println!(
        "[{name}] complete in {:.2?}: level {}, subscription journey {}, \
         {} received / {} distinct (eta {:.3})",
        t0.elapsed(),
        client.subscription_level().unwrap(),
        journey.join(" "),
        stats.received(),
        stats.distinct(),
        stats.reception_efficiency()
    );
}

fn main() {
    let addressing = choose_addressing();
    let file = patterned_file(80_000);

    let mut server = FountainServer::new();
    server
        .add_session(
            &file,
            SessionConfig {
                layers: 6,
                code_seed: 1998,
                sp_interval: 2,
                burst_rounds: 1,
                ..SessionConfig::default()
            },
        )
        .expect("layered session encodes");
    println!(
        "server: 1 layered session, groups 0..6, bandwidths 1,1,2,4,8,16 (SP/burst congestion control)"
    );

    let control = UdpSocket::bind((Ipv4Addr::LOCALHOST, CONTROL_PORT)).expect("bind control");
    control.set_nonblocking(true).expect("nonblocking control");
    let mut server_transport = UdpMulticastTransport::new(addressing).expect("server transport");
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut buf = [0u8; 2048];
            let mut sent = 0u32;
            while !stop.load(Ordering::Relaxed) {
                while let Ok((len, from)) = control.recv_from(&mut buf) {
                    let reply = server.handle_control_datagram(&buf[..len]);
                    let _ = control.send_to(&reply, from);
                }
                if let Some((group, datagram)) = server.poll_transmit() {
                    server_transport.send(group, datagram);
                }
                sent += 1;
                if sent.is_multiple_of(64) {
                    // Pace the carousel so loopback receivers keep up.
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        })
    };

    run_receiver("wideband", addressing, 0, patterned_file(80_000));
    run_receiver("congested", addressing, 4, patterned_file(80_000));

    stop.store(true, Ordering::Relaxed);
    server_thread.join().expect("server thread");
    println!("both receivers rebuilt the file; neither sent a packet upstream");
}
