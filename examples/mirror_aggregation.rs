//! Mirror aggregation (Section 8, "Conclusions"): with digital fountains a
//! client can download the *same* file from several mirrors at once and
//! simply aggregate whatever packets arrive — no coordination between the
//! mirrors is needed, and every received packet from any mirror is useful
//! until the decoder completes.
//!
//! Each mirror carousels the same Tornado encoding but with its own packet
//! permutation; the client interleaves reception from all of them through
//! independent lossy paths.
//!
//! Run with: `cargo run --release --example mirror_aggregation`

use digital_fountain::core::{AddOutcome, Carousel, Mark, PacketStream, TornadoCode};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let k = 2048; // a 2 MB file in 1 KB packets
    let code = TornadoCode::new_a(k, 77).expect("valid parameters");

    // Three mirrors with different path loss rates and bandwidth shares.
    let mirrors = [
        ("mirror-us", 0.02, 3usize),
        ("mirror-eu", 0.10, 2),
        ("mirror-ap", 0.30, 1),
    ];
    let mut carousels: Vec<Carousel> = mirrors
        .iter()
        .enumerate()
        .map(|(i, _)| Carousel::new(code.n(), i as u64 + 1))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut decoder = code.symbolic_decoder();
    let mut received_from = vec![0usize; mirrors.len()];
    let mut total = 0usize;
    'outer: loop {
        for (m, (_name, loss, share)) in mirrors.iter().enumerate() {
            // A mirror with a larger bandwidth share gets more transmission
            // slots per round-robin turn.
            for _ in 0..*share {
                let idx = carousels[m].next_index();
                if rng.gen::<f64>() < *loss {
                    continue;
                }
                total += 1;
                received_from[m] += 1;
                if decoder.add_packet(idx, Mark).expect("in range") == AddOutcome::Complete {
                    break 'outer;
                }
            }
        }
    }
    println!(
        "file of {} packets reconstructed from {} received packets",
        k, total
    );
    for ((name, loss, _), got) in mirrors.iter().zip(&received_from) {
        println!(
            "  {name:<10} (loss {:>4.0} %) contributed {:>5} packets",
            loss * 100.0,
            got
        );
    }
    println!(
        "aggregate reception efficiency: {:.3}",
        k as f64 / total as f64
    );
    println!("no mirror coordination was needed: any packets from any mirror fill the same glass");
}
