//! The paper's deployed system over real UDP sockets: a [`FountainServer`]
//! carousels two files to disjoint multicast group sets while answering a
//! unicast UDP control channel; two clients discover their sessions over
//! that channel, subscribe, and download concurrently — through exactly the
//! same sans-I/O `ServerSession`/`ClientSession` state machines the
//! simulation tests use.
//!
//! Run with: `cargo run --release --example udp_fountain`
//!
//! Addressing: real IPv4 multicast (`239.255.71.90`, ports 47001+) when the
//! host's network namespace can loop multicast back, otherwise loopback
//! unicast on the same ports.  Either way the sockets, datagrams and
//! sessions are identical — only the group→address mapping changes.

use digital_fountain::proto::{
    ClientEvent, ClientSession, ControlRequest, ControlResponse, FountainServer, GroupAddressing,
    SessionConfig, Transport, UdpMulticastTransport,
};
use std::net::{Ipv4Addr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MCAST_ADDR: Ipv4Addr = Ipv4Addr::new(239, 255, 71, 90);
const DATA_PORT: u16 = 47001;
const CONTROL_PORT: u16 = 47000;
/// A probe-only group well above the sessions' group ranges.
const PROBE_GROUP: u32 = 900;

/// Decide **once** whether this host can loop multicast back to itself; fall
/// back to loopback unicast if not, so the example runs anywhere.  The chosen
/// addressing is shared by the server and every client — mixing modes would
/// just be a partitioned network.
fn choose_addressing() -> GroupAddressing {
    if let Ok(mut probe) = UdpMulticastTransport::multicast(MCAST_ADDR, DATA_PORT) {
        if probe.join(PROBE_GROUP).is_ok() {
            probe.send(PROBE_GROUP, bytes::Bytes::from_static(b"probe"));
            let deadline = Instant::now() + Duration::from_millis(300);
            while Instant::now() < deadline {
                if probe.recv().is_some() {
                    return probe.addressing();
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    println!("(multicast loop unavailable; using loopback unicast addressing)");
    GroupAddressing::LoopbackUnicast {
        base_port: DATA_PORT,
    }
}

fn patterned_file(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + salt) % 251) as u8).collect()
}

fn run_client(name: &str, session_id: u32, addressing: GroupAddressing, expected: Vec<u8>) {
    // Discover the session over the unicast UDP control channel.
    let control = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind control client");
    control
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    let mut buf = [0u8; 2048];
    let info = 'discover: {
        for _ in 0..30 {
            control
                .send_to(
                    &ControlRequest::Describe { session_id }.to_bytes(),
                    (Ipv4Addr::LOCALHOST, CONTROL_PORT),
                )
                .expect("send control request");
            if let Ok((len, _)) = control.recv_from(&mut buf) {
                if let Some(ControlResponse::Session { info }) =
                    ControlResponse::from_bytes(&buf[..len])
                {
                    break 'discover info;
                }
            }
        }
        panic!("{name}: control channel never answered");
    };
    println!(
        "{name}: session {session_id}: {} bytes, k = {}, {} layer(s) on groups {:?}",
        info.file_len,
        info.k,
        info.layers,
        info.groups().collect::<Vec<_>>()
    );

    // Subscribe and download.
    let mut client = ClientSession::new(info).expect("valid control info");
    let mut transport = UdpMulticastTransport::new(addressing).expect("client transport");
    for group in client.groups().collect::<Vec<_>>() {
        transport.join(group).expect("join data group");
    }
    let t0 = Instant::now();
    while !client.is_complete() {
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "{name}: download timed out: {:?}",
            client.stats()
        );
        match transport.recv() {
            Some((_group, datagram)) => {
                if client.handle_datagram(datagram) == ClientEvent::Complete {
                    break;
                }
            }
            None => std::thread::sleep(Duration::from_micros(200)),
        }
    }
    assert_eq!(
        client.file().unwrap(),
        &expected[..],
        "{name}: corrupt file"
    );
    let s = client.stats();
    println!(
        "{name}: done in {:.2?} — {} packets received, {} distinct, \
         {} decode attempt(s), efficiency η = {:.3} (η_c {:.3} · η_d {:.3})",
        t0.elapsed(),
        s.received(),
        s.distinct(),
        s.decode_attempts(),
        s.reception_efficiency(),
        s.coding_efficiency(),
        s.distinctness_efficiency(),
    );
}

fn main() {
    // Two "software releases" of different sizes and profiles.
    let file_a = patterned_file(400_000, 1);
    let file_b = patterned_file(150_000, 2);

    let mut server = FountainServer::new();
    let id_a = server
        .add_session(
            &file_a,
            SessionConfig {
                layers: 4,
                code_seed: 42,
                ..SessionConfig::default()
            },
        )
        .expect("session A encodes");
    let id_b = server
        .add_session(
            &file_b,
            SessionConfig {
                layers: 2,
                code_seed: 43,
                profile: digital_fountain::core::TORNADO_B,
                ..SessionConfig::default()
            },
        )
        .expect("session B encodes");
    println!(
        "server: {} sessions, groups 0..{}",
        server.sessions().len(),
        server
            .sessions()
            .iter()
            .map(|s| s.control_info().base_group + s.control_info().layers as u32)
            .max()
            .unwrap()
    );

    let control = UdpSocket::bind((Ipv4Addr::LOCALHOST, CONTROL_PORT)).expect("bind control port");
    control.set_nonblocking(true).unwrap();
    let addressing = choose_addressing();
    let mut transport = UdpMulticastTransport::new(addressing).expect("server transport");

    // The I/O driver loop the sans-I/O design asks for: answer control
    // requests, pump the interleaved carousel, pace the bursts.
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut buf = [0u8; 2048];
            let mut burst = 0u32;
            while !stop.load(Ordering::Relaxed) {
                while let Ok((len, from)) = control.recv_from(&mut buf) {
                    let reply = server.handle_control_datagram(&buf[..len]);
                    let _ = control.send_to(&reply, from);
                }
                if let Some((group, datagram)) = server.poll_transmit() {
                    transport.send(group, datagram);
                }
                burst += 1;
                if burst.is_multiple_of(64) {
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
            let sent: u32 = server.sessions().iter().map(|s| s.packets_sent()).sum();
            println!("server: stopped after {sent} data packets");
        })
    };

    let clients = vec![
        std::thread::spawn(move || run_client("client-A", id_a, addressing, file_a)),
        std::thread::spawn(move || run_client("client-B", id_b, addressing, file_b)),
    ];
    for c in clients {
        c.join().expect("client thread");
    }
    stop.store(true, Ordering::Relaxed);
    server_thread.join().expect("server thread");
    println!("both downloads verified byte-for-byte");
}
