//! The paper's deployed system over real UDP sockets, behind the sharded
//! [`Driver`] facade: a two-shard driver owns the [`FountainServer`] (two
//! files caroused to disjoint multicast group sets, binary control channel
//! included) *and* both downloading clients — five session state machines
//! spread across two `df-shard-*` worker threads, each running its own
//! readiness-driven event loop (`epoll(7)` where available, `poll(2)`
//! otherwise; force one with `DF_POLL_BACKEND=poll|epoll`).
//!
//! Run with: `cargo run --release --example udp_fountain`
//!
//! The clients discover their sessions over the real unicast UDP control
//! channel like any non-Rust client would; because the workers pace
//! themselves (paced mode), the server answers control traffic continuously
//! on its own shard — the deployment shape of Section 7.1, a stateless
//! server feeding arbitrarily many heterogeneous receivers, its I/O
//! multiplexed by readiness rather than by thread-per-receiver.  Downloads
//! finish as [`DriverEvent::Completed`] values drained from the driver's
//! event channel, each carrying the finished [`ClientSession`] for
//! byte-for-byte verification.
//!
//! Addressing: real IPv4 multicast (`239.255.71.90`, ports 47001+) when the
//! host's network namespace can loop multicast back, otherwise loopback
//! unicast on the same ports.  Either way the sockets, datagrams and
//! sessions are identical — only the group→address mapping changes.

use digital_fountain::proto::{
    ClientSession, ControlRequest, ControlResponse, DriverConfig, DriverEvent, GroupAddressing,
    Pacing, Placement, SessionConfig, Transport, UdpMulticastTransport,
};
use std::net::{Ipv4Addr, UdpSocket};
use std::time::{Duration, Instant};

const MCAST_ADDR: Ipv4Addr = Ipv4Addr::new(239, 255, 71, 90);
const DATA_PORT: u16 = 47001;
const CONTROL_PORT: u16 = 47000;
/// A probe-only group well above the sessions' group ranges.
const PROBE_GROUP: u32 = 900;

/// Decide **once** whether this host can loop multicast back to itself; fall
/// back to loopback unicast if not, so the example runs anywhere.  The chosen
/// addressing is shared by the server and every client — mixing modes would
/// just be a partitioned network.
fn choose_addressing() -> GroupAddressing {
    if let Ok(mut probe) = UdpMulticastTransport::multicast(MCAST_ADDR, DATA_PORT) {
        if probe.join(PROBE_GROUP).is_ok() {
            probe.send(PROBE_GROUP, bytes::Bytes::from_static(b"probe"));
            if probe.recv_timeout(Duration::from_millis(300)).is_some() {
                return probe.addressing();
            }
        }
    }
    println!("(multicast loop unavailable; using loopback unicast addressing)");
    GroupAddressing::LoopbackUnicast {
        base_port: DATA_PORT,
    }
}

fn patterned_file(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + salt) % 251) as u8).collect()
}

/// Fetch one session's parameters over the wire-level control channel.  The
/// server's shard paces itself on its own thread, so discovery is plain
/// request/retry — no loop pumping, exactly what a non-Rust client would do.
fn discover(session_id: u32) -> digital_fountain::proto::ControlInfo {
    let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind control client");
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("control timeout");
    let mut buf = [0u8; 2048];
    for _ in 0..100 {
        socket
            .send_to(
                &ControlRequest::Describe { session_id }.to_bytes(),
                (Ipv4Addr::LOCALHOST, CONTROL_PORT),
            )
            .expect("send control request");
        if let Ok((len, _)) = socket.recv_from(&mut buf) {
            if let Some(ControlResponse::Session { info }) =
                ControlResponse::from_bytes(&buf[..len])
            {
                return info;
            }
        }
    }
    panic!("control channel never answered for session {session_id}");
}

fn main() {
    // Two "software releases" of different sizes and profiles.
    let file_a = patterned_file(400_000, 1);
    let file_b = patterned_file(150_000, 2);

    let mut server = digital_fountain::proto::FountainServer::new();
    let id_a = server
        .add_session(
            &file_a,
            SessionConfig {
                layers: 4,
                code_seed: 42,
                ..SessionConfig::default()
            },
        )
        .expect("session A encodes");
    let id_b = server
        .add_session(
            &file_b,
            SessionConfig {
                layers: 2,
                code_seed: 43,
                profile: digital_fountain::core::TORNADO_B,
                ..SessionConfig::default()
            },
        )
        .expect("session B encodes");
    println!(
        "server: {} sessions, groups 0..{}",
        server.sessions().len(),
        server
            .sessions()
            .iter()
            .map(|s| s.control_info().base_group + s.control_info().layers as u32)
            .max()
            .unwrap()
    );

    let addressing = choose_addressing();
    let control = UdpSocket::bind((Ipv4Addr::LOCALHOST, CONTROL_PORT)).expect("bind control port");

    // The whole deployment behind one facade: two paced worker shards, the
    // server slot placed where load is lowest, clients likewise — the same
    // five state machines as ever, now spread across cores.
    let mut driver = DriverConfig::new()
        .shards(2)
        .placement(Placement::LeastLoaded)
        .pacing(Pacing::new(Duration::from_millis(1), 64))
        .build::<UdpMulticastTransport>();
    let server_handle = driver
        .add_fountain_server(
            server,
            UdpMulticastTransport::new(addressing).expect("server transport"),
            Some(control),
        )
        .expect("register server slot");
    println!("server slot on shard {}", server_handle.shard());

    let t0 = Instant::now();
    let mut expected = Vec::new();
    for (name, id, file) in [("client-A", id_a, &file_a), ("client-B", id_b, &file_b)] {
        let info = discover(id);
        println!(
            "{name}: session {id}: {} bytes, k = {}, {} layer(s) on groups {:?}",
            info.file_len,
            info.k,
            info.layers,
            info.groups().collect::<Vec<_>>()
        );
        let client = ClientSession::new(info).expect("valid control info");
        let transport = UdpMulticastTransport::new(addressing).expect("client transport");
        let handle = driver
            .add_client(client, transport)
            .expect("register client");
        println!("{name}: shard {}", handle.shard());
        expected.push((name, handle, file));
    }

    let all_done = driver.wait_complete(Duration::from_secs(120));
    assert!(all_done, "downloads timed out");

    let report = driver.shutdown().expect("clean driver shutdown");
    for event in &report.events {
        if let DriverEvent::Completed {
            handle,
            stats,
            session,
        } = event
        {
            let (name, _, file) = expected
                .iter()
                .find(|(_, h, _)| h == handle)
                .expect("completion for a registered client");
            assert_eq!(session.file().unwrap(), &file[..], "{name}: corrupt file");
            println!(
                "{name}: done in {:.2?} — {} packets received, {} distinct, \
                 {} decode attempt(s), efficiency η = {:.3} (η_c {:.3} · η_d {:.3})",
                t0.elapsed(),
                stats.received(),
                stats.distinct(),
                stats.decode_attempts(),
                stats.reception_efficiency(),
                stats.coding_efficiency(),
                stats.distinctness_efficiency(),
            );
        }
    }
    let totals = report.total_stats();
    println!(
        "both downloads verified byte-for-byte across {} shards \
         ({} datagrams sent, {} received, {} control answered)",
        report.shard_stats.len(),
        totals.datagrams_sent,
        totals.datagrams_received,
        totals.control_answered
    );
}
