//! The paper's deployed system over real UDP sockets, on **one thread**: a
//! single [`EventLoop`] owns the [`FountainServer`] (two files caroused to
//! disjoint multicast group sets, binary control channel included) *and*
//! both downloading clients — five session state machines and every socket
//! in one `poll(2)` set, no helper threads.
//!
//! Run with: `cargo run --release --example udp_fountain`
//!
//! The clients discover their sessions over the real unicast UDP control
//! channel like any non-Rust client would; the request/response exchange is
//! pumped through the same event loop that paces the carousel, which is the
//! deployment shape of Section 7.1 — a stateless server feeding arbitrarily
//! many heterogeneous receivers, its I/O multiplexed by readiness rather
//! than by thread-per-receiver.
//!
//! Addressing: real IPv4 multicast (`239.255.71.90`, ports 47001+) when the
//! host's network namespace can loop multicast back, otherwise loopback
//! unicast on the same ports.  Either way the sockets, datagrams and
//! sessions are identical — only the group→address mapping changes.

use digital_fountain::proto::{
    ClientSession, ControlRequest, ControlResponse, EventLoop, FountainServer, GroupAddressing,
    Pacing, SessionConfig, Transport, UdpMulticastTransport,
};
use std::net::{Ipv4Addr, UdpSocket};
use std::time::{Duration, Instant};

const MCAST_ADDR: Ipv4Addr = Ipv4Addr::new(239, 255, 71, 90);
const DATA_PORT: u16 = 47001;
const CONTROL_PORT: u16 = 47000;
/// A probe-only group well above the sessions' group ranges.
const PROBE_GROUP: u32 = 900;

/// Decide **once** whether this host can loop multicast back to itself; fall
/// back to loopback unicast if not, so the example runs anywhere.  The chosen
/// addressing is shared by the server and every client — mixing modes would
/// just be a partitioned network.
fn choose_addressing() -> GroupAddressing {
    if let Ok(mut probe) = UdpMulticastTransport::multicast(MCAST_ADDR, DATA_PORT) {
        if probe.join(PROBE_GROUP).is_ok() {
            probe.send(PROBE_GROUP, bytes::Bytes::from_static(b"probe"));
            if probe.recv_timeout(Duration::from_millis(300)).is_some() {
                return probe.addressing();
            }
        }
    }
    println!("(multicast loop unavailable; using loopback unicast addressing)");
    GroupAddressing::LoopbackUnicast {
        base_port: DATA_PORT,
    }
}

fn patterned_file(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + salt) % 251) as u8).collect()
}

/// Fetch one session's parameters over the wire-level control channel,
/// pumping `el` between retries so the (in-loop) server can answer — the
/// single-threaded version of "ask a running server".
fn discover(
    el: &mut EventLoop<UdpMulticastTransport>,
    session_id: u32,
) -> digital_fountain::proto::ControlInfo {
    let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind control client");
    socket.set_nonblocking(true).expect("nonblocking control");
    let mut buf = [0u8; 2048];
    for _ in 0..100 {
        socket
            .send_to(
                &ControlRequest::Describe { session_id }.to_bytes(),
                (Ipv4Addr::LOCALHOST, CONTROL_PORT),
            )
            .expect("send control request");
        // Let the loop notice the request (control socket readiness) and
        // answer it, then look for the reply.
        for _ in 0..10 {
            el.poll_io(Duration::from_millis(5)).expect("poll");
            if let Ok((len, _)) = socket.recv_from(&mut buf) {
                if let Some(ControlResponse::Session { info }) =
                    ControlResponse::from_bytes(&buf[..len])
                {
                    return info;
                }
            }
        }
    }
    panic!("control channel never answered for session {session_id}");
}

fn main() {
    // Two "software releases" of different sizes and profiles.
    let file_a = patterned_file(400_000, 1);
    let file_b = patterned_file(150_000, 2);

    let mut server = FountainServer::new();
    let id_a = server
        .add_session(
            &file_a,
            SessionConfig {
                layers: 4,
                code_seed: 42,
                ..SessionConfig::default()
            },
        )
        .expect("session A encodes");
    let id_b = server
        .add_session(
            &file_b,
            SessionConfig {
                layers: 2,
                code_seed: 43,
                profile: digital_fountain::core::TORNADO_B,
                ..SessionConfig::default()
            },
        )
        .expect("session B encodes");
    println!(
        "server: {} sessions, groups 0..{}",
        server.sessions().len(),
        server
            .sessions()
            .iter()
            .map(|s| s.control_info().base_group + s.control_info().layers as u32)
            .max()
            .unwrap()
    );

    let addressing = choose_addressing();
    let control = UdpSocket::bind((Ipv4Addr::LOCALHOST, CONTROL_PORT)).expect("bind control port");

    // The whole deployment in one readiness-driven loop: the server slot
    // paces the interleaved carousel and answers control traffic; client
    // slots drain their own sockets as the kernel reports them readable.
    let mut el: EventLoop<UdpMulticastTransport> = EventLoop::new();
    el.add_fountain_server(
        server,
        UdpMulticastTransport::new(addressing).expect("server transport"),
        Some(control),
        Pacing::new(Duration::from_millis(1), 64),
    )
    .expect("register server slot");

    let t0 = Instant::now();
    let mut tokens = Vec::new();
    for (name, id, expected) in [("client-A", id_a, &file_a), ("client-B", id_b, &file_b)] {
        let info = discover(&mut el, id);
        println!(
            "{name}: session {id}: {} bytes, k = {}, {} layer(s) on groups {:?}",
            info.file_len,
            info.k,
            info.layers,
            info.groups().collect::<Vec<_>>()
        );
        let client = ClientSession::new(info).expect("valid control info");
        let transport = UdpMulticastTransport::new(addressing).expect("client transport");
        let token = el
            .add_client_with(
                client,
                transport,
                Some(Box::new(move |_token, session| {
                    let s = session.stats();
                    println!(
                        "{name}: done in {:.2?} — {} packets received, {} distinct, \
                         {} decode attempt(s), efficiency η = {:.3} (η_c {:.3} · η_d {:.3})",
                        t0.elapsed(),
                        s.received(),
                        s.distinct(),
                        s.decode_attempts(),
                        s.reception_efficiency(),
                        s.coding_efficiency(),
                        s.distinctness_efficiency(),
                    );
                })),
            )
            .expect("join data groups");
        tokens.push((name, token, expected));
    }

    let all_done = el
        .run(Duration::from_secs(120))
        .expect("event loop runs to completion");
    assert!(all_done, "downloads timed out: {:?}", el.stats());

    for (name, token, expected) in tokens {
        let (client, _transport) = el.take_client(token).expect("token valid");
        assert_eq!(
            client.file().unwrap(),
            &expected[..],
            "{name}: corrupt file"
        );
    }
    let stats = el.stats();
    println!(
        "both downloads verified byte-for-byte on one thread \
         ({} datagrams sent, {} received, {} control answered)",
        stats.datagrams_sent, stats.datagrams_received, stats.control_answered
    );
}
