//! The paper's *vision* — a true digital fountain — end to end: a server
//! streaming fresh LT / Raptor symbols forever (no carousel, no fixed `n`),
//! the unchanged 12-byte header's `packet_index:serial` words carrying each
//! symbol's 64-bit seed, and receivers for whom **every** datagram is news
//! no matter how late they tune in or how much loss they sit behind.
//!
//! Run with: `cargo run --release --example rateless_fountain`
//!
//! The demo downloads the same file three ways over a lossy in-memory
//! multicast channel ([`SimMulticast`], deterministic, runs anywhere):
//!
//! 1. a **carousel** client joining late — it pays duplicates, and its
//!    distinctness efficiency `η_d = distinct/received` decays toward the
//!    sampling-with-replacement floor of `1 − 1/e ≈ 0.64`;
//! 2. an **LT fountain** client joining just as late — `η_d = 1.0` exactly;
//! 3. a **Raptor fountain** client — still `η_d = 1.0`, with the Tornado
//!    precode cutting the reception overhead from ≈ 1.11·k to ≈ 1.06·k.

use digital_fountain::proto::{
    ClientEvent, ClientSession, RatelessMode, ServerSession, SessionConfig, SimMulticast, Transport,
};

fn patterned_file(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 7) % 251) as u8).collect()
}

/// Stream one session to completion: the server transmits `skip_rounds`
/// rounds into the void before the receiver tunes in (a late join), then
/// rounds are pumped through a `loss`-lossy endpoint until the file decodes.
fn download(
    label: &str,
    file: &[u8],
    rateless: RatelessMode,
    skip_rounds: usize,
    loss: f64,
) -> Vec<u8> {
    let mut server = ServerSession::new(
        file,
        SessionConfig {
            rateless,
            code_seed: 1998,
            ..SessionConfig::default()
        },
    )
    .expect("session encodes");
    let info = server.control_info().clone();
    println!(
        "[{label}] k = {} source packets, control advertises n = {} ({:?})",
        info.k, info.n, rateless
    );

    let net = SimMulticast::new(42 ^ rateless.to_wire() as u64);
    let mut tx = net.endpoint(0.0);
    // The stream starts without us — a carousel has already cycled, a
    // fountain has already poured; the difference is what that costs below.
    for _ in 0..skip_rounds {
        server.send_round(&mut tx);
    }
    let mut rx = net.endpoint(loss);
    let mut client = ClientSession::new(info).expect("honest control info");
    for group in client.groups() {
        rx.join(group).expect("sim join");
    }
    let mut rounds = 0;
    'stream: while !client.is_complete() {
        server.send_round(&mut tx);
        rounds += 1;
        assert!(rounds < 2_000, "[{label}] download stalled");
        // A rateless stream never reports `ClientEvent::Duplicate`; the
        // carousel reports plenty once the receiver crosses a cycle.
        while let Some((_group, dgram)) = rx.recv() {
            if client.handle_datagram(dgram) == ClientEvent::Complete {
                break 'stream;
            }
        }
    }
    let stats = client.stats();
    println!(
        "[{label}] complete after {rounds} rounds: {} received / {} distinct, \
         overhead {:.3} x k, eta_d = {:.3}",
        stats.received(),
        stats.distinct(),
        stats.received() as f64 / stats.k() as f64,
        stats.distinctness_efficiency()
    );
    client.file().expect("complete").to_vec()
}

fn main() {
    let file = patterned_file(50_000);
    // 98 % loss drags the carousel receiver across many cycles; the
    // fountains shrug — every surviving symbol is fresh either way.
    let (skip, loss) = (3, 0.98);
    println!(
        "downloading {} bytes three ways (join {skip} rounds late, {:.0} % loss):\n",
        file.len(),
        loss * 100.0
    );
    let carousel = download("carousel", &file, RatelessMode::Off, skip, loss);
    println!("           ^ duplicates: eta_d sinks toward the 1 - 1/e ~ 0.64 floor\n");
    let lt = download("lt      ", &file, RatelessMode::Lt, skip, loss);
    let raptor = download("raptor  ", &file, RatelessMode::Raptor, skip, loss);
    println!("           ^ seed-carrying serials: every datagram distinct, eta_d = 1.0 exactly\n");
    assert_eq!(carousel, file);
    assert_eq!(lt, file);
    assert_eq!(raptor, file);
    println!("all three downloads reconstructed the file byte-for-byte");
}
