//! The paper's motivating scenario: a software publisher pushes one release
//! to a large population of clients that join at different times and sit
//! behind very different loss rates — no retransmissions, no feedback.
//!
//! The server carousels a Tornado-encoded release; every client simply
//! listens until its decoder completes.  The example reports per-client
//! reception efficiency and the aggregate the publisher cares about.
//!
//! Run with: `cargo run --release --example software_update`

use digital_fountain::core::{TornadoCode, TORNADO_A};
use digital_fountain::sim::{
    simulate_tornado_receiver, BernoulliLoss, GilbertElliottLoss, LossModel,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A 4 MB release, 1 KB packets.
    let k = 4 * 1024;
    let code = TornadoCode::with_profile(k, TORNADO_A, 2026).expect("valid parameters");
    println!(
        "release: {} packets, encoding {} packets",
        code.k(),
        code.n()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let report = |label: &str, outcomes: Vec<digital_fountain::sim::ReceiverOutcome>| {
        let avg: f64 = outcomes
            .iter()
            .map(|o| o.reception_efficiency())
            .sum::<f64>()
            / outcomes.len() as f64;
        let worst = outcomes
            .iter()
            .map(|o| o.reception_efficiency())
            .fold(f64::INFINITY, f64::min);
        println!(
            "{label:<28} clients {:>4}  avg efficiency {:.3}  worst {:.3}",
            outcomes.len(),
            avg,
            worst
        );
    };

    // Well-connected clients: 1 % independent loss.
    let outcomes: Vec<_> = (0..200)
        .map(|_| {
            let mut loss = BernoulliLoss::new(0.01);
            simulate_tornado_receiver(&code, &mut loss, &mut rng)
        })
        .collect();
    report("broadband clients (1% loss)", outcomes);

    // Congested clients: 20 % independent loss.
    let outcomes: Vec<_> = (0..200)
        .map(|_| {
            let mut loss = BernoulliLoss::new(0.20);
            simulate_tornado_receiver(&code, &mut loss, &mut rng)
        })
        .collect();
    report("congested clients (20% loss)", outcomes);

    // Mobile clients: bursty 40 % loss.
    let outcomes: Vec<_> = (0..100)
        .map(|_| {
            let mut loss = GilbertElliottLoss::with_average(0.40, 10.0);
            let o = simulate_tornado_receiver(&code, &mut loss, &mut rng);
            assert!(loss.average_loss_rate() > 0.0);
            o
        })
        .collect();
    report("mobile clients (40% bursty)", outcomes);

    println!("every client reconstructed the release without a single retransmission request");
}
