//! Shared helpers for the reproduction harness: timing utilities and the
//! experiment-row formatting used by the `repro` binary and the Criterion
//! benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use df_core::{TornadoCode, TornadoProfile};
use df_rs::{CauchyCode, ErasureCode, VandermondeCode};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Generate a pseudo-random "file" split into `k` packets of `packet_size`
/// bytes, as the paper's benchmarks do (1 KB packets).
pub fn random_packets(k: usize, packet_size: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..k)
        .map(|_| (0..packet_size).map(|_| rng.gen()).collect())
        .collect()
}

/// Measured encode/decode wall-clock times for one code at one file size.
#[derive(Debug, Clone, Copy)]
pub struct CodingTimes {
    /// Encoding time in seconds.
    pub encode_s: f64,
    /// Decoding time in seconds (half source / half redundant received, as in
    /// Tables 2 and 3 of the paper).
    pub decode_s: f64,
}

fn half_and_half(n: usize, k: usize, encoding: &[Vec<u8>]) -> Vec<(usize, Vec<u8>)> {
    // Receive k/2 source packets and enough redundant packets to reach k, the
    // reception mix the paper assumes for its decode benchmarks.
    let mut rx: Vec<(usize, Vec<u8>)> = (0..k / 2).map(|i| (i, encoding[i].clone())).collect();
    let mut idx = k;
    while rx.len() < k && idx < n {
        rx.push((idx, encoding[idx].clone()));
        idx += 1;
    }
    rx
}

/// Measure a Tornado profile at `k` source packets.
///
/// Decoding feeds random-order packets until completion, so the measured time
/// includes the (1+ε) reception overhead's worth of work.
pub fn measure_tornado(profile: TornadoProfile, k: usize, packet_size: usize) -> CodingTimes {
    let source = random_packets(k, packet_size, 0xbe11);
    let code = TornadoCode::with_profile(k, profile, 0x5eed).expect("profile builds");
    let t0 = Instant::now();
    let encoding = code.encode(&source).expect("encode");
    let encode_s = t0.elapsed().as_secs_f64();

    let mut order: Vec<usize> = (0..code.n()).collect();
    use rand::seq::SliceRandom;
    order.shuffle(&mut ChaCha8Rng::seed_from_u64(1));
    let t0 = Instant::now();
    let mut decoder = code.decoder();
    for &i in &order {
        if decoder.add_packet_ref(i, &encoding[i]).expect("in range")
            == df_core::AddOutcome::Complete
        {
            break;
        }
    }
    assert!(decoder.is_complete(), "tornado decode must complete");
    let decode_s = t0.elapsed().as_secs_f64();
    CodingTimes { encode_s, decode_s }
}

/// Measure the Cauchy Reed–Solomon whole-file code at `k` source packets.
pub fn measure_cauchy(k: usize, packet_size: usize) -> CodingTimes {
    let source = random_packets(k, packet_size, 0xca);
    let code = CauchyCode::new_large(k, 2 * k).expect("parameters");
    let t0 = Instant::now();
    let encoding = code.encode(&source).expect("encode");
    let encode_s = t0.elapsed().as_secs_f64();
    let rx = half_and_half(2 * k, k, &encoding);
    let t0 = Instant::now();
    let out = code.decode(&rx).expect("decode");
    let decode_s = t0.elapsed().as_secs_f64();
    assert_eq!(out, source);
    CodingTimes { encode_s, decode_s }
}

/// Measure the Vandermonde Reed–Solomon whole-file code at `k` source packets.
///
/// Construction cost (the systematic transform) is *not* charged to the
/// encode time, mirroring Rizzo's implementation which precomputes it.
pub fn measure_vandermonde(k: usize, packet_size: usize) -> CodingTimes {
    let source = random_packets(k, packet_size, 0x7a);
    let code = VandermondeCode::new_large(k, 2 * k).expect("parameters");
    let t0 = Instant::now();
    let encoding = code.encode(&source).expect("encode");
    let encode_s = t0.elapsed().as_secs_f64();
    let rx = half_and_half(2 * k, k, &encoding);
    let t0 = Instant::now();
    let out = code.decode(&rx).expect("decode");
    let decode_s = t0.elapsed().as_secs_f64();
    assert_eq!(out, source);
    CodingTimes { encode_s, decode_s }
}

/// Measure the Vandermonde code decoding **repeatedly behind one erasure
/// pattern**: the first decode pays the `O(k³)` inversion of the received
/// submatrix (and populates the per-pattern inverse cache), the timed second
/// decode reuses it — the steady state of a receiver decoding a carousel
/// behind a stable loss process.
///
/// Encode time is measured as in [`measure_vandermonde`].
pub fn measure_vandermonde_repeated(k: usize, packet_size: usize) -> CodingTimes {
    let source = random_packets(k, packet_size, 0x7a);
    let code = VandermondeCode::new_large(k, 2 * k).expect("parameters");
    let t0 = Instant::now();
    let encoding = code.encode(&source).expect("encode");
    let encode_s = t0.elapsed().as_secs_f64();
    let rx = half_and_half(2 * k, k, &encoding);
    let refs: Vec<(usize, &[u8])> = rx.iter().map(|(i, p)| (*i, p.as_slice())).collect();
    let mut out = Vec::new();
    code.decode_into(&refs, &mut out).expect("warm-up decode");
    let t0 = Instant::now();
    code.decode_into(&refs, &mut out).expect("repeat decode");
    let decode_s = t0.elapsed().as_secs_f64();
    assert_eq!(out, source);
    CodingTimes { encode_s, decode_s }
}

/// Measure the prototype protocol end-to-end: server-side session setup
/// (packetise + build code + encode) as the encode time, and the client-side
/// path — datagrams pumped through `SimMulticast` into
/// `ClientSession::handle_datagram` until the file reconstructs — as the
/// decode time.  Unlike the raw codec rows this includes packet framing,
/// validation, reception accounting and the statistical-attempt machinery,
/// so it tracks protocol overhead on top of `measure_tornado`.
pub fn measure_proto_throughput(k: usize, packet_size: usize) -> CodingTimes {
    use df_proto::{ClientEvent, ClientSession, ServerSession, SessionConfig, Transport};

    let data: Vec<u8> = random_packets(k, packet_size, 0x9707).concat();
    let t0 = Instant::now();
    let mut server = ServerSession::new(
        &data,
        SessionConfig {
            packet_size,
            code_seed: 0x5eed,
            ..SessionConfig::default()
        },
    )
    .expect("session encodes");
    let encode_s = t0.elapsed().as_secs_f64();

    let net = df_proto::SimMulticast::new(1);
    let mut tx = net.endpoint(0.0);
    let mut rx = net.endpoint(0.0);
    let mut client = ClientSession::new(server.control_info().clone()).expect("control info");
    for group in client.groups().collect::<Vec<_>>() {
        rx.join(group).expect("sim join");
    }
    let t0 = Instant::now();
    'outer: loop {
        server.send_round(&mut tx);
        while let Some((_group, datagram)) = rx.recv() {
            if client.handle_datagram(datagram) == ClientEvent::Complete {
                break 'outer;
            }
        }
    }
    let decode_s = t0.elapsed().as_secs_f64();
    assert_eq!(client.file().expect("complete"), &data[..]);
    CodingTimes { encode_s, decode_s }
}

/// Measure the per-block Cauchy decode time for interleaved-code estimates
/// (Table 4): a block of `block_k` source packets, half received from each
/// side.
pub fn measure_cauchy_block_decode(block_k: usize, packet_size: usize) -> f64 {
    let source = random_packets(block_k, packet_size, 0xb10c);
    let code = CauchyCode::new(block_k, 2 * block_k).expect("parameters");
    let encoding = code.encode(&source).expect("encode");
    let rx = half_and_half(2 * block_k, block_k, &encoding);
    let t0 = Instant::now();
    let out = code.decode(&rx).expect("decode");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(out, source);
    elapsed
}

/// One code's end-to-end throughput measurement for the machine-readable
/// benchmark report.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Code name ("tornado_a", "tornado_b", "cauchy", "vandermonde",
    /// "vandermonde_repeat", "proto_throughput").
    pub code: &'static str,
    /// Measured wall-clock times.
    pub times: CodingTimes,
    /// Encode throughput in MB/s of source data.
    pub encode_mbps: f64,
    /// Decode throughput in MB/s of source data (decode time includes the
    /// reception-overhead work for Tornado codes, as a real receiver pays it).
    pub decode_mbps: f64,
}

/// Element-wise best (minimum time) of `n` runs of a measurement.
///
/// The report's numbers gate CI (`perf_gate`), so single-shot wall-clock
/// timings are too fragile: a noisy-neighbour scheduler stall during one
/// 2 ms decode would read as a "regression".  The best of a few runs
/// measures what the code *can* do, which is the quantity whose decay a
/// perf gate is meant to catch.
fn best_of(n: usize, mut measure: impl FnMut() -> CodingTimes) -> CodingTimes {
    let mut best = measure();
    for _ in 1..n {
        let t = measure();
        best.encode_s = best.encode_s.min(t.encode_s);
        best.decode_s = best.decode_s.min(t.decode_s);
    }
    best
}

/// Measure all four codes of Tables 2/3 at one operating point — plus the
/// repeated-pattern Vandermonde decode, which isolates the per-pattern
/// inverse cache from the one-off `O(k³)` inversion, and the prototype
/// protocol's client-side throughput over `SimMulticast` — and return the
/// rows of the machine-readable report.  Every row is the best of three
/// runs (see `best_of` above) except the full Vandermonde decode, whose
/// multi-second `O(k³)` inversion is both stable and too slow to triple.
pub fn measure_all_codes(k: usize, packet_size: usize) -> Vec<ThroughputRow> {
    let file_mb = (k * packet_size) as f64 / 1e6;
    let row = |code: &'static str, times: CodingTimes| ThroughputRow {
        code,
        times,
        encode_mbps: file_mb / times.encode_s,
        decode_mbps: file_mb / times.decode_s,
    };
    vec![
        row(
            "tornado_a",
            best_of(3, || measure_tornado(df_core::TORNADO_A, k, packet_size)),
        ),
        row(
            "tornado_b",
            best_of(3, || measure_tornado(df_core::TORNADO_B, k, packet_size)),
        ),
        row("cauchy", best_of(3, || measure_cauchy(k, packet_size))),
        row("vandermonde", measure_vandermonde(k, packet_size)),
        row(
            "vandermonde_repeat",
            best_of(3, || measure_vandermonde_repeated(k, packet_size)),
        ),
        row(
            "proto_throughput",
            best_of(3, || measure_proto_throughput(k, packet_size)),
        ),
    ]
}

/// The driver-scale operating point of the benchmark report: 128 concurrent
/// client sessions (plus the server) each downloading a 500 KB file over
/// `SimMulticast` through the sharded `df_proto::Driver` — aggregate goodput
/// and completed sessions per second for the readiness-driven driver.  A
/// quarter of the population sits behind 20 % loss, so the carousel must
/// serve a lossy tail while the bulk completes early, as in a real
/// deployment.  Best of three runs, like the code rows.
pub fn measure_driver_throughput() -> df_sim::SwarmOutcome {
    measure_driver_shards(1)
}

/// One point of the shard sweep: the `measure_driver_throughput` workload
/// partitioned across `shards` worker threads (best of three runs).
pub fn measure_driver_shards(shards: usize) -> df_sim::SwarmOutcome {
    let run_once = || df_sim::swarm_experiment_sharded(500_000, 1024, 128, 0xd21f, 4_000, shards);
    let mut best = run_once();
    for _ in 1..3 {
        let run = run_once();
        if run.elapsed < best.elapsed {
            best = run;
        }
    }
    best
}

/// The multi-core shard sweep of the benchmark report: the driver workload
/// at 1, 2 and 4 worker shards.  On a machine with ≥ 4 cores the 4-shard
/// aggregate should reach ≥ 1.8× the 1-shard row (`perf_gate` asserts this
/// when the recorded `parallelism` permits); on smaller machines the sweep
/// is still recorded so the trajectory is visible.
pub fn measure_driver_shard_sweep() -> Vec<df_sim::SwarmOutcome> {
    [1, 2, 4]
        .iter()
        .map(|&s| measure_driver_shards(s))
        .collect()
}

/// The layered congestion-control operating point of the benchmark report:
/// a heterogeneous 1×/3×/7× bottleneck population on a 6-layer carousel
/// with an SP every 2 rounds — the `repro layered` experiment in miniature.
pub fn measure_layered_efficiency() -> Vec<df_sim::LayeredOutcome> {
    df_sim::layered_population_experiment(500_000, 6, 2, 1, &[1.0, 3.0, 7.0], 42, 400)
}

/// The rateless operating point of the benchmark report: LT and Raptor
/// sessions at the `k = 1000` acceptance point, streamed to completion over
/// a clean channel through the real seed-carrying wire format.  The rows
/// record reception overhead (`received/k` — the fountain's only cost, since
/// `η_d = 1.0` by construction), not throughput, so `perf_gate` never gates
/// them.
pub fn measure_rateless_overhead() -> Vec<df_sim::RatelessOverheadOutcome> {
    vec![
        df_sim::rateless_overhead_experiment(1000, 64, df_proto::RatelessMode::Lt, 20, 0xf0c5),
        df_sim::rateless_overhead_experiment(1000, 64, df_proto::RatelessMode::Raptor, 20, 0xf0c5),
    ]
}

/// End-to-end rateless session throughput at the report's main operating
/// point, one row per mode: `encode_s` is session construction (for Raptor,
/// the Tornado precode of all `k` packets), `decode_s` the client-side
/// stream-to-completion.  Mirrors `measure_proto_throughput` for the
/// carousel, so the carousel-vs-fountain cost of Section 7 is one report
/// away.
pub fn measure_rateless_throughput(k: usize, packet_size: usize) -> Vec<ThroughputRow> {
    use df_proto::{ClientEvent, ClientSession, RatelessMode, ServerSession, SessionConfig};

    let measure = |mode: RatelessMode| -> CodingTimes {
        let data: Vec<u8> = random_packets(k, packet_size, 0x2a7e).concat();
        let t0 = Instant::now();
        let mut server = ServerSession::new(
            &data,
            SessionConfig {
                packet_size,
                rateless: mode,
                code_seed: 0x5eed,
                ..SessionConfig::default()
            },
        )
        .expect("rateless session encodes");
        let encode_s = t0.elapsed().as_secs_f64();

        let mut client = ClientSession::new(server.control_info().clone()).expect("control info");
        let t0 = Instant::now();
        'outer: loop {
            while let Some((_group, dgram)) = server.poll_transmit() {
                if client.handle_datagram(dgram) == ClientEvent::Complete {
                    break 'outer;
                }
            }
            server.advance_round();
        }
        let decode_s = t0.elapsed().as_secs_f64();
        assert_eq!(client.file().expect("complete"), &data[..]);
        CodingTimes { encode_s, decode_s }
    };
    let file_mb = (k * packet_size) as f64 / 1e6;
    let row = |code: &'static str, times: CodingTimes| ThroughputRow {
        code,
        times,
        encode_mbps: file_mb / times.encode_s,
        decode_mbps: file_mb / times.decode_s,
    };
    vec![
        row("lt", best_of(3, || measure(RatelessMode::Lt))),
        row("raptor", best_of(3, || measure(RatelessMode::Raptor))),
    ]
}

/// The hostile-channel robustness point of the benchmark report: the
/// Gilbert–Elliott sweep (bursty loss up to a 50 % bad state, plus
/// reordering, duplication and jitter) through the real client stack.  The
/// rows record behaviour — completion, join/leave counts against burst
/// episodes, reception efficiency — not throughput, so `perf_gate` reports
/// them without gating.
pub fn measure_hostile_channel() -> Vec<df_sim::HostileOutcome> {
    df_sim::hostile_sweep(&[0.2, 0.5], &[4.0, 16.0], 0x6e11)
}

/// Render the machine-readable benchmark report (`BENCH_pr<N>.json`) that
/// tracks the repo's performance trajectory across PRs.
///
/// The JSON is assembled by hand — the schema is five keys deep and stable,
/// and keeping df-bench serializer-free keeps the bench dependency graph
/// minimal.
pub fn bench_json_report(pr: u32, k: usize, packet_size: usize) -> String {
    let rows = measure_all_codes(k, packet_size);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"pr\": {pr},\n"));
    out.push_str(&format!("  \"operating_point\": {{\"k\": {k}, \"packet_bytes\": {packet_size}, \"file_kb\": {}}},\n", k * packet_size / 1000));
    out.push_str(&format!(
        "  \"gf8_kernel\": \"{}\",\n",
        df_gf::kernels::active_kernel()
    ));
    out.push_str(&format!(
        "  \"gf16_kernel\": \"{}\",\n",
        df_gf::kernels::gf16::active_kernel()
    ));
    out.push_str("  \"codes\": {\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"encode_s\": {:.6}, \"decode_s\": {:.6}, \"encode_mbps\": {:.2}, \"decode_mbps\": {:.2}}}{}\n",
            r.code,
            r.times.encode_s,
            r.times.decode_s,
            r.encode_mbps,
            r.decode_mbps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    // The readiness-driven sharded driver: aggregate goodput and session
    // completion rate for 100+ concurrent downloads, swept across 1/2/4
    // worker shards.  The top-level fields keep the legacy 1-shard shape so
    // older baselines still gate the row; `shard_sweep` carries the
    // multi-core points and `parallelism` records how many cores the sweep
    // actually had (perf_gate only asserts scaling when it is ≥ 4).
    let sweep = measure_driver_shard_sweep();
    let swarm = &sweep[0];
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    out.push_str(&format!(
        "  \"driver_throughput\": {{\"clients\": {}, \"completed\": {}, \"file_kb\": {}, \"steps\": {}, \"aggregate_mbps\": {:.2}, \"sessions_per_s\": {:.2}, \"parallelism\": {}, \"shard_sweep\": [\n",
        swarm.clients,
        swarm.completed,
        swarm.file_len / 1000,
        swarm.steps,
        swarm.aggregate_mbps(),
        swarm.sessions_per_second(),
        parallelism,
    ));
    for (i, run) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"completed\": {}, \"steps\": {}, \"aggregate_mbps\": {:.2}, \"sessions_per_s\": {:.2}}}{}\n",
            run.shards,
            run.completed,
            run.steps,
            run.aggregate_mbps(),
            run.sessions_per_second(),
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]},\n");
    // Receiver-driven congestion control: convergence level, completion
    // rounds and reception efficiency per bottleneck (Section 7.1 / the
    // Figure 7 scenario over the real protocol stack).
    let layered = measure_layered_efficiency();
    out.push_str("  \"layered_efficiency\": [\n");
    for (i, r) in layered.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bottleneck\": {:.1}, \"complete\": {}, \"final_level\": {}, \"rounds\": {}, \"reception_efficiency\": {:.4}, \"distinctness_efficiency\": {:.4}}}{}\n",
            r.bottleneck,
            r.complete,
            r.final_level,
            r.rounds,
            r.reception_efficiency(),
            r.distinctness_efficiency(),
            if i + 1 < layered.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // True rateless mode: session throughput per mode (gated once a
    // baseline carries the rows; against older baselines perf_gate reports
    // them un-gated) and the k = 1000 reception-overhead acceptance rows.
    let rateless = measure_rateless_throughput(k, packet_size);
    out.push_str("  \"rateless_throughput\": {\n");
    for (i, r) in rateless.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"encode_s\": {:.6}, \"decode_s\": {:.6}, \"encode_mbps\": {:.2}, \"decode_mbps\": {:.2}}}{}\n",
            r.code,
            r.times.encode_s,
            r.times.decode_s,
            r.encode_mbps,
            r.decode_mbps,
            if i + 1 < rateless.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    let overhead = measure_rateless_overhead();
    out.push_str("  \"rateless_overhead\": [\n");
    for (i, r) in overhead.iter().enumerate() {
        let mode = match r.mode {
            df_proto::RatelessMode::Lt => "lt",
            df_proto::RatelessMode::Raptor => "raptor",
            df_proto::RatelessMode::Off => "off",
        };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"k\": {}, \"trials\": {}, \"mean_overhead\": {:.4}, \"worst_overhead\": {:.4}, \"within_1_15\": {}, \"min_distinctness\": {:.4}}}{}\n",
            mode,
            r.k,
            r.trials,
            r.mean_overhead,
            r.worst_overhead,
            r.within_115,
            r.min_distinctness,
            if i + 1 < overhead.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // Robustness under hostile channels: Gilbert–Elliott bursty loss with
    // reordering and duplication through the adaptive layered receiver.
    // Behavioural rows (reported, not gated — see `measure_hostile_channel`).
    let hostile = measure_hostile_channel();
    out.push_str("  \"hostile_channel\": [\n");
    for (i, r) in hostile.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"loss_bad\": {:.2}, \"burst_len\": {:.1}, \"complete\": {}, \"rounds\": {}, \"joins\": {}, \"leaves\": {}, \"burst_episodes\": {}, \"rejected\": {}, \"reception_efficiency\": {:.4}}}{}\n",
            r.loss_bad,
            r.burst_len,
            r.complete,
            r.rounds,
            r.joins(),
            r.leaves(),
            r.burst_episodes,
            r.rejected,
            r.reception_efficiency(),
            if i + 1 < hostile.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Format seconds the way the paper's tables do.
pub fn fmt_seconds(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.3} s", s)
    } else {
        format!("{:.2} s", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_core::TORNADO_A;

    #[test]
    fn tornado_measurement_roundtrips() {
        let t = measure_tornado(TORNADO_A, 128, 64);
        assert!(t.encode_s >= 0.0 && t.decode_s >= 0.0);
    }

    #[test]
    fn proto_measurement_roundtrips() {
        let t = measure_proto_throughput(64, 128);
        assert!(t.encode_s > 0.0 && t.decode_s > 0.0);
    }

    #[test]
    fn rs_measurements_roundtrip() {
        let c = measure_cauchy(64, 64);
        let v = measure_vandermonde(64, 64);
        let vr = measure_vandermonde_repeated(64, 64);
        assert!(c.encode_s > 0.0 && v.encode_s > 0.0);
        assert!(vr.decode_s > 0.0);
        assert!(measure_cauchy_block_decode(20, 64) > 0.0);
    }

    #[test]
    fn seconds_formatting() {
        assert!(fmt_seconds(0.0000005).contains("µs"));
        assert!(fmt_seconds(0.5).contains("0.500"));
        assert!(fmt_seconds(12.3).starts_with("12.30"));
    }
}
