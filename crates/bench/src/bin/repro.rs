//! Regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p df-bench --bin repro -- <experiment> [--full]
//! ```
//!
//! where `<experiment>` is one of `table1`, `table2`, `table3`, `table4`,
//! `table5`, `figure2`, `figure4`, `figure5`, `figure6`, `figure8`,
//! `layered`, `hostile`, or `all`.  The `layered` experiment runs the
//! Figure 7-style heterogeneous-bottleneck population through the real
//! `df-proto` layered sessions (receiver-driven join/leave over
//! `SimMulticast`); `hostile` sweeps Gilbert–Elliott bursty-loss parameters
//! (plus reordering and duplication) through the adaptive receiver and
//! reports completion, join/leave stability and reception efficiency.
//! The additional `bench-json` mode (with optional `--pr=N` and `--out=PATH`,
//! defaulting to `--pr=1` and `BENCH_pr<N>.json`) emits a machine-readable
//! encode/decode-throughput report for the four Table 2/3 codes — plus a
//! repeated-pattern Vandermonde decode row isolating the per-pattern inverse
//! cache, a `proto_throughput` row measuring the client-side protocol
//! path (`ClientSession::handle_datagram` over `SimMulticast`), a
//! `driver_throughput` row (aggregate MB/s and sessions/s for 128
//! concurrent downloads through the sharded `df_proto::Driver`, swept
//! across 1/2/4 worker shards), and a
//! `layered_efficiency` section recording convergence level, completion
//! rounds and reception efficiency per bottleneck — used to track
//! performance across PRs.  CI regenerates the report and
//! `crates/bench/src/bin/perf_gate.rs` fails the build if any row shared
//! with the committed baseline regressed beyond its tolerance.
//! By default the harness runs *scaled-down* parameter sets (smaller maximum
//! file sizes and fewer trials) so that `all` completes in a few minutes;
//! pass `--full` for the paper's full sizes and trial counts (hours for the
//! Reed–Solomon columns, exactly as the paper's own 30 000-second entries
//! suggest).  EXPERIMENTS.md records a paper-vs-measured comparison for every
//! experiment.

use df_bench::{
    fmt_seconds, measure_cauchy, measure_cauchy_block_decode, measure_tornado, measure_vandermonde,
};
use df_core::{OverheadStats, TornadoCode, TORNADO_A, TORNADO_B};
use df_mcast::{simulate_single_layer_receiver, LayeredSession, TransmissionSchedule};
use df_sim::experiment::{default_schemes, Scheme};
use df_sim::{
    file_size_experiment, receiver_scaling_experiment, speedup_table, trace_experiment, TraceSet,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const PACKET_KB: usize = 1;

struct Config {
    full: bool,
}

impl Config {
    /// File sizes (KB) used by the coding-time tables.
    fn table_sizes(&self) -> Vec<usize> {
        if self.full {
            vec![250, 500, 1024, 2048, 4096, 8192, 16_384]
        } else {
            vec![250, 500, 1024, 2048]
        }
    }

    /// Largest size (KB) for which the Vandermonde baseline is run; the paper
    /// itself lists "not available" above 2 MB.
    fn vandermonde_limit(&self) -> usize {
        if self.full {
            2048
        } else {
            500
        }
    }

    fn figure2_trials(&self) -> usize {
        if self.full {
            10_000
        } else {
            400
        }
    }

    fn figure2_k(&self) -> usize {
        if self.full {
            16_384
        } else {
            2_048
        }
    }

    fn figure4_receivers(&self) -> Vec<usize> {
        if self.full {
            vec![1, 10, 100, 1_000, 10_000]
        } else {
            vec![1, 10, 100, 1_000]
        }
    }

    fn figure4_trials(&self) -> usize {
        if self.full {
            20
        } else {
            3
        }
    }

    fn figure5_sizes(&self) -> Vec<usize> {
        if self.full {
            vec![100, 250, 500, 1_024, 2_048, 4_096, 8_192, 16_384]
        } else {
            vec![100, 250, 500, 1_024, 2_048]
        }
    }

    fn figure5_receivers(&self) -> usize {
        if self.full {
            500
        } else {
            60
        }
    }

    fn figure6_receivers(&self) -> usize {
        if self.full {
            120
        } else {
            40
        }
    }

    fn figure8_points(&self) -> usize {
        if self.full {
            12
        } else {
            6
        }
    }
}

fn table1() {
    println!("== Table 1: Properties of Tornado vs Reed-Solomon codes ==");
    println!("{:<22} {:<28} {:<28}", "", "Tornado", "Reed-Solomon");
    println!(
        "{:<22} {:<28} {:<28}",
        "Reception overhead", "> 0 required (measured below)", "0"
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "Encoding time", "(k+l) ln(1/eps) P  [XOR]", "k (1+l) P  [field ops]"
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "Decoding time", "(k+l) ln(1/eps) P  [XOR]", "k (1+x) P  [field ops]"
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "Basic operation", "simple XOR", "field operations"
    );
    // Back the qualitative rows with the measured average XOR cost per packet.
    for (name, profile) in [("Tornado A", TORNADO_A), ("Tornado B", TORNADO_B)] {
        let code = TornadoCode::with_profile(2048, profile, 1).unwrap();
        println!(
            "  {name}: average XORs per packet = {:.2}, stretch factor = {:.1}",
            code.cascade().average_xor_cost(),
            code.stretch_factor()
        );
    }
}

fn coding_tables(cfg: &Config) {
    println!("== Tables 2 and 3: encoding / decoding times (packet size 1 KB, stretch 2) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14} | {:>14} {:>14} {:>14} {:>14}",
        "SIZE",
        "Vand enc",
        "Cauchy enc",
        "TornA enc",
        "TornB enc",
        "Vand dec",
        "Cauchy dec",
        "TornA dec",
        "TornB dec"
    );
    for &size_kb in &cfg.table_sizes() {
        let k = size_kb / PACKET_KB;
        let packet = PACKET_KB * 1024;
        let vand = if size_kb <= cfg.vandermonde_limit() {
            Some(measure_vandermonde(k, packet))
        } else {
            None
        };
        let cauchy = measure_cauchy(k, packet);
        let ta = measure_tornado(TORNADO_A, k, packet);
        let tb = measure_tornado(TORNADO_B, k, packet);
        let size_label = if size_kb >= 1024 {
            format!("{} MB", size_kb / 1024)
        } else {
            format!("{size_kb} KB")
        };
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>14} | {:>14} {:>14} {:>14} {:>14}",
            size_label,
            vand.map(|v| fmt_seconds(v.encode_s))
                .unwrap_or_else(|| "n/a".into()),
            fmt_seconds(cauchy.encode_s),
            fmt_seconds(ta.encode_s),
            fmt_seconds(tb.encode_s),
            vand.map(|v| fmt_seconds(v.decode_s))
                .unwrap_or_else(|| "n/a".into()),
            fmt_seconds(cauchy.decode_s),
            fmt_seconds(ta.decode_s),
            fmt_seconds(tb.decode_s),
        );
    }
}

fn figure2(cfg: &Config) {
    println!(
        "== Figure 2: reception overhead variation ({} trials) ==",
        cfg.figure2_trials()
    );
    for (name, profile) in [("Tornado A", TORNADO_A), ("Tornado B", TORNADO_B)] {
        let code = TornadoCode::with_profile(cfg.figure2_k(), profile, 0xf16).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let stats = OverheadStats::from_samples(
            (0..cfg.figure2_trials())
                .map(|_| code.overhead_trial(&mut rng))
                .collect(),
        );
        println!(
            "{name}: mean {:.4}  std {:.4}  max {:.4}  (paper: A mean 0.0548 max 0.0850, B mean 0.0306 max 0.0550)",
            stats.mean(),
            stats.std_dev(),
            stats.max()
        );
        println!("  percent of clients unfinished vs length overhead:");
        for (x, pct) in stats.unfinished_curve(stats.max() * 1.05, 10) {
            println!("    overhead {:>6.3}  unfinished {:>5.1} %", x, pct);
        }
    }
}

fn table4(cfg: &Config) {
    println!("== Table 4: speedup of Tornado A over interleaved codes of comparable efficiency ==");
    let sizes = cfg.table_sizes();
    let losses = [0.01, 0.05, 0.10, 0.20, 0.50];
    // Per-block decode cost model measured once per block size (k^2-ish).
    let block_times: Vec<(usize, f64)> = [8usize, 16, 32, 64, 128]
        .iter()
        .map(|&b| (b, measure_cauchy_block_decode(b, PACKET_KB * 1024)))
        .collect();
    let per_block = move |k: usize| -> f64 {
        // Interpolate with the quadratic model through the nearest measurement.
        let (bk, bt) = block_times
            .iter()
            .min_by_key(|(b, _)| (*b as i64 - k as i64).abs())
            .copied()
            .unwrap();
        bt * (k as f64 / bk as f64).powi(2)
    };
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "SIZE", "p=0.01", "p=0.05", "p=0.10", "p=0.20", "p=0.50"
    );
    for &size_kb in &sizes {
        let k = size_kb / PACKET_KB;
        let tornado = measure_tornado(TORNADO_A, k, PACKET_KB * 1024);
        let mut row = Vec::new();
        for &p in &losses {
            let r = speedup_table(
                size_kb,
                PACKET_KB,
                p,
                0.15,
                0.01,
                if cfg.full { 200 } else { 40 },
                &per_block,
                tornado.decode_s,
                7,
            );
            row.push(format!("{:.1}", r.speedup));
        }
        let size_label = if size_kb >= 1024 {
            format!("{} MB", size_kb / 1024)
        } else {
            format!("{size_kb} KB")
        };
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            size_label, row[0], row[1], row[2], row[3], row[4]
        );
    }
    println!("(paper reports speedups of 4.7x to 311x over the same grid)");
}

fn table5() {
    println!(
        "== Table 5 / Figure 7: reverse-binary transmission schedule, 4 layers, 8-packet block =="
    );
    let s = TransmissionSchedule::new(4, 8);
    println!(
        "{:<8} {:<10} packets sent in rounds 1..8",
        "Layer", "Bandwidth"
    );
    for layer in (0..4).rev() {
        let rounds: Vec<String> = (0..8)
            .map(|r| {
                let o = s.offsets_for(layer, r);
                if o.len() == 1 {
                    format!("{}", o[0])
                } else {
                    format!("{}-{}", o.first().unwrap(), o.last().unwrap())
                }
            })
            .collect();
        println!(
            "{:<8} {:<10} {}",
            layer,
            s.layer_bandwidth(layer),
            rounds.join("  ")
        );
    }
}

fn figure4(cfg: &Config) {
    println!("== Figure 4: reception efficiency vs number of receivers (1 MB file) ==");
    for p in [0.1, 0.5] {
        println!("-- loss probability p = {p} --");
        let points = receiver_scaling_experiment(
            1024,
            PACKET_KB,
            p,
            &cfg.figure4_receivers(),
            &default_schemes(),
            cfg.figure4_trials(),
            0xf4,
        );
        println!(
            "{:<20} {:>10} {:>12} {:>12}",
            "scheme", "receivers", "avg eff", "worst eff"
        );
        for pt in points {
            println!(
                "{:<20} {:>10} {:>12.3} {:>12.3}",
                pt.scheme, pt.x as usize, pt.avg_efficiency, pt.min_efficiency
            );
        }
    }
}

fn figure5(cfg: &Config) {
    println!(
        "== Figure 5: reception efficiency vs file size ({} receivers) ==",
        cfg.figure5_receivers()
    );
    for p in [0.1, 0.5] {
        println!("-- loss probability p = {p} --");
        let points = file_size_experiment(
            &cfg.figure5_sizes(),
            PACKET_KB,
            p,
            cfg.figure5_receivers(),
            &default_schemes(),
            0xf5,
        );
        println!(
            "{:<20} {:>12} {:>12} {:>12}",
            "scheme", "file KB", "avg eff", "worst eff"
        );
        for pt in points {
            println!(
                "{:<20} {:>12} {:>12.3} {:>12.3}",
                pt.scheme, pt.x as usize, pt.avg_efficiency, pt.min_efficiency
            );
        }
    }
}

fn figure6(cfg: &Config) {
    println!(
        "== Figure 6: reception efficiency on (synthetic) MBone-like traces ({} receivers, mean loss ~18%) ==",
        cfg.figure6_receivers()
    );
    let traces = TraceSet::synthetic(cfg.figure6_receivers(), 200_000, 0.18, 0xf6);
    println!(
        "generated trace set: mean loss rate {:.3}",
        traces.mean_loss_rate()
    );
    let sizes = cfg.figure5_sizes();
    let schemes = vec![
        Scheme::Tornado(TORNADO_A),
        Scheme::Interleaved { block_source: 50 },
        Scheme::Interleaved { block_source: 20 },
    ];
    let points = trace_experiment(&sizes, PACKET_KB, &traces, &schemes, 0xf6);
    println!("{:<20} {:>12} {:>12}", "scheme", "file KB", "avg eff");
    for pt in points {
        println!(
            "{:<20} {:>12} {:>12.3}",
            pt.scheme, pt.x as usize, pt.avg_efficiency
        );
    }
}

fn figure8(cfg: &Config) {
    println!("== Figure 8: prototype reception efficiencies vs packet loss (2 MB file, 500 B packets) ==");
    // 2 MB file with 500-byte packets gives k = 4132 ≈ the paper's 8264/2
    // (the paper's clip is "slightly over two megabytes"); we use k = 4132.
    let k = 2 * 1024 * 1024 / 500 / PACKET_KB;
    let code = TornadoCode::new_a(k, 0xf8).unwrap();
    let schedule = TransmissionSchedule::new(4, code.n());
    println!("-- single layer --");
    println!("{:>8} {:>8} {:>8} {:>8}", "loss %", "eta_d", "eta_c", "eta");
    let mut rng = ChaCha8Rng::seed_from_u64(0x51);
    for i in 0..cfg.figure8_points() {
        let loss = i as f64 * 0.70 / (cfg.figure8_points() - 1) as f64;
        let r = simulate_single_layer_receiver(&code, &schedule, loss, &mut rng);
        println!(
            "{:>8.0} {:>8.3} {:>8.3} {:>8.3}",
            loss * 100.0,
            r.distinctness_efficiency(),
            r.coding_efficiency(),
            r.reception_efficiency()
        );
    }
    println!("-- 4 layers with SP/burst congestion control --");
    println!(
        "{:>14} {:>8} {:>8} {:>8} {:>8}",
        "extra loss %", "eta_d", "eta_c", "eta", "level"
    );
    // Frequent SPs relative to the download length so the receiver actually
    // changes subscription levels during the transfer (the effect Figure 8's
    // multilayer panel is about).
    let session = LayeredSession::new(6, code.n(), 2, 1).expect("valid layered parameters");
    let mut rng = ChaCha8Rng::seed_from_u64(0x52);
    for i in 0..cfg.figure8_points() {
        let loss = i as f64 * 0.40 / (cfg.figure8_points() - 1) as f64;
        // Bottleneck sits between levels so subscription changes occur, which
        // is what degrades distinctness efficiency in the paper's multilayer
        // runs.
        let r = session.simulate_receiver(&code, 3.0, loss, &mut rng);
        println!(
            "{:>14.0} {:>8.3} {:>8.3} {:>8.3} {:>8}",
            loss * 100.0,
            r.distinctness_efficiency(),
            r.coding_efficiency(),
            r.reception_efficiency(),
            r.final_level
        );
    }
}

fn layered() {
    println!(
        "== Layered congestion control: heterogeneous bottlenecks over the real protocol stack =="
    );
    println!(
        "(6 layers, SP every 2 rounds, 1-round burst; cumulative level bandwidths 1, 2, 4, 8, 16, 32)"
    );
    println!(
        "{:>12} {:>10} {:>8} {:>8} {:>10} {:>8} {:>8}",
        "bottleneck", "complete", "level", "rounds", "pkts/round", "eta", "eta_d"
    );
    for r in df_bench::measure_layered_efficiency() {
        println!(
            "{:>12.1} {:>10} {:>8} {:>8} {:>10.0} {:>8.3} {:>8.3}",
            r.bottleneck,
            r.complete,
            r.final_level,
            r.rounds,
            r.received as f64 / r.rounds.max(1) as f64,
            r.reception_efficiency(),
            r.distinctness_efficiency()
        );
    }
    println!("(each receiver converges to the highest level its bottleneck sustains;");
    println!(" realized packets/round — and so download time — tracks the subscribed rate)");
}

fn hostile() {
    println!("== Hostile channels: Gilbert–Elliott bursty loss through the adaptive receiver ==");
    println!("(5 layers, SP every 2 rounds; reorder 5%, duplicate 2%, jitter 2 arrivals;");
    println!(" bad-state occupancy 15%, good-state residual loss 0.5%)");
    println!(
        "{:>9} {:>10} {:>9} {:>9} {:>7} {:>6} {:>7} {:>9} {:>9} {:>7}",
        "loss_bad",
        "burst_len",
        "avg_loss",
        "complete",
        "rounds",
        "joins",
        "leaves",
        "episodes",
        "rejected",
        "eta"
    );
    let loss_bads = [0.1, 0.2, 0.3, 0.5];
    let burst_lens = [4.0, 8.0, 16.0];
    for out in df_sim::hostile_sweep(&loss_bads, &burst_lens, 0x6e11) {
        let cfg = df_sim::HostileConfig {
            loss_bad: out.loss_bad,
            burst_len: out.burst_len,
            ..df_sim::HostileConfig::default()
        };
        println!(
            "{:>9.2} {:>10.1} {:>9.3} {:>9} {:>7} {:>6} {:>7} {:>9} {:>9} {:>7.3}",
            out.loss_bad,
            out.burst_len,
            cfg.average_loss(),
            out.complete,
            out.rounds,
            out.joins(),
            out.leaves(),
            out.burst_episodes,
            out.rejected,
            out.reception_efficiency()
        );
    }
    println!("(every receiver completes; leaves stay bounded by the channel's burst episodes,");
    println!(" and the client's packet-buffer cap is never hit by honest traffic)");
}

fn rateless() {
    println!("== True rateless mode: LT / Raptor fountains vs the carousel ==");
    println!("(seed-carrying wire serials; every datagram is a fresh symbol, so eta_d = 1.0)");
    println!(
        "{:>8} {:>8} {:>8} {:>10} {:>10} {:>12} {:>8}",
        "mode", "k", "trials", "mean_ovh", "worst_ovh", "within_1.15", "eta_d"
    );
    for k in [100usize, 300, 1000] {
        for mode in [df_proto::RatelessMode::Lt, df_proto::RatelessMode::Raptor] {
            let r = df_sim::rateless_overhead_experiment(k, 64, mode, 20, 0xf0c5);
            println!(
                "{:>8} {:>8} {:>8} {:>10.4} {:>10.4} {:>12} {:>8.3}",
                if mode == df_proto::RatelessMode::Lt {
                    "lt"
                } else {
                    "raptor"
                },
                r.k,
                r.trials,
                r.mean_overhead,
                r.worst_overhead,
                format!("{}/{}", r.within_115, r.trials),
                r.min_distinctness
            );
        }
    }
    println!("(overhead = received/k at completion; shrinks toward the k = 1000 acceptance");
    println!(" point of 1.15, with Raptor's precode beating plain LT at every size)");
    println!();
    println!("-- Late join, 98% loss: the carousel pays duplicates, the fountain does not --");
    println!(
        "{:>10} {:>10} {:>10} {:>8}",
        "stream", "received", "distinct", "eta_d"
    );
    let o = df_sim::late_join_experiment(50_000, 500, 3, 0.98, 21);
    for (name, r) in [("carousel", o.carousel), ("rateless", o.rateless)] {
        println!(
            "{:>10} {:>10} {:>10} {:>8.3}",
            name, r.received, r.distinct, r.distinctness
        );
    }
    println!("(heavy loss walks the carousel receiver across many cycles: reception becomes");
    println!(" sampling with replacement and eta_d decays toward the 1 - 1/e ~ 0.64 floor,");
    println!(" while the rateless stream holds eta_d = 1.0 at any join time)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let cfg = Config { full };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let run = |name: &str| what == name || what == "all";
    if what == "bench-json" {
        // Machine-readable perf trajectory: encode/decode MB/s for all four
        // codes at the 1 MB / 1 KB-packet operating point of Table 2 — the
        // smallest size at which Tornado A has a real cascade (at 250 KB it
        // degenerates to a single Reed–Solomon block) while every code still
        // finishes in seconds.
        let pr: u32 = args
            .iter()
            .find(|a| a.starts_with("--pr="))
            .map(|a| a["--pr=".len()..].parse().expect("--pr must be a number"))
            .unwrap_or(1);
        let path = args
            .iter()
            .find(|a| a.starts_with("--out="))
            .map(|a| a["--out=".len()..].to_string())
            .unwrap_or_else(|| format!("BENCH_pr{pr}.json"));
        let report = df_bench::bench_json_report(pr, 1000, PACKET_KB * 1024);
        std::fs::write(&path, &report).expect("write benchmark report");
        print!("{report}");
        eprintln!("wrote {path}");
        return;
    }
    if run("table1") {
        table1();
        println!();
    }
    if run("table2") || run("table3") {
        coding_tables(&cfg);
        println!();
    }
    if what == "all" && !(run("table2") || run("table3")) {
        coding_tables(&cfg);
        println!();
    }
    if run("figure2") {
        figure2(&cfg);
        println!();
    }
    if run("table4") {
        table4(&cfg);
        println!();
    }
    if run("table5") || run("figure7") {
        table5();
        println!();
    }
    if run("figure4") {
        figure4(&cfg);
        println!();
    }
    if run("figure5") {
        figure5(&cfg);
        println!();
    }
    if run("figure6") {
        figure6(&cfg);
        println!();
    }
    if run("figure8") {
        figure8(&cfg);
        println!();
    }
    if run("layered") {
        layered();
        println!();
    }
    if run("hostile") {
        hostile();
        println!();
    }
    if run("rateless") {
        rateless();
        println!();
    }
}
