//! The CI performance gate: compare a freshly generated `bench-json` report
//! against a committed `BENCH_pr<N>.json` baseline and **fail** (exit 1) on
//! a throughput regression beyond the tolerance in any shared row.
//!
//! Usage:
//!
//! ```text
//! perf_gate --baseline=BENCH_pr4.json --fresh=bench-report.json [--tolerance=0.30]
//! perf_gate --baseline=BENCH_pr4.json --self-test [--tolerance=0.30]
//! ```
//!
//! A row is *shared* when both reports carry it — newly added rows (or rows
//! retired by a redesign) are reported but never gate, so the baseline file
//! only needs updating when a PR actually records new numbers.  The compared
//! metrics are the throughput fields: `codes.<name>.{encode,decode}_mbps`,
//! `rateless_throughput.<mode>.{encode,decode}_mbps` and
//! `driver_throughput.{aggregate_mbps,sessions_per_s}`.  Latency-shaped
//! fields (`*_s`), the layered-efficiency section (convergence levels, not
//! speed) and the `rateless_overhead` rows (reception-overhead ratios) are
//! ignored.
//!
//! `--self-test` proves the gate can fail: it synthesizes a report with
//! every throughput metric halved (an injected 2× slowdown), checks the gate
//! rejects it at the given tolerance, and checks an identical report passes
//! — guarding the guard, so a refactor that quietly made the comparison
//! vacuous turns CI red.
//!
//! Beyond the baseline comparison, the gate asserts the **multi-core shard
//! scaling** of the fresh report on its own: when the driver row records
//! `parallelism >= 4`, the 4-shard aggregate must reach at least 1.8× the
//! 1-shard row.  On machines with fewer cores the check is skipped loudly —
//! a 1-core container cannot demonstrate parallel speedup, but the sweep is
//! still recorded in the report for machines that can.

use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Throughput metrics extracted from one report: metric path → MB/s (or
/// sessions/s).
type Metrics = BTreeMap<String, f64>;

fn object(value: &Value) -> Option<&[(String, Value)]> {
    match value {
        Value::Object(fields) => Some(fields),
        _ => None,
    }
}

fn field<'v>(value: &'v Value, name: &str) -> Option<&'v Value> {
    object(value)?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
}

fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Pull every gated throughput metric out of a parsed report.
fn extract_metrics(report: &Value) -> Metrics {
    let mut out = Metrics::new();
    if let Some(codes) = field(report, "codes").and_then(object) {
        for (code, row) in codes {
            for metric in ["encode_mbps", "decode_mbps"] {
                if let Some(v) = field(row, metric).and_then(as_f64) {
                    out.insert(format!("codes.{code}.{metric}"), v);
                }
            }
        }
    }
    if let Some(rateless) = field(report, "rateless_throughput").and_then(object) {
        for (mode, row) in rateless {
            for metric in ["encode_mbps", "decode_mbps"] {
                if let Some(v) = field(row, metric).and_then(as_f64) {
                    out.insert(format!("rateless_throughput.{mode}.{metric}"), v);
                }
            }
        }
    }
    if let Some(driver) = field(report, "driver_throughput") {
        for metric in ["aggregate_mbps", "sessions_per_s"] {
            if let Some(v) = field(driver, metric).and_then(as_f64) {
                out.insert(format!("driver_throughput.{metric}"), v);
            }
        }
    }
    out
}

/// One compared metric.
#[derive(Debug, PartialEq)]
struct Comparison {
    metric: String,
    baseline: f64,
    fresh: f64,
    /// `fresh / baseline` — below `1 - tolerance` is a regression.
    ratio: f64,
    regressed: bool,
}

/// Compare the shared metrics of two reports at the given tolerance.
fn compare(baseline: &Metrics, fresh: &Metrics, tolerance: f64) -> Vec<Comparison> {
    baseline
        .iter()
        .filter_map(|(metric, &base)| {
            let &new = fresh.get(metric)?;
            let ratio = if base > 0.0 { new / base } else { 1.0 };
            Some(Comparison {
                metric: metric.clone(),
                baseline: base,
                fresh: new,
                ratio,
                regressed: ratio < 1.0 - tolerance,
            })
        })
        .collect()
}

fn render(comparisons: &[Comparison], tolerance: f64) -> bool {
    let mut ok = true;
    println!(
        "{:<42} {:>12} {:>12} {:>8}  verdict (tolerance {:.0}%)",
        "metric",
        "baseline",
        "fresh",
        "ratio",
        tolerance * 100.0
    );
    for c in comparisons {
        let verdict = if c.regressed {
            ok = false;
            "REGRESSED"
        } else if c.ratio > 1.0 + tolerance {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<42} {:>12.2} {:>12.2} {:>8.2}  {}",
            c.metric, c.baseline, c.fresh, c.ratio, verdict
        );
    }
    ok
}

/// The multi-core datum of the driver row: how many cores the report's
/// machine had, and the 1-shard / 4-shard aggregate throughput from the
/// shard sweep.
#[derive(Debug, PartialEq)]
struct ShardScaling {
    parallelism: u64,
    one_shard_mbps: f64,
    four_shard_mbps: f64,
}

/// The 4-shard row must reach this multiple of the 1-shard row — but only
/// on machines whose recorded `parallelism` can actually express a speedup.
const SHARD_SCALING_FLOOR: f64 = 1.8;

fn extract_shard_scaling(report: &Value) -> Option<ShardScaling> {
    let driver = field(report, "driver_throughput")?;
    let parallelism = field(driver, "parallelism").and_then(as_f64)? as u64;
    let sweep = match field(driver, "shard_sweep")? {
        Value::Array(rows) => rows,
        _ => return None,
    };
    let mbps_at = |n: f64| {
        sweep.iter().find_map(|row| {
            (field(row, "shards").and_then(as_f64) == Some(n))
                .then(|| field(row, "aggregate_mbps").and_then(as_f64))
                .flatten()
        })
    };
    Some(ShardScaling {
        parallelism,
        one_shard_mbps: mbps_at(1.0)?,
        four_shard_mbps: mbps_at(4.0)?,
    })
}

/// Assert the fresh report's own multi-core scaling (no baseline involved).
/// Returns `false` — failing the gate — only when the report was measured
/// on ≥ 4 cores and the 4-shard aggregate still fell short of the floor.
fn check_shard_scaling(scaling: Option<&ShardScaling>) -> bool {
    let Some(s) = scaling else {
        println!("shard scaling: fresh report carries no shard_sweep row — not checked");
        return true;
    };
    if s.parallelism < 4 {
        println!(
            "shard scaling: SKIPPED — report was measured with parallelism = {} (< 4 cores); \
             a 4-shard speedup cannot be demonstrated on this machine",
            s.parallelism
        );
        return true;
    }
    let ratio = if s.one_shard_mbps > 0.0 {
        s.four_shard_mbps / s.one_shard_mbps
    } else {
        0.0
    };
    let ok = ratio >= SHARD_SCALING_FLOOR;
    println!(
        "shard scaling: 1-shard {:.2} MB/s -> 4-shard {:.2} MB/s ({ratio:.2}x, floor \
         {SHARD_SCALING_FLOOR}x, parallelism {}) {}",
        s.one_shard_mbps,
        s.four_shard_mbps,
        s.parallelism,
        if ok { "ok" } else { "REGRESSED" }
    );
    ok
}

/// A loaded report: its gated metrics plus the kernel tiers it was measured
/// on (used to flag hardware mismatches, which make absolute MB/s
/// comparisons suspect) and the driver row's shard-scaling datum.
struct Report {
    metrics: Metrics,
    kernels: Vec<(String, String)>,
    scaling: Option<ShardScaling>,
}

fn load_report(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value =
        serde_json::parse_value_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    let metrics = extract_metrics(&value);
    if metrics.is_empty() {
        return Err(format!("{path} contains no throughput metrics"));
    }
    let kernels = ["gf8_kernel", "gf16_kernel"]
        .iter()
        .filter_map(|name| {
            field(&value, name).and_then(|v| match v {
                Value::String(s) => Some((name.to_string(), s.clone())),
                _ => None,
            })
        })
        .collect();
    let scaling = extract_shard_scaling(&value);
    Ok(Report {
        metrics,
        kernels,
        scaling,
    })
}

/// Absolute throughput only compares like with like: if the two reports were
/// measured through different kernel tiers (different CPU, or a forced
/// tier), say so loudly — a "regression" may just be hardware identity.
fn warn_on_kernel_mismatch(baseline: &Report, fresh: &Report) {
    for (name, base_tier) in &baseline.kernels {
        if let Some((_, fresh_tier)) = fresh.kernels.iter().find(|(n, _)| n == name) {
            if base_tier != fresh_tier {
                println!(
                    "WARNING: baseline {name} = {base_tier:?} but fresh report used \
                     {fresh_tier:?} — this machine differs from the baseline's, so \
                     absolute-throughput verdicts below are suspect"
                );
            }
        }
    }
}

/// Prove the gate can both pass and fail at this tolerance: an identical
/// report must pass, a uniformly 2×-slower one must be rejected.
fn self_test(baseline: &Metrics, tolerance: f64) -> Result<(), String> {
    let identical = compare(baseline, baseline, tolerance);
    if identical.iter().any(|c| c.regressed) {
        return Err("self-test: an identical report was flagged as regressed".into());
    }
    let halved: Metrics = baseline.iter().map(|(k, v)| (k.clone(), v / 2.0)).collect();
    let slowed = compare(baseline, &halved, tolerance);
    if !slowed.iter().all(|c| c.regressed) {
        return Err(format!(
            "self-test: a 2x slowdown escaped the gate at tolerance {tolerance} \
             (tolerance >= 0.5 cannot catch a halving)"
        ));
    }
    println!(
        "self-test ok: identical report passes, 2x slowdown is rejected on all {} metrics",
        slowed.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |prefix: &str| {
        args.iter()
            .find(|a| a.starts_with(prefix))
            .map(|a| a[prefix.len()..].to_string())
    };
    let baseline_path = get("--baseline=").unwrap_or_else(|| "BENCH_pr10.json".to_string());
    let fresh_path = get("--fresh=").unwrap_or_else(|| "bench-report.json".to_string());
    let tolerance: f64 = get("--tolerance=")
        .map(|t| t.parse().expect("--tolerance must be a number"))
        .unwrap_or(0.30);
    assert!(
        (0.0..1.0).contains(&tolerance),
        "--tolerance must be in [0, 1)"
    );

    let baseline = match load_report(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.iter().any(|a| a == "--self-test") {
        return match self_test(&baseline.metrics, tolerance) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("perf_gate: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let fresh = match load_report(&fresh_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    warn_on_kernel_mismatch(&baseline, &fresh);
    let comparisons = compare(&baseline.metrics, &fresh.metrics, tolerance);
    if comparisons.is_empty() {
        eprintln!("perf_gate: no shared metrics between {baseline_path} and {fresh_path}");
        return ExitCode::FAILURE;
    }
    let only_in = |a: &Metrics, b: &Metrics, which: &str| {
        for metric in a.keys().filter(|m| !b.contains_key(*m)) {
            println!("{metric:<42} (only in {which}; not gated)");
        }
    };
    only_in(&baseline.metrics, &fresh.metrics, "baseline");
    only_in(&fresh.metrics, &baseline.metrics, "fresh report");
    let rows_ok = render(&comparisons, tolerance);
    let scaling_ok = check_shard_scaling(fresh.scaling.as_ref());
    if rows_ok && scaling_ok {
        println!("perf gate: ok ({} shared metrics)", comparisons.len());
        ExitCode::SUCCESS
    } else {
        if !rows_ok {
            eprintln!(
                "perf gate: throughput regressed beyond {:.0}% on at least one shared row",
                tolerance * 100.0
            );
        }
        if !scaling_ok {
            eprintln!(
                "perf gate: 4-shard driver throughput fell below {SHARD_SCALING_FLOOR}x the \
                 1-shard row on a >= 4-core machine"
            );
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "pr": 4,
      "gf8_kernel": "avx2",
      "codes": {
        "tornado_a": {"encode_s": 0.002, "decode_s": 0.004, "encode_mbps": 500.0, "decode_mbps": 250.0},
        "cauchy": {"encode_s": 0.1, "decode_s": 0.1, "encode_mbps": 9.5, "decode_mbps": 10.5}
      },
      "driver_throughput": {"clients": 128, "aggregate_mbps": 400.0, "sessions_per_s": 800.0,
        "parallelism": 8,
        "shard_sweep": [
          {"shards": 1, "aggregate_mbps": 400.0},
          {"shards": 2, "aggregate_mbps": 760.0},
          {"shards": 4, "aggregate_mbps": 1440.0}
        ]},
      "layered_efficiency": [{"bottleneck": 1.0, "rounds": 18}]
    }"#;

    fn sample_metrics() -> Metrics {
        extract_metrics(&serde_json::parse_value_str(SAMPLE).unwrap())
    }

    #[test]
    fn extraction_finds_throughput_and_ignores_latency_and_layered_rows() {
        let m = sample_metrics();
        assert_eq!(
            m.keys().collect::<Vec<_>>(),
            vec![
                "codes.cauchy.decode_mbps",
                "codes.cauchy.encode_mbps",
                "codes.tornado_a.decode_mbps",
                "codes.tornado_a.encode_mbps",
                "driver_throughput.aggregate_mbps",
                "driver_throughput.sessions_per_s",
            ]
        );
        assert_eq!(m["codes.tornado_a.encode_mbps"], 500.0);
        assert_eq!(m["driver_throughput.sessions_per_s"], 800.0);
    }

    #[test]
    fn rateless_throughput_rows_extract_but_overhead_rows_do_not() {
        let report = r#"{
          "pr": 8,
          "codes": {"tornado_a": {"encode_mbps": 500.0, "decode_mbps": 250.0}},
          "rateless_throughput": {
            "lt": {"encode_s": 0.001, "decode_s": 0.02, "encode_mbps": 900.0, "decode_mbps": 50.0},
            "raptor": {"encode_s": 0.002, "decode_s": 0.02, "encode_mbps": 450.0, "decode_mbps": 52.0}
          },
          "rateless_overhead": [{"mode": "lt", "k": 1000, "mean_overhead": 1.11}]
        }"#;
        let m = extract_metrics(&serde_json::parse_value_str(report).unwrap());
        assert_eq!(m["rateless_throughput.lt.decode_mbps"], 50.0);
        assert_eq!(m["rateless_throughput.raptor.encode_mbps"], 450.0);
        assert!(
            m.keys().all(|k| !k.contains("rateless_overhead")),
            "overhead ratios are reported in the JSON but never gated: {m:?}"
        );
        // Against a baseline without the rows they are unshared: reported,
        // not gated.  The committed BENCH_pr10.json *does* carry them, so in
        // CI the rateless rows gate for real (see the test below).
        let cmp = compare(&sample_metrics(), &m, 0.30);
        assert!(cmp.iter().all(|c| !c.metric.starts_with("rateless")));
    }

    #[test]
    fn shard_scaling_extracts_and_gates_only_on_big_machines() {
        let value = serde_json::parse_value_str(SAMPLE).unwrap();
        let scaling = extract_shard_scaling(&value).expect("SAMPLE carries a shard sweep");
        assert_eq!(
            scaling,
            ShardScaling {
                parallelism: 8,
                one_shard_mbps: 400.0,
                four_shard_mbps: 1440.0,
            }
        );
        // 3.6x on an 8-core machine: passes.
        assert!(check_shard_scaling(Some(&scaling)));
        // 1.2x on an 8-core machine: that is the regression the gate exists
        // to catch.
        let flat = ShardScaling {
            parallelism: 8,
            one_shard_mbps: 400.0,
            four_shard_mbps: 480.0,
        };
        assert!(!check_shard_scaling(Some(&flat)));
        // The same flat sweep on a 1-core machine is expected — skipped.
        let one_core = ShardScaling {
            parallelism: 1,
            ..flat
        };
        assert!(check_shard_scaling(Some(&one_core)));
        // A report without the sweep (an old baseline) is never gated on it.
        assert!(check_shard_scaling(None));
    }

    #[test]
    fn reports_without_a_sweep_still_load() {
        let report = r#"{
          "codes": {"tornado_a": {"encode_mbps": 500.0, "decode_mbps": 250.0}},
          "driver_throughput": {"clients": 128, "aggregate_mbps": 400.0, "sessions_per_s": 800.0}
        }"#;
        let value = serde_json::parse_value_str(report).unwrap();
        assert_eq!(extract_shard_scaling(&value), None);
        assert!(extract_metrics(&value).contains_key("driver_throughput.aggregate_mbps"));
    }

    #[test]
    fn identical_reports_pass() {
        let m = sample_metrics();
        let cmp = compare(&m, &m, 0.30);
        assert_eq!(cmp.len(), 6);
        assert!(cmp.iter().all(|c| !c.regressed));
        assert!(self_test(&m, 0.30).is_ok());
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        let m = sample_metrics();
        let halved: Metrics = m.iter().map(|(k, v)| (k.clone(), v / 2.0)).collect();
        let cmp = compare(&m, &halved, 0.30);
        assert!(cmp.iter().all(|c| c.regressed), "{cmp:?}");
        // …while a 10 % dip stays within the default tolerance.
        let dip: Metrics = m.iter().map(|(k, v)| (k.clone(), v * 0.9)).collect();
        assert!(compare(&m, &dip, 0.30).iter().all(|c| !c.regressed));
        // A single-row regression is enough to fail.
        let mut one_bad = m.clone();
        *one_bad.get_mut("codes.cauchy.decode_mbps").unwrap() /= 3.0;
        let cmp = compare(&m, &one_bad, 0.30);
        assert_eq!(cmp.iter().filter(|c| c.regressed).count(), 1);
    }

    #[test]
    fn tolerance_is_respected() {
        let m = sample_metrics();
        let halved: Metrics = m.iter().map(|(k, v)| (k.clone(), v / 2.0)).collect();
        // At 60 % tolerance a halving is allowed — and the self-test says so.
        assert!(compare(&m, &halved, 0.60).iter().all(|c| !c.regressed));
        assert!(self_test(&m, 0.60).is_err());
    }

    #[test]
    fn unshared_rows_do_not_gate() {
        let m = sample_metrics();
        let mut fresh = m.clone();
        fresh.remove("codes.cauchy.encode_mbps"); // row retired in fresh
        fresh.insert("codes.new_code.encode_mbps".into(), 1.0); // new row
        let cmp = compare(&m, &fresh, 0.30);
        assert_eq!(cmp.len(), 5, "only shared metrics are compared");
        assert!(cmp.iter().all(|c| !c.regressed));
    }

    #[test]
    fn the_committed_baseline_parses_and_gates_the_driver_row() {
        // The gate must be able to read the real baseline this repository
        // ships — and that baseline must carry the driver_throughput row,
        // otherwise the event-loop's headline metric is silently ungated.
        // The path is relative to the workspace root, where both CI and
        // `cargo test` run.
        for candidate in ["BENCH_pr10.json", "../../BENCH_pr10.json"] {
            if std::path::Path::new(candidate).exists() {
                let report = load_report(candidate).expect("committed baseline parses");
                assert!(report.metrics.contains_key("codes.tornado_a.encode_mbps"));
                assert!(
                    report
                        .metrics
                        .contains_key("driver_throughput.aggregate_mbps"),
                    "the CI baseline must gate the driver row"
                );
                assert!(
                    report
                        .metrics
                        .contains_key("rateless_throughput.lt.decode_mbps")
                        && report
                            .metrics
                            .contains_key("rateless_throughput.raptor.decode_mbps"),
                    "the CI baseline must gate the rateless rows"
                );
                assert!(!report.kernels.is_empty(), "kernel tiers are recorded");
                assert!(
                    report.scaling.is_some(),
                    "the CI baseline must record the driver shard sweep"
                );
                return;
            }
        }
        panic!("BENCH_pr10.json not found from the test working directory");
    }
}
