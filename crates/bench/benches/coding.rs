//! Criterion benchmarks backing Tables 2 and 3: encode and decode throughput
//! of Tornado A/B versus the Cauchy and Vandermonde Reed–Solomon baselines at
//! a 250 KB file (1 KB packets, stretch factor 2).
//!
//! The `repro` binary measures the full size sweep; this bench exists so
//! `cargo bench` gives statistically sound numbers for the headline
//! comparison at a size every code can finish quickly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use df_bench::random_packets;
use df_core::{TornadoCode, TORNADO_A, TORNADO_B};
use df_rs::{CauchyCode, ErasureCode, VandermondeCode};

const K: usize = 250;
const PACKET: usize = 1024;

fn encode_benches(c: &mut Criterion) {
    let source = random_packets(K, PACKET, 1);
    let mut group = c.benchmark_group("encode_250KB");
    group.sample_size(10);

    let ta = TornadoCode::with_profile(K, TORNADO_A, 1).unwrap();
    group.bench_function("tornado_a", |b| b.iter(|| ta.encode(&source).unwrap()));
    let tb = TornadoCode::with_profile(K, TORNADO_B, 1).unwrap();
    group.bench_function("tornado_b", |b| b.iter(|| tb.encode(&source).unwrap()));
    let cauchy = CauchyCode::new_large(K, 2 * K).unwrap();
    group.bench_function("cauchy_rs", |b| b.iter(|| cauchy.encode(&source).unwrap()));
    let vander = VandermondeCode::new_large(K, 2 * K).unwrap();
    group.bench_function("vandermonde_rs", |b| {
        b.iter(|| vander.encode(&source).unwrap())
    });
    group.finish();
}

fn decode_benches(c: &mut Criterion) {
    let source = random_packets(K, PACKET, 2);
    let mut group = c.benchmark_group("decode_250KB");
    group.sample_size(10);

    // Tornado: feed a shuffled prefix of the encoding until completion.
    let ta = TornadoCode::with_profile(K, TORNADO_A, 1).unwrap();
    let enc_a = ta.encode(&source).unwrap();
    let order: Vec<usize> = (0..ta.n()).rev().collect();
    group.bench_function("tornado_a", |b| {
        b.iter_batched(
            || ta.decoder(),
            |mut dec| {
                for &i in &order {
                    // By reference: the measured loop no longer allocates a
                    // fresh payload per offered packet.
                    if dec.add_packet_ref(i, &enc_a[i]).unwrap() == df_core::AddOutcome::Complete {
                        break;
                    }
                }
                assert!(dec.is_complete());
            },
            BatchSize::SmallInput,
        )
    });

    // Reed–Solomon baselines: half source, half redundant.
    let cauchy = CauchyCode::new_large(K, 2 * K).unwrap();
    let enc_c = cauchy.encode(&source).unwrap();
    let rx_c: Vec<(usize, Vec<u8>)> = (0..K / 2)
        .map(|i| (i, enc_c[i].clone()))
        .chain((K..K + K - K / 2).map(|i| (i, enc_c[i].clone())))
        .collect();
    group.bench_function("cauchy_rs", |b| b.iter(|| cauchy.decode(&rx_c).unwrap()));

    let vander = VandermondeCode::new_large(K, 2 * K).unwrap();
    let enc_v = vander.encode(&source).unwrap();
    let rx_v: Vec<(usize, Vec<u8>)> = (0..K / 2)
        .map(|i| (i, enc_v[i].clone()))
        .chain((K..K + K - K / 2).map(|i| (i, enc_v[i].clone())))
        .collect();
    group.bench_function("vandermonde_rs", |b| {
        b.iter(|| vander.decode(&rx_v).unwrap())
    });
    group.finish();
}

criterion_group!(benches, encode_benches, decode_benches);
criterion_main!(benches);
