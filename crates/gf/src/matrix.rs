//! Dense matrices over a [`Field`], with the operations Reed–Solomon erasure
//! codes need: multiplication, Gaussian-elimination inversion, systematic-form
//! construction, and Vandermonde / Cauchy constructors.
//!
//! The matrices here are *small* (dimension = number of packets in a block, a
//! few hundred to a few tens of thousands of entries), so a straightforward
//! row-major `Vec<F>` representation with O(n^3) inversion is appropriate and
//! is exactly what the baseline codes in the paper pay for — that cost is the
//! point of the comparison against Tornado codes.

use crate::field::Field;
use crate::{GfError, Result};

/// A dense row-major matrix over the field `F`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// Create a matrix of the given shape filled with zeros.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// Create the identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m[(i, i)] = F::ONE;
        }
        m
    }

    /// Build a matrix from a row-major vector of elements.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<F>) -> Self {
        assert_eq!(data.len(), rows * cols, "element count must match shape");
        Matrix { rows, cols, data }
    }

    /// Build a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A Vandermonde matrix whose entry (r, c) is `points[r]^c`.
    ///
    /// With distinct evaluation points every square submatrix formed by
    /// selecting `cols` rows is invertible, which is the property the
    /// Vandermonde Reed–Solomon code relies on.
    pub fn vandermonde(points: &[F], cols: usize) -> Self {
        Self::from_fn(points.len(), cols, |r, c| points[r].pow(c as u64))
    }

    /// A Cauchy matrix whose entry (r, c) is `1 / (x[r] + y[c])`.
    ///
    /// Requires `x[r] + y[c] != 0` for all pairs, i.e. the two point sets are
    /// disjoint (addition is XOR in GF(2^w)).  Every square submatrix of a
    /// Cauchy matrix is invertible.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] if the point sets overlap.
    pub fn cauchy(x: &[F], y: &[F]) -> Result<Self> {
        let mut data = Vec::with_capacity(x.len() * y.len());
        for &xi in x {
            for &yj in y {
                let denom = xi + yj;
                let inv = denom.inverse().ok_or(GfError::DivisionByZero)?;
                data.push(inv);
            }
        }
        Ok(Matrix {
            rows: x.len(),
            cols: y.len(),
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    pub fn row(&self, r: usize) -> &[F] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow a row mutably.
    pub fn row_mut(&mut self, r: usize) -> &mut [F] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extract a new matrix consisting of the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Self {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: rows.len(),
            cols: self.cols,
            data,
        }
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] if the inner dimensions differ.
    pub fn mul(&self, rhs: &Matrix<F>) -> Result<Matrix<F>> {
        if self.cols != rhs.rows {
            return Err(GfError::DimensionMismatch {
                expected: format!("{}x*", self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = a * rhs[(l, j)];
                    out[(i, j)] += prod;
                }
            }
        }
        Ok(out)
    }

    /// Invert the matrix with Gauss–Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::SingularMatrix`] if the matrix is singular and
    /// [`GfError::DimensionMismatch`] if it is not square.
    pub fn inverse(&self) -> Result<Matrix<F>> {
        if self.rows != self.cols {
            return Err(GfError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot row with a nonzero entry in this column.
            let pivot = (col..n)
                .find(|&r| !work[(r, col)].is_zero())
                .ok_or(GfError::SingularMatrix)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let p = work[(col, col)];
            let p_inv = p.inverse().ok_or(GfError::SingularMatrix)?;
            for j in 0..n {
                work[(col, j)] *= p_inv;
                inv[(col, j)] *= p_inv;
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work[(r, col)];
                if factor.is_zero() {
                    continue;
                }
                for j in 0..n {
                    let w = factor * work[(col, j)];
                    work[(r, j)] -= w;
                    let v = factor * inv[(col, j)];
                    inv[(r, j)] -= v;
                }
            }
        }
        Ok(inv)
    }

    /// Solve `self * x = b` for a single right-hand-side vector.
    ///
    /// Used by erasure decoders that only need one combination rather than the
    /// full inverse.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is singular or shapes are inconsistent.
    pub fn solve(&self, b: &[F]) -> Result<Vec<F>> {
        if b.len() != self.rows {
            return Err(GfError::DimensionMismatch {
                expected: format!("rhs of length {}", self.rows),
                found: format!("length {}", b.len()),
            });
        }
        let inv = self.inverse()?;
        let mut x = vec![F::ZERO; self.cols];
        for i in 0..self.cols {
            let mut acc = F::ZERO;
            for j in 0..self.rows {
                acc += inv[(i, j)] * b[j];
            }
            x[i] = acc;
        }
        Ok(x)
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * cols);
        head[lo * cols..lo * cols + cols].swap_with_slice(&mut tail[..cols]);
    }

    /// Convert a generator matrix into *systematic* form.
    ///
    /// For an `n x k` generator matrix whose top `k x k` block is invertible,
    /// multiplying on the right by the inverse of that block produces a
    /// generator whose top block is the identity.  Encoding with the
    /// systematic generator leaves the first `k` output packets identical to
    /// the source packets, which is what Rizzo-style Vandermonde codes do.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::SingularMatrix`] if the top block is singular.
    pub fn systematic(&self) -> Result<Matrix<F>> {
        if self.rows < self.cols {
            return Err(GfError::DimensionMismatch {
                expected: "at least as many rows as columns".to_string(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let k = self.cols;
        let top: Vec<usize> = (0..k).collect();
        let top_block = self.select_rows(&top);
        let inv = top_block.inverse()?;
        self.mul(&inv)
    }

    /// True if this matrix is the identity.
    pub fn is_identity(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                let expect = if r == c { F::ONE } else { F::ZERO };
                if self[(r, c)] != expect {
                    return false;
                }
            }
        }
        true
    }
}

impl<F: Field> std::ops::Index<(usize, usize)> for Matrix<F> {
    type Output = F;
    fn index(&self, (r, c): (usize, usize)) -> &F {
        &self.data[r * self.cols + c]
    }
}

impl<F: Field> std::ops::IndexMut<(usize, usize)> for Matrix<F> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut F {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GF256, GF65536};
    use proptest::prelude::*;

    #[test]
    fn identity_times_anything_is_identity_op() {
        let m = Matrix::<GF256>::from_fn(4, 4, |r, c| GF256(((r * 7 + c * 3 + 1) % 256) as u8));
        let id = Matrix::<GF256>::identity(4);
        assert_eq!(id.mul(&m).unwrap(), m);
        assert_eq!(m.mul(&id).unwrap(), m);
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let id = Matrix::<GF256>::identity(6);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn vandermonde_square_is_invertible() {
        let points: Vec<GF256> = (1..=8u8).map(GF256).collect();
        let m = Matrix::vandermonde(&points, 8);
        let inv = m
            .inverse()
            .expect("Vandermonde with distinct points is invertible");
        assert!(m.mul(&inv).unwrap().is_identity());
    }

    #[test]
    fn cauchy_square_is_invertible() {
        let x: Vec<GF256> = (1..=10u8).map(GF256).collect();
        let y: Vec<GF256> = (11..=20u8).map(GF256).collect();
        let m = Matrix::cauchy(&x, &y).unwrap();
        let inv = m.inverse().expect("Cauchy matrices are invertible");
        assert!(m.mul(&inv).unwrap().is_identity());
    }

    #[test]
    fn cauchy_rejects_overlapping_points() {
        let x: Vec<GF256> = vec![GF256(1), GF256(2)];
        let y: Vec<GF256> = vec![GF256(2), GF256(3)];
        assert_eq!(Matrix::cauchy(&x, &y), Err(GfError::DivisionByZero));
    }

    #[test]
    fn singular_matrix_reports_error() {
        // Two identical rows.
        let m = Matrix::<GF256>::from_vec(2, 2, vec![GF256(3), GF256(5), GF256(3), GF256(5)]);
        assert_eq!(m.inverse(), Err(GfError::SingularMatrix));
    }

    #[test]
    fn non_square_inverse_is_dimension_error() {
        let m = Matrix::<GF256>::zero(2, 3);
        assert!(matches!(
            m.inverse(),
            Err(GfError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn systematic_form_has_identity_prefix() {
        let points: Vec<GF256> = (1..=12u8).map(GF256).collect();
        let gen = Matrix::vandermonde(&points, 8);
        let sys = gen.systematic().unwrap();
        let top = sys.select_rows(&(0..8).collect::<Vec<_>>());
        assert!(top.is_identity());
        // Any 8 rows of the systematic generator must still be invertible
        // (the MDS property survives the change of basis).
        let pick = [0usize, 2, 3, 5, 8, 9, 10, 11];
        assert!(sys.select_rows(&pick).inverse().is_ok());
    }

    #[test]
    fn solve_matches_inverse_multiplication() {
        let points: Vec<GF65536> = (1..=6u16).map(GF65536).collect();
        let m = Matrix::vandermonde(&points, 6);
        let b: Vec<GF65536> = (10..16u16).map(GF65536).collect();
        let x = m.solve(&b).unwrap();
        // Check m * x == b
        for r in 0..6 {
            let mut acc = GF65536::ZERO;
            for c in 0..6 {
                acc += m[(r, c)] * x[c];
            }
            assert_eq!(acc, b[r]);
        }
    }

    #[test]
    fn select_rows_preserves_content() {
        let m = Matrix::<GF256>::from_fn(5, 3, |r, c| GF256((r * 3 + c) as u8));
        let s = m.select_rows(&[4, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), m.row(4));
        assert_eq!(s.row(1), m.row(0));
        assert_eq!(s.row(2), m.row(2));
    }

    #[test]
    fn swap_rows_noop_on_same_index() {
        let mut m = Matrix::<GF256>::from_fn(3, 3, |r, c| GF256((r * 3 + c) as u8));
        let before = m.clone();
        m.swap_rows(1, 1);
        assert_eq!(m, before);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random square matrices over GF(2^8): if inversion succeeds the
        /// product with the inverse must be the identity.
        #[test]
        fn prop_inverse_roundtrip(seed in any::<u64>(), n in 1usize..10) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let m = Matrix::<GF256>::from_fn(n, n, |_, _| GF256(rng.gen()));
            if let Ok(inv) = m.inverse() {
                prop_assert!(m.mul(&inv).unwrap().is_identity());
                prop_assert!(inv.mul(&m).unwrap().is_identity());
            }
        }

        /// Any square row-selection of a Cauchy-extended systematic generator
        /// is invertible (the MDS property the erasure decoder depends on).
        #[test]
        fn prop_vandermonde_submatrices_invertible(
            k in 2usize..7,
            extra in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{seq::SliceRandom, SeedableRng};
            let n = k + extra;
            let points: Vec<GF256> = (1..=n as u8).map(GF256).collect();
            let gen = Matrix::vandermonde(&points, k);
            let mut rows: Vec<usize> = (0..n).collect();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            rows.shuffle(&mut rng);
            let picked: Vec<usize> = rows.into_iter().take(k).collect();
            prop_assert!(gen.select_rows(&picked).inverse().is_ok());
        }
    }
}
