//! Polynomials over a [`Field`].
//!
//! Used for Lagrange-style evaluation checks in tests and for constructing
//! evaluation-point sets for the Vandermonde Reed–Solomon code.  This module
//! is intentionally small: the erasure codes themselves work directly with
//! matrices, but having an independent polynomial implementation lets the test
//! suite cross-check the codes against the "evaluate a degree-(k-1) polynomial
//! at n points" view of Reed–Solomon.

use crate::field::Field;

/// A dense polynomial with coefficients in `F`, lowest degree first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly<F: Field> {
    coeffs: Vec<F>,
}

impl<F: Field> Poly<F> {
    /// Construct from coefficients (constant term first).  Trailing zeros are
    /// trimmed so that the degree is well defined.
    pub fn new(mut coeffs: Vec<F>) -> Self {
        while coeffs.len() > 1 && coeffs.last().map(|c| c.is_zero()).unwrap_or(false) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(F::ZERO);
        }
        Poly { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly {
            coeffs: vec![F::ZERO],
        }
    }

    /// Degree of the polynomial (0 for constants, including the zero poly).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficients, lowest degree first.
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Evaluate at a point using Horner's rule.
    pub fn eval(&self, x: F) -> F {
        let mut acc = F::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Lagrange interpolation through the given (x, y) points.
    ///
    /// # Panics
    ///
    /// Panics if the x-values are not distinct or the slices differ in length.
    pub fn interpolate(xs: &[F], ys: &[F]) -> Self {
        assert_eq!(
            xs.len(),
            ys.len(),
            "interpolate needs matching point counts"
        );
        let n = xs.len();
        let mut result = vec![F::ZERO; n.max(1)];
        for i in 0..n {
            // Build the i-th Lagrange basis polynomial incrementally.
            let mut basis = vec![F::ONE];
            let mut denom = F::ONE;
            for j in 0..n {
                if i == j {
                    continue;
                }
                // basis *= (x - xs[j])  (subtraction == addition in char 2)
                let mut next = vec![F::ZERO; basis.len() + 1];
                for (d, &b) in basis.iter().enumerate() {
                    next[d + 1] += b;
                    next[d] += b * xs[j];
                }
                basis = next;
                let diff = xs[i] + xs[j];
                assert!(!diff.is_zero(), "interpolation points must be distinct");
                denom *= diff;
            }
            let scale = ys[i]
                * denom
                    .inverse()
                    .expect("denominator is a product of nonzero factors");
            for (d, &b) in basis.iter().enumerate() {
                result[d] += b * scale;
            }
        }
        Poly::new(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GF256;
    use proptest::prelude::*;

    #[test]
    fn eval_constant() {
        let p = Poly::new(vec![GF256(7)]);
        assert_eq!(p.degree(), 0);
        assert_eq!(p.eval(GF256(99)), GF256(7));
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Poly::new(vec![GF256(1), GF256(2), GF256(0), GF256(0)]);
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn interpolate_recovers_polynomial() {
        let p = Poly::new(vec![GF256(3), GF256(1), GF256(4), GF256(1), GF256(5)]);
        let xs: Vec<GF256> = (1..=5u8).map(GF256).collect();
        let ys: Vec<GF256> = xs.iter().map(|&x| p.eval(x)).collect();
        let q = Poly::interpolate(&xs, &ys);
        assert_eq!(p, q);
    }

    #[test]
    fn interpolation_through_any_k_points_is_consistent() {
        // Reed–Solomon view: a degree-(k-1) polynomial is determined by any k
        // of its evaluations.
        let p = Poly::new(vec![GF256(9), GF256(8), GF256(7)]);
        let xs: Vec<GF256> = (1..=6u8).map(GF256).collect();
        let ys: Vec<GF256> = xs.iter().map(|&x| p.eval(x)).collect();
        let pick = [5usize, 1, 3];
        let sel_x: Vec<GF256> = pick.iter().map(|&i| xs[i]).collect();
        let sel_y: Vec<GF256> = pick.iter().map(|&i| ys[i]).collect();
        assert_eq!(Poly::interpolate(&sel_x, &sel_y), p);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_points_panic() {
        let xs = vec![GF256(1), GF256(1)];
        let ys = vec![GF256(2), GF256(3)];
        let _ = Poly::interpolate(&xs, &ys);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_interpolation_roundtrip(coeffs in proptest::collection::vec(any::<u8>(), 1..8)) {
            let p = Poly::new(coeffs.into_iter().map(GF256).collect());
            let n = p.degree() + 1;
            let xs: Vec<GF256> = (1..=n as u8).map(GF256).collect();
            let ys: Vec<GF256> = xs.iter().map(|&x| p.eval(x)).collect();
            prop_assert_eq!(Poly::interpolate(&xs, &ys), p);
        }
    }
}
