//! GF(2^8) — the byte field used by the Cauchy and Vandermonde Reed–Solomon
//! baselines for block sizes up to 255 packets.
//!
//! Elements are single bytes.  Multiplication and division are table-driven:
//! full 64 KiB multiplication tables are precomputed once per process (lazily)
//! from log/exp tables over the primitive polynomial `0x11d`, which is the
//! same polynomial used by Rizzo's `fec` code referenced by the paper.

// In characteristic 2, addition and subtraction genuinely are XOR.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use crate::field::Field;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
const PRIM_POLY: u16 = 0x11d;

/// Precomputed log/exp and full multiplication tables for GF(2^8).
struct Tables {
    /// `exp[i] = g^i` for i in 0..510 (doubled to avoid a modulo in mul).
    exp: [u8; 512],
    /// `log[x]` = discrete log of x base g; `log[0]` is unused (set to 0).
    log: [u16; 256],
    /// Flat 256×256 multiplication table: `mul[a * 256 + b] = a * b`.
    mul: Vec<u8>,
    /// Inverse table: `inv[x] = x^{-1}`, `inv[0]` unused (set to 0).
    inv: [u8; 256],
}

/// Full 256-entry product row for `coeff`: `mul_row(c)[x] = c·x`.
///
/// Shared with the [`crate::kernels`] module, which derives its split-nibble
/// tables from these rows and uses them directly for scalar tails.
#[inline]
pub(crate) fn mul_row(coeff: u8) -> &'static [u8] {
    let base = coeff as usize * 256;
    &tables().mul[base..base + 256]
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIM_POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        let mut mul = vec![0u8; 256 * 256];
        for a in 1usize..256 {
            for b in 1usize..256 {
                mul[a * 256 + b] = exp[(log[a] + log[b]) as usize];
            }
        }
        let mut inv = [0u8; 256];
        for a in 1usize..256 {
            inv[a] = exp[(255 - log[a]) as usize];
        }
        Tables { exp, log, mul, inv }
    })
}

/// An element of GF(2^8).
///
/// Wraps a single byte; all arithmetic is constant-time table lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct GF256(pub u8);

impl From<u8> for GF256 {
    fn from(value: u8) -> Self {
        GF256(value)
    }
}

impl From<GF256> for u8 {
    fn from(value: GF256) -> Self {
        value.0
    }
}

impl Add for GF256 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        GF256(self.0 ^ rhs.0)
    }
}

impl AddAssign for GF256 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for GF256 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        GF256(self.0 ^ rhs.0)
    }
}

impl SubAssign for GF256 {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Neg for GF256 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl Mul for GF256 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        GF256(tables().mul[self.0 as usize * 256 + rhs.0 as usize])
    }
}

impl MulAssign for GF256 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for GF256 {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        assert!(rhs.0 != 0, "division by zero in GF(2^8)");
        if self.0 == 0 {
            return GF256(0);
        }
        let t = tables();
        let log_a = t.log[self.0 as usize] as usize;
        let log_b = t.log[rhs.0 as usize] as usize;
        GF256(t.exp[log_a + 255 - log_b])
    }
}

impl Field for GF256 {
    const ZERO: Self = GF256(0);
    const ONE: Self = GF256(1);
    const BITS: u32 = 8;
    const ORDER: usize = 256;

    fn from_usize(value: usize) -> Self {
        // Same rationale as GF(2^16): wrapping would silently alias erasure
        // code evaluation points and break the MDS property.
        assert!(
            value < Self::ORDER,
            "GF(2^8) element {value} out of range (order 256)"
        );
        GF256(value as u8)
    }

    fn to_usize(self) -> usize {
        self.0 as usize
    }

    fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(GF256(tables().inv[self.0 as usize]))
        }
    }

    fn generator() -> Self {
        GF256(2)
    }

    fn mul_acc_slice(coeff: Self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
        if coeff.0 == 0 {
            return;
        }
        if coeff.0 == 1 {
            crate::field::xor_slice(dst, src);
            return;
        }
        crate::kernels::mul_acc_slice(coeff.0, dst, src);
    }

    fn mul_slice(coeff: Self, data: &mut [u8]) {
        if coeff.0 == 1 {
            return;
        }
        if coeff.0 == 0 {
            data.fill(0);
            return;
        }
        crate::kernels::mul_slice(coeff.0, data);
    }
}

impl std::fmt::Display for GF256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(GF256(0x53) + GF256(0xca), GF256(0x53 ^ 0xca));
        assert_eq!(GF256(0xff) + GF256(0xff), GF256::ZERO);
    }

    #[test]
    fn known_multiplication_values() {
        // Values checked against the standard 0x11d field (AES uses 0x11b so
        // these differ from AES test vectors).
        assert_eq!(GF256(2) * GF256(2), GF256(4));
        assert_eq!(GF256(0x80) * GF256(2), GF256(0x1d));
        assert_eq!(GF256(1) * GF256(0xab), GF256(0xab));
        assert_eq!(GF256(0) * GF256(0xab), GF256(0));
    }

    #[test]
    fn generator_has_full_order() {
        let g = GF256::generator();
        let mut x = GF256::ONE;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..255 {
            x *= g;
            seen.insert(x.0);
        }
        assert_eq!(seen.len(), 255);
        assert_eq!(x, GF256::ONE, "g^255 must be 1");
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert_eq!(GF256::ZERO.inverse(), None);
    }

    #[test]
    fn from_usize_covers_the_full_field() {
        assert_eq!(GF256::from_usize(0), GF256::ZERO);
        assert_eq!(GF256::from_usize(255), GF256(255));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_usize_rejects_out_of_range() {
        let _ = GF256::from_usize(256);
    }

    #[test]
    fn all_nonzero_elements_have_inverses() {
        for v in 1..=255u8 {
            let x = GF256(v);
            let inv = x.inverse().expect("nonzero element must have inverse");
            assert_eq!(x * inv, GF256::ONE, "value {v}");
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = GF256(37);
        let mut acc = GF256::ONE;
        for e in 0..20u64 {
            assert_eq!(x.pow(e), acc);
            acc *= x;
        }
    }

    #[test]
    fn pow_zero_of_zero_is_one() {
        assert_eq!(GF256::ZERO.pow(0), GF256::ONE);
        assert_eq!(GF256::ZERO.pow(5), GF256::ZERO);
    }

    #[test]
    fn mul_slice_scales_every_byte() {
        let mut data: Vec<u8> = (0..=255u8).collect();
        let coeff = GF256(0x1d);
        let expect: Vec<u8> = data.iter().map(|&b| (GF256(b) * coeff).0).collect();
        GF256::mul_slice(coeff, &mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn mul_acc_slice_matches_scalar_path() {
        let src: Vec<u8> = (0..=255u8).collect();
        let mut dst = vec![0x5au8; 256];
        let expect: Vec<u8> = dst
            .iter()
            .zip(src.iter())
            .map(|(&d, &s)| d ^ (GF256(s) * GF256(0x37)).0)
            .collect();
        GF256::mul_acc_slice(GF256(0x37), &mut dst, &src);
        assert_eq!(dst, expect);
    }

    #[test]
    fn mul_acc_slice_zero_coeff_is_noop() {
        let src = vec![0xffu8; 64];
        let mut dst = vec![0x11u8; 64];
        GF256::mul_acc_slice(GF256::ZERO, &mut dst, &src);
        assert!(dst.iter().all(|&b| b == 0x11));
    }

    #[test]
    fn division_roundtrip() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let q = GF256(a) / GF256(b);
                assert_eq!(q * GF256(b), GF256(a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = GF256(5) / GF256(0);
    }

    proptest! {
        #[test]
        fn prop_addition_commutative(a: u8, b: u8) {
            prop_assert_eq!(GF256(a) + GF256(b), GF256(b) + GF256(a));
        }

        #[test]
        fn prop_multiplication_commutative(a: u8, b: u8) {
            prop_assert_eq!(GF256(a) * GF256(b), GF256(b) * GF256(a));
        }

        #[test]
        fn prop_multiplication_associative(a: u8, b: u8, c: u8) {
            prop_assert_eq!(
                (GF256(a) * GF256(b)) * GF256(c),
                GF256(a) * (GF256(b) * GF256(c))
            );
        }

        #[test]
        fn prop_distributive(a: u8, b: u8, c: u8) {
            prop_assert_eq!(
                GF256(a) * (GF256(b) + GF256(c)),
                GF256(a) * GF256(b) + GF256(a) * GF256(c)
            );
        }

        #[test]
        fn prop_additive_inverse(a: u8) {
            prop_assert_eq!(GF256(a) + GF256(a), GF256::ZERO);
        }

        #[test]
        fn prop_multiplicative_inverse(a in 1u8..=255) {
            let x = GF256(a);
            let inv = x.inverse().unwrap();
            prop_assert_eq!(x * inv, GF256::ONE);
        }

        #[test]
        fn prop_mul_acc_slice_linear(coeff: u8, data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut dst = vec![0u8; data.len()];
            GF256::mul_acc_slice(GF256(coeff), &mut dst, &data);
            let expect: Vec<u8> = data.iter().map(|&b| (GF256(coeff) * GF256(b)).0).collect();
            prop_assert_eq!(dst, expect);
        }
    }
}
