//! Vectorized GF(2^16) slice kernels: 4-nibble split multiply-accumulate.
//!
//! # Why four nibbles
//!
//! The GF(2^8) kernels in the parent module split each byte into two nibbles
//! so that a 16-entry `pshufb` table covers every input value.  The same
//! linearity argument extends to GF(2^16): a 16-bit element `x` is the XOR of
//! its four nibbles shifted into place,
//!
//! ```text
//! c · x = c·n₀ ⊕ c·(n₁ << 4) ⊕ c·(n₂ << 8) ⊕ c·(n₃ << 12)
//! ```
//!
//! so four 16-entry tables of 16-bit products — stored as eight 16-byte
//! tables, the low and high product byte per nibble position — suffice for an
//! arbitrary coefficient.  This is the `SPLIT w=16, 4` scheme of gf-complete /
//! ISA-L, the implementation lineage the fountain-code surveys identify as the
//! deciding cost of deployed erasure codes.
//!
//! Elements are little-endian `u16`s packed in byte slices, which matches the
//! 16-bit-lane shift instructions on x86 directly: a loaded vector's epi16
//! lanes *are* the field elements, so the four nibble indices come from two
//! lane shifts and two masks, with no deinterleaving shuffle.  Each `pshufb`
//! looks up one product byte per element; a lane shift recombines low and high
//! bytes.  The odd (high) byte of every nibble-index lane is zero, and every
//! table's entry 0 is `c·0 = 0`, so the unwanted lookups contribute nothing.
//!
//! # Kernel tiers
//!
//! 1. **`pshufb` SIMD** — 32 elements per step with AVX-512BW, 16 with AVX2,
//!    8 with SSSE3, selected at runtime by the parent module's dispatcher and
//!    memoized.
//! 2. **SWAR** ([`swar`]) — four 16-bit lanes per `u64`, carry-less
//!    Russian-peasant ladder with the lane-wise xtime reduction by the low 16
//!    bits of the field polynomial.  Used for the sub-vector tails of the SIMD
//!    paths; like its GF(2^8) sibling it loses to the table tiers on long
//!    slices (the ladder is up to 16 serial steps), so it is not the no-SIMD
//!    fallback.
//! 3. **Split-byte tables** ([`split_byte`]) — the per-coefficient 256-entry
//!    `TLO`/`THI` product tables (`c·x = TLO[x & 0xff] ⊕ THI[x >> 8]`),
//!    retained from the pre-SIMD implementation as the no-SIMD dispatch target
//!    and as a second reference the vector tiers are tested against.
//! 4. **Scalar log/exp** ([`scalar`]) — the element-wise definition via the
//!    field's log/exp tables; the semantic reference, and the path taken for
//!    slices too short to amortize any table build.
//!
//! All tiers are verified bit-identical on every length 0..300 and on
//! coefficients covering each nibble table (see the tests at the bottom).

// `unsafe` is needed for the `core::arch` intrinsics only (see crate root).
#![allow(unsafe_code)]

use crate::gf16::PRIM_POLY;

/// Slices shorter than this skip every table build and use the direct log/exp
/// element loop.  64 bytes = 32 elements, where the ~80-operation nibble-table
/// build (or the ~530-operation split-byte build) stops paying for itself.
const SMALL_SLICE_CUTOFF_BYTES: usize = 64;

/// Static support for per-coefficient table builds: `T[j][b] = b·x^j mod p`
/// for every byte value `b` and `j` in `0..24`, so that
/// `c·x^j = T[j][c & 0xff] ⊕ T[j + 8][c >> 8]`.
///
/// The slice kernels rebuild their tables on every call (coefficients of an
/// erasure code are all distinct, so there is nothing to cache per
/// coefficient); this 12 KiB one-time table replaces the serial
/// double-and-reduce ladder in that per-call path with two independent loads
/// per bit product.
fn mul_pow_table() -> &'static [[u16; 256]; 24] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[[u16; 256]; 24]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([[0u16; 256]; 24]);
        for b in 0..256u32 {
            let mut v = b;
            for j in 0..24 {
                t[j][b as usize] = v as u16;
                v <<= 1;
                if v & 0x10000 != 0 {
                    v ^= PRIM_POLY;
                }
            }
        }
        t
    })
}

/// `c · x^j` for `j` in `0..16`: the product of the coefficient with each
/// single-bit element.  Every table tier builds its entries as subset XORs of
/// these.
#[inline]
fn bit_products(coeff: u16) -> [u16; 16] {
    let t = mul_pow_table();
    let lo = (coeff & 0xff) as usize;
    let hi = (coeff >> 8) as usize;
    std::array::from_fn(|j| t[j][lo] ^ t[j + 8][hi])
}

/// Per-coefficient 4-nibble product tables: `lo[i][n]` / `hi[i][n]` are the
/// low / high byte of `c·(n << 4i)`.
struct NibbleTables16 {
    lo: [[u8; 16]; 4],
    hi: [[u8; 16]; 4],
}

impl NibbleTables16 {
    /// Build by subset-XOR over the four bit products of each nibble
    /// position: ~80 XORs total, cheap enough to redo per slice call.
    fn build(coeff: u16) -> Self {
        let pow = bit_products(coeff);
        let mut t = NibbleTables16 {
            lo: [[0; 16]; 4],
            hi: [[0; 16]; 4],
        };
        for i in 0..4 {
            let mut full = [0u16; 16];
            for b in 0..4 {
                let bit = 1usize << b;
                for low in 0..bit {
                    full[bit | low] = pow[4 * i + b] ^ full[low];
                }
            }
            for (n, &entry) in full.iter().enumerate() {
                t.lo[i][n] = entry as u8;
                t.hi[i][n] = (entry >> 8) as u8;
            }
        }
        t
    }
}

/// Name of the kernel tier runtime dispatch selects for long GF(2^16) slices
/// on this machine (`"avx512"`, `"avx2"`, `"ssse3"`, `"swar"` under the
/// [`super::FORCE_TIER_ENV`] override, or `"split-byte"`); surfaced in
/// benchmark output so recorded numbers identify the code path.
pub fn active_kernel() -> &'static str {
    match super::isa() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        super::Isa::Avx512 => "avx512",
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        super::Isa::Avx2 => "avx2",
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        super::Isa::Ssse3 => "ssse3",
        super::Isa::Swar => "swar",
        super::Isa::Scalar => "split-byte",
    }
}

/// `dst[i] ^= coeff · src[i]` over GF(2^16) (little-endian elements), fastest
/// available kernel.
///
/// Callers are expected to have peeled the `coeff == 0` (no-op) and
/// `coeff == 1` (plain XOR) cases; this function is still correct for them.
///
/// # Panics
///
/// Panics if the slices have different lengths or the length is odd.
pub fn mul_acc_slice(coeff: u16, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
    assert_eq!(
        dst.len() % 2,
        0,
        "GF(2^16) slices must contain whole 16-bit elements"
    );
    if dst.len() < SMALL_SLICE_CUTOFF_BYTES {
        scalar::mul_acc_slice(coeff, dst, src);
        return;
    }
    match super::isa() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `isa()` returned Avx512/Avx2/Ssse3 only after
        // `is_x86_feature_detected!` confirmed the feature at runtime.
        super::Isa::Avx512 => unsafe { x86::mul_acc_avx512(coeff, dst, src) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        super::Isa::Avx2 => unsafe { x86::mul_acc_avx2(coeff, dst, src) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        super::Isa::Ssse3 => unsafe { x86::mul_acc_ssse3(coeff, dst, src) },
        super::Isa::Swar => swar::mul_acc_slice(coeff, dst, src),
        super::Isa::Scalar => split_byte::mul_acc_slice(coeff, dst, src),
    }
}

/// `data[i] = coeff · data[i]` over GF(2^16) (little-endian elements), fastest
/// available kernel.
///
/// # Panics
///
/// Panics if the length is odd.
pub fn mul_slice(coeff: u16, data: &mut [u8]) {
    assert_eq!(
        data.len() % 2,
        0,
        "GF(2^16) slices must contain whole 16-bit elements"
    );
    if data.len() < SMALL_SLICE_CUTOFF_BYTES {
        scalar::mul_slice(coeff, data);
        return;
    }
    match super::isa() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as in `mul_acc_slice`.
        super::Isa::Avx512 => unsafe { x86::mul_avx512(coeff, data) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        super::Isa::Avx2 => unsafe { x86::mul_avx2(coeff, data) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        super::Isa::Ssse3 => unsafe { x86::mul_ssse3(coeff, data) },
        super::Isa::Swar => swar::mul_slice(coeff, data),
        super::Isa::Scalar => split_byte::mul_slice(coeff, data),
    }
}

/// Scalar log/exp reference kernels: one element at a time through the field
/// tables.  These define the semantics every other tier is tested against.
pub mod scalar {
    use crate::gf16::tables;

    /// Reference `dst[i] ^= coeff · src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or the length is odd.
    pub fn mul_acc_slice(coeff: u16, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
        assert_eq!(
            dst.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        if coeff == 0 {
            return;
        }
        let t = tables();
        let log_c = t.log[coeff as usize];
        for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
            let sv = u16::from_le_bytes([s[0], s[1]]);
            if sv == 0 {
                continue;
            }
            let prod = t.exp[(log_c + t.log[sv as usize]) as usize];
            let dv = u16::from_le_bytes([d[0], d[1]]) ^ prod;
            d.copy_from_slice(&dv.to_le_bytes());
        }
    }

    /// Reference `data[i] = coeff · data[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the length is odd.
    pub fn mul_slice(coeff: u16, data: &mut [u8]) {
        assert_eq!(
            data.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        if coeff == 0 {
            data.fill(0);
            return;
        }
        let t = tables();
        let log_c = t.log[coeff as usize];
        for d in data.chunks_exact_mut(2) {
            let dv = u16::from_le_bytes([d[0], d[1]]);
            let prod = if dv == 0 {
                0
            } else {
                t.exp[(log_c + t.log[dv as usize]) as usize]
            };
            d.copy_from_slice(&prod.to_le_bytes());
        }
    }
}

/// Split-byte product-table kernels: two 256-entry 16-bit tables per
/// coefficient, `c·x = lo[x & 0xff] ⊕ hi[x >> 8]`.  The pre-SIMD
/// implementation, retained as the no-SIMD dispatch target.
pub mod split_byte {
    use super::bit_products;

    /// Split-byte product tables for a fixed coefficient.
    struct ProductTables {
        lo: [u16; 256],
        hi: [u16; 256],
    }

    impl ProductTables {
        /// Build by subset-XOR dynamic programming over the 16 bit products
        /// (`table[bit | b] = table_of_bit ⊕ table[b]`): 16 field doublings
        /// plus 510 XORs.
        fn build(coeff: u16) -> Self {
            let pow = bit_products(coeff);
            let mut t = ProductTables {
                lo: [0; 256],
                hi: [0; 256],
            };
            for i in 0..8 {
                let bit = 1usize << i;
                for b in 0..bit {
                    t.lo[bit | b] = pow[i] ^ t.lo[b];
                    t.hi[bit | b] = pow[i + 8] ^ t.hi[b];
                }
            }
            t
        }

        #[inline(always)]
        fn mul(&self, x: u16) -> u16 {
            self.lo[(x & 0xff) as usize] ^ self.hi[(x >> 8) as usize]
        }
    }

    /// Split-byte `dst[i] ^= coeff · src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or the length is odd.
    pub fn mul_acc_slice(coeff: u16, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
        assert_eq!(
            dst.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        let t = ProductTables::build(coeff);
        for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
            let sv = u16::from_le_bytes([s[0], s[1]]);
            let dv = u16::from_le_bytes([d[0], d[1]]) ^ t.mul(sv);
            d.copy_from_slice(&dv.to_le_bytes());
        }
    }

    /// Split-byte `data[i] = coeff · data[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the length is odd.
    pub fn mul_slice(coeff: u16, data: &mut [u8]) {
        assert_eq!(
            data.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        let t = ProductTables::build(coeff);
        for d in data.chunks_exact_mut(2) {
            let dv = u16::from_le_bytes([d[0], d[1]]);
            d.copy_from_slice(&t.mul(dv).to_le_bytes());
        }
    }
}

/// Portable SWAR kernels: four 16-bit lanes per `u64` step.
pub mod swar {
    use crate::gf16::PRIM_POLY;

    const LANE_HI: u64 = 0x8000_8000_8000_8000;
    const LANE_LOW15: u64 = 0x7fff_7fff_7fff_7fff;
    /// The low 16 bits of the field polynomial, broadcast into carrying lanes
    /// by the multiply in the xtime step.
    const POLY_LOW: u64 = (PRIM_POLY & 0xffff) as u64;

    /// Multiply all four 16-bit lanes of `word` by `coeff` via the carry-less
    /// Russian-peasant ladder.  Lanes are little-endian field elements (use
    /// `from_le_bytes` when loading).
    #[inline]
    pub(super) fn mul_word(mut word: u64, coeff: u16) -> u64 {
        let mut acc = 0u64;
        let mut bits = coeff;
        loop {
            if bits & 1 != 0 {
                acc ^= word;
            }
            bits >>= 1;
            if bits == 0 {
                return acc;
            }
            // Lane-wise xtime: shift each 16-bit lane left and reduce lanes
            // whose high bit was set by the polynomial's low 16 bits.  Each
            // carry is 0 or 1 at the lane's lowest bit position and POLY_LOW
            // fits in 13 bits, so products cannot spill into neighbour lanes.
            let carries = (word & LANE_HI) >> 15;
            word = ((word & LANE_LOW15) << 1) ^ carries.wrapping_mul(POLY_LOW);
        }
    }

    /// SWAR `dst[i] ^= coeff · src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or the length is odd.
    pub fn mul_acc_slice(coeff: u16, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
        assert_eq!(
            dst.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        let mut d_words = dst.chunks_exact_mut(8);
        let mut s_words = src.chunks_exact(8);
        for (d, s) in (&mut d_words).zip(&mut s_words) {
            let sv = u64::from_le_bytes(s.try_into().expect("chunk is 8 bytes"));
            let dv = u64::from_le_bytes((&*d).try_into().expect("chunk is 8 bytes"));
            d.copy_from_slice(&(dv ^ mul_word(sv, coeff)).to_le_bytes());
        }
        super::scalar::mul_acc_slice(coeff, d_words.into_remainder(), s_words.remainder());
    }

    /// SWAR `data[i] = coeff · data[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the length is odd.
    pub fn mul_slice(coeff: u16, data: &mut [u8]) {
        assert_eq!(
            data.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        let mut words = data.chunks_exact_mut(8);
        for d in &mut words {
            let dv = u64::from_le_bytes((&*d).try_into().expect("chunk is 8 bytes"));
            d.copy_from_slice(&mul_word(dv, coeff).to_le_bytes());
        }
        super::scalar::mul_slice(coeff, words.into_remainder());
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    //! 4-nibble `pshufb` kernels.  Each function is compiled for its target
    //! feature and must only be called after runtime detection confirms it.
    use super::NibbleTables16;

    #[cfg(target_arch = "x86")]
    use core::arch::x86 as arch;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64 as arch;

    use arch::{
        __m128i, __m256i, __m512i, _mm256_and_si256, _mm256_broadcastsi128_si256,
        _mm256_castsi256_si128, _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_set1_epi16,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_slli_epi16, _mm256_srli_epi16,
        _mm256_storeu_si256, _mm256_xor_si256, _mm512_and_si512, _mm512_broadcast_i32x4,
        _mm512_loadu_si512, _mm512_set1_epi16, _mm512_shuffle_epi8, _mm512_slli_epi16,
        _mm512_srli_epi16, _mm512_storeu_si512, _mm512_xor_si512, _mm_and_si128, _mm_loadu_si128,
        _mm_packus_epi16, _mm_set1_epi16, _mm_setzero_si128, _mm_shuffle_epi8, _mm_slli_epi16,
        _mm_srli_epi16, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Nibble-selector masks: lane `n` of mask `b` is all-ones iff bit `b` of
    /// `n` is set, so a nibble's 16-entry product table assembles as four
    /// masked broadcasts of its bit products.
    const NIB_MASKS: [[u16; 16]; 4] = {
        let mut m = [[0u16; 16]; 4];
        let mut b = 0;
        while b < 4 {
            let mut n = 0;
            while n < 16 {
                if n & (1 << b) != 0 {
                    m[b][n] = 0xffff;
                }
                n += 1;
            }
            b += 1;
        }
        m
    };

    /// Build the eight 16-byte shuffle tables of one coefficient entirely in
    /// vector registers: per nibble position, four masked `vpbroadcastw`s
    /// assemble the 16 products, then a mask/shift + `packus` pair splits
    /// them into the low-byte and high-byte `pshufb` tables.  This is the
    /// per-call fixed cost of the SIMD tiers, so it avoids both the serial
    /// doubling ladder (via [`super::bit_products`]' static support table)
    /// and the 128 scalar byte stores of a memory-built table.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn build_shuffle_tables(coeff: u16) -> ([__m128i; 4], [__m128i; 4]) {
        let pow = super::bit_products(coeff);
        // SAFETY: the mask rows are exactly 32 bytes, matching the unaligned
        // 256-bit loads.
        unsafe {
            let masks = [
                _mm256_loadu_si256(NIB_MASKS[0].as_ptr() as *const __m256i),
                _mm256_loadu_si256(NIB_MASKS[1].as_ptr() as *const __m256i),
                _mm256_loadu_si256(NIB_MASKS[2].as_ptr() as *const __m256i),
                _mm256_loadu_si256(NIB_MASKS[3].as_ptr() as *const __m256i),
            ];
            let byte_mask = _mm256_set1_epi16(0x00ff);
            let mut lo = [_mm_setzero_si128(); 4];
            let mut hi = [_mm_setzero_si128(); 4];
            for i in 0..4 {
                let mut full = _mm256_setzero_si256();
                for (b, mask) in masks.iter().enumerate() {
                    let bc = _mm256_set1_epi16(pow[4 * i + b] as i16);
                    full = _mm256_xor_si256(full, _mm256_and_si256(bc, *mask));
                }
                // Entries are 0..=255 per 16-bit lane after masking/shifting,
                // so the signed-input unsigned saturation of packus is exact.
                let lo16 = _mm256_and_si256(full, byte_mask);
                let hi16 = _mm256_srli_epi16(full, 8);
                lo[i] = _mm_packus_epi16(
                    _mm256_castsi256_si128(lo16),
                    _mm256_extracti128_si256(lo16, 1),
                );
                hi[i] = _mm_packus_epi16(
                    _mm256_castsi256_si128(hi16),
                    _mm256_extracti128_si256(hi16, 1),
                );
            }
            (lo, hi)
        }
    }

    /// The eight 16-byte shuffle tables of one coefficient, broadcast to all
    /// four 128-bit lanes of AVX-512 registers.
    struct Avx512Tables {
        lo: [__m512i; 4],
        hi: [__m512i; 4],
    }

    /// # Safety
    ///
    /// Requires AVX-512F and AVX2.
    #[target_feature(enable = "avx512f,avx2")]
    unsafe fn broadcast_tables_512(coeff: u16) -> Avx512Tables {
        // SAFETY: caller is inside an avx512f+avx2 target_feature region.
        unsafe {
            let (lo, hi) = build_shuffle_tables(coeff);
            let bc = |x: __m128i| _mm512_broadcast_i32x4(x);
            Avx512Tables {
                lo: [bc(lo[0]), bc(lo[1]), bc(lo[2]), bc(lo[3])],
                hi: [bc(hi[0]), bc(hi[1]), bc(hi[2]), bc(hi[3])],
            }
        }
    }

    /// One AVX-512 step: 32 GF(2^16) products via eight nibble shuffles.
    ///
    /// # Safety
    ///
    /// Caller must be inside an `avx512bw` target-feature region.
    #[inline(always)]
    unsafe fn product32x16(v: __m512i, t: &Avx512Tables, mask: __m512i) -> __m512i {
        // SAFETY: caller is inside an avx512bw target_feature region.
        unsafe {
            let n = [
                _mm512_and_si512(v, mask),
                _mm512_and_si512(_mm512_srli_epi16(v, 4), mask),
                _mm512_and_si512(_mm512_srli_epi16(v, 8), mask),
                _mm512_srli_epi16(v, 12),
            ];
            let mut prod = _mm512_xor_si512(
                _mm512_shuffle_epi8(t.lo[0], n[0]),
                _mm512_slli_epi16(_mm512_shuffle_epi8(t.hi[0], n[0]), 8),
            );
            for ((lo, hi), nv) in t.lo.iter().zip(&t.hi).zip(&n).skip(1) {
                prod = _mm512_xor_si512(prod, _mm512_shuffle_epi8(*lo, *nv));
                prod = _mm512_xor_si512(prod, _mm512_slli_epi16(_mm512_shuffle_epi8(*hi, *nv), 8));
            }
            prod
        }
    }

    /// # Safety
    ///
    /// Requires AVX-512BW (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    pub(super) unsafe fn mul_acc_avx512(coeff: u16, dst: &mut [u8], src: &[u8]) {
        // SAFETY: chunk pointers come from `chunks_exact`, so every 64-byte
        // access is in bounds; AVX-512BW implies AVX2 for the tail kernel.
        unsafe {
            let t = broadcast_tables_512(coeff);
            let mask = _mm512_set1_epi16(0x000f);
            let mut d_chunks = dst.chunks_exact_mut(64);
            let mut s_chunks = src.chunks_exact(64);
            for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
                let sv = _mm512_loadu_si512(s.as_ptr() as *const __m512i);
                let dv = _mm512_loadu_si512(d.as_ptr() as *const __m512i);
                let out = _mm512_xor_si512(dv, product32x16(sv, &t, mask));
                _mm512_storeu_si512(d.as_mut_ptr() as *mut __m512i, out);
            }
            let (d_rem, s_rem) = (d_chunks.into_remainder(), s_chunks.remainder());
            // Tails shorter than one AVX2 step would pay that kernel's full
            // shuffle-table build just to fall through to SWAR anyway.
            if d_rem.len() >= 32 {
                mul_acc_avx2(coeff, d_rem, s_rem);
            } else {
                super::swar::mul_acc_slice(coeff, d_rem, s_rem);
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX-512BW (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx512f,avx512bw,avx2")]
    pub(super) unsafe fn mul_avx512(coeff: u16, data: &mut [u8]) {
        // SAFETY: as in `mul_acc_avx512`.
        unsafe {
            let t = broadcast_tables_512(coeff);
            let mask = _mm512_set1_epi16(0x000f);
            let mut chunks = data.chunks_exact_mut(64);
            for d in &mut chunks {
                let dv = _mm512_loadu_si512(d.as_ptr() as *const __m512i);
                let out = product32x16(dv, &t, mask);
                _mm512_storeu_si512(d.as_mut_ptr() as *mut __m512i, out);
            }
            let rem = chunks.into_remainder();
            // As in `mul_acc_avx512`: skip the AVX2 table build for short tails.
            if rem.len() >= 32 {
                mul_avx2(coeff, rem);
            } else {
                super::swar::mul_slice(coeff, rem);
            }
        }
    }

    /// The eight 16-byte shuffle tables of one coefficient, broadcast to both
    /// 128-bit lanes of AVX2 registers.
    struct Avx2Tables {
        lo: [__m256i; 4],
        hi: [__m256i; 4],
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn broadcast_tables(coeff: u16) -> Avx2Tables {
        // SAFETY: caller is inside an avx2 target_feature region.
        unsafe {
            let (lo, hi) = build_shuffle_tables(coeff);
            let bc = |x: __m128i| _mm256_broadcastsi128_si256(x);
            Avx2Tables {
                lo: [bc(lo[0]), bc(lo[1]), bc(lo[2]), bc(lo[3])],
                hi: [bc(hi[0]), bc(hi[1]), bc(hi[2]), bc(hi[3])],
            }
        }
    }

    /// One AVX2 step: 16 GF(2^16) products via eight nibble shuffles.
    ///
    /// The epi16 lanes of `v` are the little-endian field elements; the four
    /// nibble-index vectors have each index in the low byte of its lane (the
    /// high byte is zero and looks up table entry 0 = 0).
    ///
    /// # Safety
    ///
    /// Caller must be inside an `avx2` target-feature region.
    #[inline(always)]
    unsafe fn product16x16(v: __m256i, t: &Avx2Tables, mask: __m256i) -> __m256i {
        // SAFETY: caller is inside an avx2 target_feature region.
        unsafe {
            let n = [
                _mm256_and_si256(v, mask),
                _mm256_and_si256(_mm256_srli_epi16(v, 4), mask),
                _mm256_and_si256(_mm256_srli_epi16(v, 8), mask),
                _mm256_srli_epi16(v, 12),
            ];
            let mut prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(t.lo[0], n[0]),
                _mm256_slli_epi16(_mm256_shuffle_epi8(t.hi[0], n[0]), 8),
            );
            for ((lo, hi), nv) in t.lo.iter().zip(&t.hi).zip(&n).skip(1) {
                prod = _mm256_xor_si256(prod, _mm256_shuffle_epi8(*lo, *nv));
                prod = _mm256_xor_si256(prod, _mm256_slli_epi16(_mm256_shuffle_epi8(*hi, *nv), 8));
            }
            prod
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_acc_avx2(coeff: u16, dst: &mut [u8], src: &[u8]) {
        // SAFETY: chunk pointers come from `chunks_exact`, so every 32-byte
        // access is in bounds; table loads are covered in `broadcast_tables`.
        unsafe {
            let t = broadcast_tables(coeff);
            let mask = _mm256_set1_epi16(0x000f);
            let mut d_chunks = dst.chunks_exact_mut(32);
            let mut s_chunks = src.chunks_exact(32);
            for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
                let sv = _mm256_loadu_si256(s.as_ptr() as *const __m256i);
                let dv = _mm256_loadu_si256(d.as_ptr() as *const __m256i);
                let out = _mm256_xor_si256(dv, product16x16(sv, &t, mask));
                _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, out);
            }
            super::swar::mul_acc_slice(coeff, d_chunks.into_remainder(), s_chunks.remainder());
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_avx2(coeff: u16, data: &mut [u8]) {
        // SAFETY: as in `mul_acc_avx2`.
        unsafe {
            let t = broadcast_tables(coeff);
            let mask = _mm256_set1_epi16(0x000f);
            let mut chunks = data.chunks_exact_mut(32);
            for d in &mut chunks {
                let dv = _mm256_loadu_si256(d.as_ptr() as *const __m256i);
                let out = product16x16(dv, &t, mask);
                _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, out);
            }
            super::swar::mul_slice(coeff, chunks.into_remainder());
        }
    }

    /// One SSSE3 step: 8 GF(2^16) products via eight nibble shuffles.
    ///
    /// # Safety
    ///
    /// Caller must be inside an `ssse3` target-feature region.
    #[inline(always)]
    unsafe fn product8x16(
        v: __m128i,
        lo: &[__m128i; 4],
        hi: &[__m128i; 4],
        mask: __m128i,
    ) -> __m128i {
        // SAFETY: caller is inside an ssse3 target_feature region.
        unsafe {
            let n = [
                _mm_and_si128(v, mask),
                _mm_and_si128(_mm_srli_epi16(v, 4), mask),
                _mm_and_si128(_mm_srli_epi16(v, 8), mask),
                _mm_srli_epi16(v, 12),
            ];
            let mut prod = _mm_xor_si128(
                _mm_shuffle_epi8(lo[0], n[0]),
                _mm_slli_epi16(_mm_shuffle_epi8(hi[0], n[0]), 8),
            );
            for i in 1..4 {
                prod = _mm_xor_si128(prod, _mm_shuffle_epi8(lo[i], n[i]));
                prod = _mm_xor_si128(prod, _mm_slli_epi16(_mm_shuffle_epi8(hi[i], n[i]), 8));
            }
            prod
        }
    }

    /// # Safety
    ///
    /// Requires SSSE3 (checked by the dispatcher at runtime).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_acc_ssse3(coeff: u16, dst: &mut [u8], src: &[u8]) {
        let t = NibbleTables16::build(coeff);
        // SAFETY: table rows are 16 bytes; chunk pointers come from
        // `chunks_exact`, so every 16-byte access is in bounds.
        unsafe {
            let ld = |row: &[u8; 16]| _mm_loadu_si128(row.as_ptr() as *const __m128i);
            let lo = [ld(&t.lo[0]), ld(&t.lo[1]), ld(&t.lo[2]), ld(&t.lo[3])];
            let hi = [ld(&t.hi[0]), ld(&t.hi[1]), ld(&t.hi[2]), ld(&t.hi[3])];
            let mask = _mm_set1_epi16(0x000f);
            let mut d_chunks = dst.chunks_exact_mut(16);
            let mut s_chunks = src.chunks_exact(16);
            for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
                let sv = _mm_loadu_si128(s.as_ptr() as *const __m128i);
                let dv = _mm_loadu_si128(d.as_ptr() as *const __m128i);
                let out = _mm_xor_si128(dv, product8x16(sv, &lo, &hi, mask));
                _mm_storeu_si128(d.as_mut_ptr() as *mut __m128i, out);
            }
            super::swar::mul_acc_slice(coeff, d_chunks.into_remainder(), s_chunks.remainder());
        }
    }

    /// # Safety
    ///
    /// Requires SSSE3 (checked by the dispatcher at runtime).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_ssse3(coeff: u16, data: &mut [u8]) {
        let t = NibbleTables16::build(coeff);
        // SAFETY: as in `mul_acc_ssse3`.
        unsafe {
            let ld = |row: &[u8; 16]| _mm_loadu_si128(row.as_ptr() as *const __m128i);
            let lo = [ld(&t.lo[0]), ld(&t.lo[1]), ld(&t.lo[2]), ld(&t.lo[3])];
            let hi = [ld(&t.hi[0]), ld(&t.hi[1]), ld(&t.hi[2]), ld(&t.hi[3])];
            let mask = _mm_set1_epi16(0x000f);
            let mut chunks = data.chunks_exact_mut(16);
            for d in &mut chunks {
                let dv = _mm_loadu_si128(d.as_ptr() as *const __m128i);
                let out = product8x16(dv, &lo, &hi, mask);
                _mm_storeu_si128(d.as_mut_ptr() as *mut __m128i, out);
            }
            super::swar::mul_slice(coeff, chunks.into_remainder());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, GF65536};
    use proptest::prelude::*;

    /// Element-by-element definition via the field's scalar multiply — the
    /// semantics every tier below must reproduce exactly.
    fn reference_mul_acc(coeff: u16, dst: &mut [u8], src: &[u8]) {
        for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
            let sv = GF65536(u16::from_le_bytes([s[0], s[1]]));
            let dv = u16::from_le_bytes([d[0], d[1]]) ^ (GF65536(coeff) * sv).0;
            d.copy_from_slice(&dv.to_le_bytes());
        }
    }

    /// Deterministic pseudo-random payload of `elems` 16-bit elements.
    fn payload(elems: usize, salt: u16) -> Vec<u8> {
        (0..elems)
            .flat_map(|i| {
                ((i as u16)
                    .wrapping_mul(0x9e37)
                    .wrapping_add(salt)
                    .rotate_left((i % 13) as u32))
                .to_le_bytes()
            })
            .collect()
    }

    /// Coefficients covering each nibble table, the tier cutoffs' special
    /// cases (0, 1), single-nibble values, and full-width values.
    const COEFFS: [u16; 12] = [
        0, 1, 2, 3, 0x000f, 0x0010, 0x0100, 0x1000, 0x1234, 0x8000, 0xfffe, 0xffff,
    ];

    fn check_all_tiers(coeff: u16, elems: usize) {
        let src = payload(elems, coeff);
        let dst0 = payload(elems, coeff.wrapping_add(0x5a5a));

        let mut expect_acc = dst0.clone();
        reference_mul_acc(coeff, &mut expect_acc, &src);
        let mut expect_mul = vec![0u8; src.len()];
        reference_mul_acc(coeff, &mut expect_mul, &src);

        let label = |tier: &str| format!("{tier} coeff {coeff:#06x} elems {elems}");

        let mut got = dst0.clone();
        scalar::mul_acc_slice(coeff, &mut got, &src);
        assert_eq!(got, expect_acc, "{}", label("scalar mul_acc"));

        let mut got = dst0.clone();
        split_byte::mul_acc_slice(coeff, &mut got, &src);
        assert_eq!(got, expect_acc, "{}", label("split_byte mul_acc"));

        let mut got = dst0.clone();
        swar::mul_acc_slice(coeff, &mut got, &src);
        assert_eq!(got, expect_acc, "{}", label("swar mul_acc"));

        let mut got = dst0.clone();
        mul_acc_slice(coeff, &mut got, &src);
        assert_eq!(got, expect_acc, "{}", label(active_kernel()));

        let mut got = dst0.clone();
        GF65536::mul_acc_slice(GF65536(coeff), &mut got, &src);
        assert_eq!(got, expect_acc, "{}", label("field entry mul_acc"));

        let mut got = src.clone();
        scalar::mul_slice(coeff, &mut got);
        assert_eq!(got, expect_mul, "{}", label("scalar mul"));

        let mut got = src.clone();
        split_byte::mul_slice(coeff, &mut got);
        assert_eq!(got, expect_mul, "{}", label("split_byte mul"));

        let mut got = src.clone();
        swar::mul_slice(coeff, &mut got);
        assert_eq!(got, expect_mul, "{}", label("swar mul"));

        let mut got = src.clone();
        mul_slice(coeff, &mut got);
        assert_eq!(got, expect_mul, "{}", label(active_kernel()));

        let mut got = src.clone();
        GF65536::mul_slice(GF65536(coeff), &mut got);
        assert_eq!(got, expect_mul, "{}", label("field entry mul"));
    }

    #[test]
    fn all_lengths_zero_to_300_bytes_match_reference() {
        // Every even byte length in 0..=300 (element counts 0..=150) for a
        // rolling coefficient plus the field edges: hits every unaligned
        // head/tail combination of the 32/16/8-byte kernels and straddles the
        // small-slice cutoff.  Subsampled under Miri, where the exhaustive
        // sweep is intractable; the full sweep still runs natively.
        let step = if cfg!(miri) { 19 } else { 1 };
        for elems in (0..=150usize).step_by(step) {
            for coeff in [0u16, 1, 2, (elems as u16).wrapping_mul(0x0b0b) | 1, 0xffff] {
                check_all_tiers(coeff, elems);
            }
        }
    }

    #[test]
    fn nibble_covering_coefficients_match_reference_at_boundaries() {
        // Coefficients exercising each of the four nibble tables, at element
        // counts straddling the SIMD chunk sizes and the scalar cutoff.
        // Miri keeps a reduced boundary set.
        let full = [1usize, 3, 4, 7, 8, 15, 16, 17, 31, 32, 33, 48, 100, 512];
        let reduced = [1usize, 8, 33, 100];
        let elem_counts: &[usize] = if cfg!(miri) { &reduced } else { &full };
        for &coeff in &COEFFS {
            for &elems in elem_counts {
                check_all_tiers(coeff, elems);
            }
        }
    }

    #[test]
    fn every_low_and_high_byte_table_entry_is_exercised() {
        // A source covering all 256 low-byte and all 256 high-byte patterns,
        // so each split-byte and nibble table entry participates at least
        // once.
        let src: Vec<u8> = (0..=255u16)
            .flat_map(|b| [(b << 8) | b, b, b << 8])
            .flat_map(|v| v.to_le_bytes())
            .collect();
        // Miri: two coefficients still touch every table entry; the full
        // coefficient set runs natively.
        let coeffs: &[u16] = if cfg!(miri) { &COEFFS[..2] } else { &COEFFS };
        for &coeff in coeffs {
            let mut dst = vec![0x5au8; src.len()];
            let mut expect = dst.clone();
            reference_mul_acc(coeff, &mut expect, &src);
            mul_acc_slice(coeff, &mut dst, &src);
            assert_eq!(dst, expect, "coeff {coeff:#06x}");
        }
    }

    #[test]
    fn swar_word_agrees_with_field_multiplication() {
        for coeff in [0u16, 1, 2, 0x1234, 0x8000, 0xffff] {
            let word = u64::from_le_bytes([0x00, 0x00, 0x01, 0x00, 0xff, 0xff, 0x34, 0x12]);
            let product = swar::mul_word(word, coeff);
            for lane in 0..4 {
                let x = (word >> (16 * lane)) as u16;
                let expect = (GF65536(coeff) * GF65536(x)).0;
                assert_eq!(
                    (product >> (16 * lane)) as u16,
                    expect,
                    "coeff {coeff:#06x} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn dispatcher_reports_a_known_kernel() {
        assert!(["avx512", "avx2", "ssse3", "swar", "split-byte"].contains(&active_kernel()));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let mut dst = vec![0u8; 4];
        mul_acc_slice(3, &mut dst, &[0u8; 6]);
    }

    #[test]
    #[should_panic(expected = "whole 16-bit elements")]
    fn odd_length_panics() {
        let mut data = vec![0u8; 65];
        mul_slice(3, &mut data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// All tiers match the reference on random payloads at random byte
        /// offsets into a shared buffer, so misaligned loads and stores are
        /// exercised for every head/tail combination.
        #[test]
        fn prop_tiers_match_reference_at_random_alignments(
            coeff: u16,
            src_off in 0usize..33,
            dst_off in 0usize..33,
            elems in 0usize..160,
            buf in proptest::collection::vec(any::<u8>(), 400..500),
        ) {
            // Offsets < 33 and len <= 318 always fit in the 400+-byte buffer.
            let len = 2 * elems;
            let src = buf[src_off..src_off + len].to_vec();
            let dst0 = buf[dst_off..dst_off + len].to_vec();

            let mut expect = dst0.clone();
            reference_mul_acc(coeff, &mut expect, &src);

            // Re-run each tier inside a fresh copy of the big buffer at the
            // original offset, so the kernel sees the same (mis)alignment.
            for tier in ["dispatch", "swar", "split_byte", "scalar"] {
                let mut work = buf.clone();
                work[dst_off..dst_off + len].copy_from_slice(&dst0);
                {
                    let (dst_s, src_s) = (&mut work[dst_off..dst_off + len], &src[..]);
                    match tier {
                        "dispatch" => mul_acc_slice(coeff, dst_s, src_s),
                        "swar" => swar::mul_acc_slice(coeff, dst_s, src_s),
                        "split_byte" => split_byte::mul_acc_slice(coeff, dst_s, src_s),
                        _ => scalar::mul_acc_slice(coeff, dst_s, src_s),
                    }
                }
                prop_assert_eq!(
                    &work[dst_off..dst_off + len], &expect[..],
                    "tier {} coeff {:#06x} elems {} offsets ({}, {})",
                    tier, coeff, elems, src_off, dst_off
                );
                // Bytes outside the slice must be untouched.
                prop_assert_eq!(&work[..dst_off], &buf[..dst_off]);
                prop_assert_eq!(&work[dst_off + len..], &buf[dst_off + len..]);
            }
        }

        #[test]
        fn prop_mul_slice_matches_mul_acc_into_zeroes(
            coeff: u16,
            elems in proptest::collection::vec(any::<u16>(), 0..200),
        ) {
            let src: Vec<u8> = elems.iter().flat_map(|v| v.to_le_bytes()).collect();
            let mut acc = vec![0u8; src.len()];
            mul_acc_slice(coeff, &mut acc, &src);
            let mut scaled = src.clone();
            mul_slice(coeff, &mut scaled);
            prop_assert_eq!(acc, scaled);
        }
    }
}
