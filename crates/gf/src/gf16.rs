//! GF(2^16) — used when a single Reed–Solomon block spans more than 255
//! packets (e.g. the non-interleaved Vandermonde baseline encoding a whole
//! multi-megabyte file, Tables 2 and 3 of the paper).
//!
//! Elements are `u16`.  The full multiplication table would be 8 GiB, so
//! scalar multiplication goes through 64 K-entry log/exp tables.  The *slice*
//! operations — the erasure-code hot loop — are delegated to
//! [`crate::kernels::gf16`], which dispatches at runtime between 4-nibble
//! `pshufb` SIMD tiers (AVX2 / SSSE3), a SWAR tail tier, the split-byte
//! product-table fallback, and a direct log/exp loop for short slices.  See
//! that module's documentation for the tier details; all tiers are verified
//! bit-identical against the element-wise log/exp definition here.

// In characteristic 2, addition and subtraction genuinely are XOR.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use crate::field::Field;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// Primitive polynomial x^16 + x^12 + x^3 + x + 1.  Shared with the slice
/// kernels in [`crate::kernels::gf16`], which rebuild per-coefficient tables
/// from it.
pub(crate) const PRIM_POLY: u32 = 0x1100b;

pub(crate) struct Tables {
    /// `exp[i] = g^i`, doubled (131070 entries) to avoid a modulo in mul.
    pub(crate) exp: Vec<u16>,
    /// `log[x]`; `log[0]` unused.
    pub(crate) log: Vec<u32>,
}

pub(crate) fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * 65535 + 2];
        let mut log = vec![0u32; 65536];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(65535) {
            *e = x as u16;
            log[x as usize] = i as u32;
            x <<= 1;
            if x & 0x10000 != 0 {
                x ^= PRIM_POLY;
            }
        }
        for i in 65535..exp.len() {
            exp[i] = exp[i - 65535];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2^16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct GF65536(pub u16);

impl From<u16> for GF65536 {
    fn from(value: u16) -> Self {
        GF65536(value)
    }
}

impl From<GF65536> for u16 {
    fn from(value: GF65536) -> Self {
        value.0
    }
}

impl Add for GF65536 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        GF65536(self.0 ^ rhs.0)
    }
}

impl AddAssign for GF65536 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for GF65536 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        GF65536(self.0 ^ rhs.0)
    }
}

impl SubAssign for GF65536 {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Neg for GF65536 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl Mul for GF65536 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return GF65536(0);
        }
        let t = tables();
        let idx = t.log[self.0 as usize] + t.log[rhs.0 as usize];
        GF65536(t.exp[idx as usize])
    }
}

impl MulAssign for GF65536 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for GF65536 {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        assert!(rhs.0 != 0, "division by zero in GF(2^16)");
        if self.0 == 0 {
            return GF65536(0);
        }
        let t = tables();
        let idx = t.log[self.0 as usize] + 65535 - t.log[rhs.0 as usize];
        GF65536(t.exp[idx as usize])
    }
}

impl Field for GF65536 {
    const ZERO: Self = GF65536(0);
    const ONE: Self = GF65536(1);
    const BITS: u32 = 16;
    const ORDER: usize = 65536;

    fn from_usize(value: usize) -> Self {
        // Wrapping here would silently alias field points — a Cauchy code
        // constructed with out-of-range points would lose its MDS property
        // without any error.  Fail loudly instead.
        assert!(
            value < Self::ORDER,
            "GF(2^16) element {value} out of range (order 65536)"
        );
        GF65536(value as u16)
    }

    fn to_usize(self) -> usize {
        self.0 as usize
    }

    fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            let t = tables();
            Some(GF65536(t.exp[(65535 - t.log[self.0 as usize]) as usize]))
        }
    }

    fn generator() -> Self {
        GF65536(2)
    }

    fn mul_acc_slice(coeff: Self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
        assert_eq!(
            dst.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        if coeff.0 == 0 {
            return;
        }
        if coeff.0 == 1 {
            crate::field::xor_slice(dst, src);
            return;
        }
        crate::kernels::gf16::mul_acc_slice(coeff.0, dst, src);
    }

    fn mul_slice(coeff: Self, data: &mut [u8]) {
        assert_eq!(
            data.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        if coeff.0 == 1 {
            return;
        }
        if coeff.0 == 0 {
            data.fill(0);
            return;
        }
        crate::kernels::gf16::mul_slice(coeff.0, data);
    }
}

impl std::fmt::Display for GF65536 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(GF65536(0x1234) + GF65536(0x5678), GF65536(0x1234 ^ 0x5678));
    }

    #[test]
    fn generator_powers_do_not_repeat_early() {
        // Checking full order (65535 steps) is cheap enough to do once.
        let g = GF65536::generator();
        let mut x = GF65536::ONE;
        for i in 1..=65535u32 {
            x *= g;
            if x == GF65536::ONE {
                assert_eq!(i, 65535, "generator order must be 65535, repeated at {i}");
            }
        }
        assert_eq!(x, GF65536::ONE);
    }

    #[test]
    fn from_usize_covers_the_full_field() {
        assert_eq!(GF65536::from_usize(0), GF65536::ZERO);
        assert_eq!(GF65536::from_usize(65535), GF65536(65535));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_usize_rejects_out_of_range() {
        let _ = GF65536::from_usize(65536);
    }

    #[test]
    fn inverse_roundtrip_sampled() {
        for v in (1..=65535u32).step_by(251) {
            let x = GF65536(v as u16);
            assert_eq!(x * x.inverse().unwrap(), GF65536::ONE);
        }
        assert_eq!(GF65536::ZERO.inverse(), None);
    }

    #[test]
    fn mul_slice_and_acc_consistent() {
        let src: Vec<u8> = (0..128u16).flat_map(|v| (v * 513).to_le_bytes()).collect();
        let coeff = GF65536(0xabc);
        let mut scaled = src.clone();
        GF65536::mul_slice(coeff, &mut scaled);
        let mut acc = vec![0u8; src.len()];
        GF65536::mul_acc_slice(coeff, &mut acc, &src);
        assert_eq!(scaled, acc);
    }

    #[test]
    #[should_panic(expected = "whole 16-bit elements")]
    fn odd_length_slices_rejected() {
        let mut data = vec![0u8; 3];
        GF65536::mul_slice(GF65536(2), &mut data);
    }

    /// Element-by-element reference for the slice kernels.
    fn reference_mul_acc(coeff: u16, dst: &mut [u8], src: &[u8]) {
        for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
            let sv = GF65536(u16::from_le_bytes([s[0], s[1]]));
            let dv = u16::from_le_bytes([d[0], d[1]]) ^ (GF65536(coeff) * sv).0;
            d.copy_from_slice(&dv.to_le_bytes());
        }
    }

    #[test]
    fn slice_kernels_match_field_mul_for_all_byte_patterns() {
        // Covers every low-byte and high-byte table entry.
        let src: Vec<u8> = (0..=255u16)
            .flat_map(|b| [(b << 8) | b, b, b << 8])
            .flat_map(|v| v.to_le_bytes())
            .collect();
        for coeff in [0u16, 1, 2, 3, 0x100, 0xabc, 0x8000, 0xfffe, 0xffff] {
            let mut dst = vec![0x5au8; src.len()];
            let mut expect = dst.clone();
            reference_mul_acc(coeff, &mut expect, &src);
            GF65536::mul_acc_slice(GF65536(coeff), &mut dst, &src);
            assert_eq!(dst, expect, "coeff {coeff:#06x}");
        }
    }

    #[test]
    fn slice_kernels_agree_across_the_cutoff() {
        // Lengths straddling the kernel module's small-slice cutoff must
        // agree: both the log/exp small-slice path and the dispatched long
        // path are compared to the element-wise reference.
        for len_elems in [1usize, 8, 31, 32, 33, 64, 100, 512] {
            let src: Vec<u8> = (0..len_elems)
                .flat_map(|i| ((i as u16).wrapping_mul(2654) ^ 0x700d).to_le_bytes())
                .collect();
            for coeff in [2u16, 0x1234, 0xffff] {
                let mut dst: Vec<u8> = (0..src.len()).map(|i| i as u8).collect();
                let mut expect = dst.clone();
                reference_mul_acc(coeff, &mut expect, &src);
                GF65536::mul_acc_slice(GF65536(coeff), &mut dst, &src);
                assert_eq!(dst, expect, "mul_acc coeff {coeff:#06x} len {len_elems}");

                let mut data = src.clone();
                GF65536::mul_slice(GF65536(coeff), &mut data);
                let mut expect = vec![0u8; src.len()];
                reference_mul_acc(coeff, &mut expect, &src);
                assert_eq!(data, expect, "mul coeff {coeff:#06x} len {len_elems}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_field_axioms(a: u16, b: u16, c: u16) {
            let (a, b, c) = (GF65536(a), GF65536(b), GF65536(c));
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + a, GF65536::ZERO);
        }

        #[test]
        fn prop_div_mul_roundtrip(a: u16, b in 1u16..=u16::MAX) {
            let q = GF65536(a) / GF65536(b);
            prop_assert_eq!(q * GF65536(b), GF65536(a));
        }

        #[test]
        fn prop_slice_kernels_match_reference(
            coeff: u16,
            elems in proptest::collection::vec(any::<u16>(), 0..200),
        ) {
            let src: Vec<u8> = elems.iter().flat_map(|v| v.to_le_bytes()).collect();
            let mut dst = vec![0xa5u8; src.len()];
            let mut expect = dst.clone();
            reference_mul_acc(coeff, &mut expect, &src);
            GF65536::mul_acc_slice(GF65536(coeff), &mut dst, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn prop_pow_consistent(a: u16, e in 0u64..32) {
            let x = GF65536(a);
            let mut acc = GF65536::ONE;
            for _ in 0..e { acc *= x; }
            prop_assert_eq!(x.pow(e), acc);
        }
    }
}
