//! GF(2^16) — used when a single Reed–Solomon block spans more than 255
//! packets (e.g. the non-interleaved Vandermonde baseline encoding a whole
//! multi-megabyte file, Tables 2 and 3 of the paper).
//!
//! Elements are `u16`.  The full multiplication table would be 8 GiB, so
//! multiplication goes through 64 K-entry log/exp tables instead; the
//! slice kernels look up per-call log rows which keeps the per-byte cost at two
//! table lookups and one add.

use crate::field::Field;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// Primitive polynomial x^16 + x^12 + x^3 + x + 1.
const PRIM_POLY: u32 = 0x1100b;

struct Tables {
    /// `exp[i] = g^i`, doubled (131070 entries) to avoid a modulo in mul.
    exp: Vec<u16>,
    /// `log[x]`; `log[0]` unused.
    log: Vec<u32>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * 65535 + 2];
        let mut log = vec![0u32; 65536];
        let mut x: u32 = 1;
        for i in 0..65535 {
            exp[i] = x as u16;
            log[x as usize] = i as u32;
            x <<= 1;
            if x & 0x10000 != 0 {
                x ^= PRIM_POLY;
            }
        }
        for i in 65535..exp.len() {
            exp[i] = exp[i - 65535];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2^16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct GF65536(pub u16);

impl From<u16> for GF65536 {
    fn from(value: u16) -> Self {
        GF65536(value)
    }
}

impl From<GF65536> for u16 {
    fn from(value: GF65536) -> Self {
        value.0
    }
}

impl Add for GF65536 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        GF65536(self.0 ^ rhs.0)
    }
}

impl AddAssign for GF65536 {
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for GF65536 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        GF65536(self.0 ^ rhs.0)
    }
}

impl SubAssign for GF65536 {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Neg for GF65536 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl Mul for GF65536 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return GF65536(0);
        }
        let t = tables();
        let idx = t.log[self.0 as usize] + t.log[rhs.0 as usize];
        GF65536(t.exp[idx as usize])
    }
}

impl MulAssign for GF65536 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for GF65536 {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        assert!(rhs.0 != 0, "division by zero in GF(2^16)");
        if self.0 == 0 {
            return GF65536(0);
        }
        let t = tables();
        let idx = t.log[self.0 as usize] + 65535 - t.log[rhs.0 as usize];
        GF65536(t.exp[idx as usize])
    }
}

impl Field for GF65536 {
    const ZERO: Self = GF65536(0);
    const ONE: Self = GF65536(1);
    const BITS: u32 = 16;
    const ORDER: usize = 65536;

    fn from_usize(value: usize) -> Self {
        GF65536((value % 65536) as u16)
    }

    fn to_usize(self) -> usize {
        self.0 as usize
    }

    fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            let t = tables();
            Some(GF65536(t.exp[(65535 - t.log[self.0 as usize]) as usize]))
        }
    }

    fn generator() -> Self {
        GF65536(2)
    }

    fn mul_acc_slice(coeff: Self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
        assert_eq!(
            dst.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        if coeff.0 == 0 {
            return;
        }
        if coeff.0 == 1 {
            crate::field::xor_slice(dst, src);
            return;
        }
        let t = tables();
        let log_c = t.log[coeff.0 as usize];
        for i in (0..dst.len()).step_by(2) {
            let s = u16::from_le_bytes([src[i], src[i + 1]]);
            if s == 0 {
                continue;
            }
            let prod = t.exp[(log_c + t.log[s as usize]) as usize];
            let d = u16::from_le_bytes([dst[i], dst[i + 1]]) ^ prod;
            dst[i..i + 2].copy_from_slice(&d.to_le_bytes());
        }
    }

    fn mul_slice(coeff: Self, data: &mut [u8]) {
        assert_eq!(
            data.len() % 2,
            0,
            "GF(2^16) slices must contain whole 16-bit elements"
        );
        if coeff.0 == 1 {
            return;
        }
        if coeff.0 == 0 {
            data.fill(0);
            return;
        }
        let t = tables();
        let log_c = t.log[coeff.0 as usize];
        for i in (0..data.len()).step_by(2) {
            let s = u16::from_le_bytes([data[i], data[i + 1]]);
            let prod = if s == 0 {
                0
            } else {
                t.exp[(log_c + t.log[s as usize]) as usize]
            };
            data[i..i + 2].copy_from_slice(&prod.to_le_bytes());
        }
    }
}

impl std::fmt::Display for GF65536 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(GF65536(0x1234) + GF65536(0x5678), GF65536(0x1234 ^ 0x5678));
    }

    #[test]
    fn generator_powers_do_not_repeat_early() {
        // Checking full order (65535 steps) is cheap enough to do once.
        let g = GF65536::generator();
        let mut x = GF65536::ONE;
        for i in 1..=65535u32 {
            x = x * g;
            if x == GF65536::ONE {
                assert_eq!(i, 65535, "generator order must be 65535, repeated at {i}");
            }
        }
        assert_eq!(x, GF65536::ONE);
    }

    #[test]
    fn inverse_roundtrip_sampled() {
        for v in (1..=65535u32).step_by(251) {
            let x = GF65536(v as u16);
            assert_eq!(x * x.inverse().unwrap(), GF65536::ONE);
        }
        assert_eq!(GF65536::ZERO.inverse(), None);
    }

    #[test]
    fn mul_slice_and_acc_consistent() {
        let src: Vec<u8> = (0..128u16).flat_map(|v| (v * 513).to_le_bytes()).collect();
        let coeff = GF65536(0xabc);
        let mut scaled = src.clone();
        GF65536::mul_slice(coeff, &mut scaled);
        let mut acc = vec![0u8; src.len()];
        GF65536::mul_acc_slice(coeff, &mut acc, &src);
        assert_eq!(scaled, acc);
    }

    #[test]
    #[should_panic(expected = "whole 16-bit elements")]
    fn odd_length_slices_rejected() {
        let mut data = vec![0u8; 3];
        GF65536::mul_slice(GF65536(2), &mut data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_field_axioms(a: u16, b: u16, c: u16) {
            let (a, b, c) = (GF65536(a), GF65536(b), GF65536(c));
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + a, GF65536::ZERO);
        }

        #[test]
        fn prop_div_mul_roundtrip(a: u16, b in 1u16..=u16::MAX) {
            let q = GF65536(a) / GF65536(b);
            prop_assert_eq!(q * GF65536(b), GF65536(a));
        }

        #[test]
        fn prop_pow_consistent(a: u16, e in 0u64..32) {
            let x = GF65536(a);
            let mut acc = GF65536::ONE;
            for _ in 0..e { acc = acc * x; }
            prop_assert_eq!(x.pow(e), acc);
        }
    }
}
