//! Vectorized GF slice kernels: split-nibble multiply-accumulate.
//!
//! This module holds the GF(2^8) tiers; the GF(2^16) tiers, which extend the
//! same nibble-table trick to four nibble positions, live in [`gf16`].  Both
//! share the runtime ISA detection below, so one binary dispatches each field
//! to the best kernel the machine supports.
//!
//! # Why split nibbles
//!
//! The hot loop of every erasure code in this workspace is
//! `dst[i] ^= coeff * src[i]` over GF(2^8).  A 256-entry lookup table per
//! coefficient (the classic log/exp approach, [`scalar`]) processes one byte
//! per load and cannot be vectorized by the compiler because the table index
//! depends on the data.
//!
//! The split-nibble trick — used by every fast Reed–Solomon implementation in
//! the `reed_solomon_erasure` / Rizzo `fec` lineage the paper benchmarks
//! against — exploits linearity of the field over GF(2):
//!
//! ```text
//! c · x  =  c · (x_lo ⊕ (x_hi << 4))  =  (c · x_lo) ⊕ (c · (x_hi << 4))
//! ```
//!
//! so two **16-entry** tables per coefficient suffice: `LO[c][x & 15]` and
//! `HI[c][x >> 4]`.  Sixteen entries is exactly one SSE/AVX register, and the
//! `pshufb` instruction performs sixteen (SSSE3) or thirty-two (AVX2) such
//! lookups per cycle.  Both tables for all 256 coefficients total 8 KiB and
//! live comfortably in L1.
//!
//! # Kernel tiers and feature detection
//!
//! Three implementations are provided, verified against each other by
//! exhaustive and property tests:
//!
//! 1. **`pshufb` SIMD** ([`mul_acc_slice`] dispatch target on x86/x86_64) —
//!    64 bytes per step with AVX-512BW, 32 with AVX2, 16 with SSSE3.
//!    Selected **at runtime** via
//!    `is_x86_feature_detected!`, memoized in a `OnceLock`, so one binary runs
//!    optimally on any machine; `unsafe` is confined to this module and each
//!    `target_feature` function is only reachable after its feature check.
//! 2. **SWAR** ([`swar`]) — a portable carry-less "Russian peasant" ladder
//!    that multiplies eight byte lanes of a `u64` at once using the xtime
//!    (multiply-by-x) step `x·2 = ((x & 0x7f..) << 1) ⊕ (0x1d per lane with
//!    the high bit set)`.  Used for the sub-vector tails of the SIMD paths,
//!    where it avoids pulling a fresh 256-byte table row into cache for a
//!    handful of bytes.  It is **not** the machine-wide fallback: its 8-step
//!    serial dependency chain measures ~3.6× *slower* than the scalar table
//!    row on out-of-order x86 (see `benches/kernels.rs`), so machines without
//!    SSSE3 dispatch to the scalar row instead.
//! 3. **Scalar reference** ([`scalar`]) — the original 256-entry-row loop,
//!    retained as the semantic definition the other tiers must match, as the
//!    baseline the Criterion benches compare against, and as the no-SIMD
//!    dispatch target.
//!
//! Dispatch happens **once per slice call**, not per byte.

// `unsafe` is needed for the `core::arch` intrinsics only; the crate root
// denies unsafe code everywhere else.
#![allow(unsafe_code)]

pub mod gf16;

use std::sync::OnceLock;

/// The reduction byte of the field polynomial 0x11d, replicated per lane by
/// the SWAR xtime step.
const POLY_LOW: u64 = 0x1d;

/// Split-nibble product tables: `lo[c][x] = c·x` for `x < 16`,
/// `hi[c][x] = c·(x << 4)`.
struct NibbleTables {
    lo: [[u8; 16]; 256],
    hi: [[u8; 16]; 256],
}

fn nibble_tables() -> &'static NibbleTables {
    static TABLES: OnceLock<Box<NibbleTables>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new(NibbleTables {
            lo: [[0; 16]; 256],
            hi: [[0; 16]; 256],
        });
        for c in 0..256 {
            let row = crate::gf8::mul_row(c as u8);
            for x in 0..16 {
                t.lo[c][x] = row[x];
                t.hi[c][x] = row[x << 4];
            }
        }
        t
    })
}

/// Which kernel tier dispatch selected (normally the best the CPU supports;
/// the [`FORCE_TIER_ENV`] environment override can pin a different one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    /// AVX-512BW: 64-byte `pshufb` steps.
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    Avx512,
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    Avx2,
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    Ssse3,
    /// The portable SWAR ladder as the *primary* kernel — never chosen by
    /// detection (see the tier notes above), only forced for testing.
    Swar,
    Scalar,
}

/// Environment override for the kernel tier: set `DF_GF_FORCE_TIER` to
/// `scalar`, `swar`, `ssse3`, `avx2` or `avx512` to pin dispatch to that
/// tier for the whole process (both the GF(2^8) and GF(2^16) kernels — they
/// share this dispatcher).  CI runs the test suites under `swar` and
/// `scalar` so the non-SIMD tiers are exercised on machines whose detection
/// would never pick them.  An unknown or locally unsupported value panics at
/// the first kernel call: a forced tier that silently fell back would defeat
/// the matrix's purpose.
pub const FORCE_TIER_ENV: &str = "DF_GF_FORCE_TIER";

/// Resolve a [`FORCE_TIER_ENV`] value, validating it against this machine.
fn forced_isa(name: &str) -> Result<Isa, String> {
    match name {
        "scalar" => Ok(Isa::Scalar),
        "swar" => Ok(Isa::Swar),
        "ssse3" | "avx2" | "avx512" => {
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            {
                let (isa, supported) = match name {
                    "ssse3" => (Isa::Ssse3, std::arch::is_x86_feature_detected!("ssse3")),
                    "avx2" => (Isa::Avx2, std::arch::is_x86_feature_detected!("avx2")),
                    _ => (Isa::Avx512, std::arch::is_x86_feature_detected!("avx512bw")),
                };
                if supported {
                    Ok(isa)
                } else {
                    Err(format!(
                        "{FORCE_TIER_ENV}={name} requested but this CPU does not support it"
                    ))
                }
            }
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            Err(format!(
                "{FORCE_TIER_ENV}={name} requested but the tier only exists on x86"
            ))
        }
        other => Err(format!(
            "{FORCE_TIER_ENV}={other:?} is not a kernel tier \
             (expected scalar, swar, ssse3, avx2 or avx512)"
        )),
    }
}

fn detect_isa() -> Isa {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512bw") {
            return Isa::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return Isa::Ssse3;
        }
    }
    Isa::Scalar
}

fn isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| match std::env::var(FORCE_TIER_ENV) {
        Ok(name) => forced_isa(&name).unwrap_or_else(|reason| panic!("{reason}")),
        Err(_) => detect_isa(),
    })
}

/// Name of the kernel tier runtime dispatch selected on this machine
/// (`"avx2"`, `"ssse3"` or `"scalar"`); surfaced in benchmark output so
/// recorded numbers identify the code path that produced them.
pub fn active_kernel() -> &'static str {
    match isa() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Isa::Avx512 => "avx512",
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Isa::Avx2 => "avx2",
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Isa::Ssse3 => "ssse3",
        Isa::Swar => "swar",
        Isa::Scalar => "scalar",
    }
}

/// `dst[i] ^= coeff · src[i]` over GF(2^8), fastest available kernel.
///
/// Callers are expected to have peeled the `coeff == 0` (no-op) and
/// `coeff == 1` (plain XOR) cases; this function is still correct for them.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_slice(coeff: u8, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
    match isa() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `isa()` returned Avx512/Avx2/Ssse3 only after
        // `is_x86_feature_detected!` confirmed the feature at runtime.
        Isa::Avx512 => unsafe { x86::mul_acc_avx512(coeff, dst, src) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Isa::Avx2 => unsafe { x86::mul_acc_avx2(coeff, dst, src) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Isa::Ssse3 => unsafe { x86::mul_acc_ssse3(coeff, dst, src) },
        Isa::Swar => swar::mul_acc_slice(coeff, dst, src),
        Isa::Scalar => scalar::mul_acc_slice(coeff, dst, src),
    }
}

/// `data[i] = coeff · data[i]` over GF(2^8), fastest available kernel.
pub fn mul_slice(coeff: u8, data: &mut [u8]) {
    match isa() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as in `mul_acc_slice`.
        Isa::Avx512 => unsafe { x86::mul_avx512(coeff, data) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Isa::Avx2 => unsafe { x86::mul_avx2(coeff, data) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Isa::Ssse3 => unsafe { x86::mul_ssse3(coeff, data) },
        Isa::Swar => swar::mul_slice(coeff, data),
        Isa::Scalar => scalar::mul_slice(coeff, data),
    }
}

/// Scalar reference kernels: one 256-entry table row, one byte at a time.
///
/// These define the semantics the vectorized tiers are tested against, and
/// serve as the baseline for the `kernels` Criterion bench.
pub mod scalar {
    /// Reference `dst[i] ^= coeff · src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_acc_slice(coeff: u8, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
        let row = crate::gf8::mul_row(coeff);
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d ^= row[s as usize];
        }
    }

    /// Reference `data[i] = coeff · data[i]`.
    pub fn mul_slice(coeff: u8, data: &mut [u8]) {
        let row = crate::gf8::mul_row(coeff);
        for d in data.iter_mut() {
            *d = row[*d as usize];
        }
    }
}

/// Portable SWAR kernels: eight byte lanes per `u64` step.
pub mod swar {
    use super::POLY_LOW;

    const LANE_HI: u64 = 0x8080_8080_8080_8080;
    const LANE_LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;

    /// Multiply all eight byte lanes of `word` by `coeff` via the carry-less
    /// Russian-peasant ladder: for each set bit of `coeff`, accumulate the
    /// running lane-wise multiple of x.
    #[inline]
    pub(super) fn mul_word(mut word: u64, coeff: u8) -> u64 {
        let mut acc = 0u64;
        let mut bits = coeff;
        loop {
            if bits & 1 != 0 {
                acc ^= word;
            }
            bits >>= 1;
            if bits == 0 {
                return acc;
            }
            // Lane-wise xtime: shift each byte left and reduce lanes whose
            // high bit was set by the field polynomial's low byte.  The
            // multiply broadcasts 0x1d into exactly the lanes with a carry
            // (each carry bit is 0 or 1 at the lane's lowest bit position, so
            // products cannot spill into neighbouring lanes).
            let carries = (word & LANE_HI) >> 7;
            word = ((word & LANE_LOW7) << 1) ^ carries.wrapping_mul(POLY_LOW);
        }
    }

    /// SWAR `dst[i] ^= coeff · src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_acc_slice(coeff: u8, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "mul_acc_slice requires equal lengths");
        let mut d_words = dst.chunks_exact_mut(8);
        let mut s_words = src.chunks_exact(8);
        for (d, s) in (&mut d_words).zip(&mut s_words) {
            let sv = u64::from_ne_bytes(s.try_into().expect("chunk is 8 bytes"));
            let dv = u64::from_ne_bytes((&*d).try_into().expect("chunk is 8 bytes"));
            d.copy_from_slice(&(dv ^ mul_word(sv, coeff)).to_ne_bytes());
        }
        let row = crate::gf8::mul_row(coeff);
        for (d, &s) in d_words.into_remainder().iter_mut().zip(s_words.remainder()) {
            *d ^= row[s as usize];
        }
    }

    /// SWAR `data[i] = coeff · data[i]`.
    pub fn mul_slice(coeff: u8, data: &mut [u8]) {
        let mut words = data.chunks_exact_mut(8);
        for d in &mut words {
            let dv = u64::from_ne_bytes((&*d).try_into().expect("chunk is 8 bytes"));
            d.copy_from_slice(&mul_word(dv, coeff).to_ne_bytes());
        }
        let row = crate::gf8::mul_row(coeff);
        for d in words.into_remainder().iter_mut() {
            *d = row[*d as usize];
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    //! `pshufb` kernels.  Each function is compiled for its target feature
    //! and must only be called after runtime detection confirms it.
    use super::nibble_tables;

    #[cfg(target_arch = "x86")]
    use core::arch::x86 as arch;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64 as arch;

    use arch::{
        __m128i, __m256i, __m512i, _mm256_and_si256, _mm256_broadcastsi128_si256,
        _mm256_loadu_si256, _mm256_set1_epi8, _mm256_shuffle_epi8, _mm256_srli_epi64,
        _mm256_storeu_si256, _mm256_xor_si256, _mm512_and_si512, _mm512_broadcast_i32x4,
        _mm512_loadu_si512, _mm512_set1_epi8, _mm512_shuffle_epi8, _mm512_srli_epi64,
        _mm512_storeu_si512, _mm512_xor_si512, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8,
        _mm_shuffle_epi8, _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
    };

    /// One AVX-512 step: 64 products via two nibble shuffles.
    ///
    /// # Safety
    ///
    /// Caller must be inside an `avx512bw` target-feature region.
    #[inline(always)]
    unsafe fn product64(src: __m512i, lo: __m512i, hi: __m512i, mask: __m512i) -> __m512i {
        // SAFETY: caller is inside an avx512bw target_feature region.
        unsafe {
            let lo_nib = _mm512_and_si512(src, mask);
            let hi_nib = _mm512_and_si512(_mm512_srli_epi64(src, 4), mask);
            _mm512_xor_si512(
                _mm512_shuffle_epi8(lo, lo_nib),
                _mm512_shuffle_epi8(hi, hi_nib),
            )
        }
    }

    /// # Safety
    ///
    /// Requires AVX-512BW (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx512f,avx512bw")]
    pub(super) unsafe fn mul_acc_avx512(coeff: u8, dst: &mut [u8], src: &[u8]) {
        let t = nibble_tables();
        // SAFETY: the table rows are 16 bytes, matching the unaligned loads;
        // chunk pointers come from `chunks_exact`, so every 64-byte access is
        // in bounds.  AVX-512BW implies AVX2 for the tail kernel.
        unsafe {
            let lo = _mm512_broadcast_i32x4(_mm_loadu_si128(
                t.lo[coeff as usize].as_ptr() as *const __m128i
            ));
            let hi = _mm512_broadcast_i32x4(_mm_loadu_si128(
                t.hi[coeff as usize].as_ptr() as *const __m128i
            ));
            let mask = _mm512_set1_epi8(0x0f);
            let mut d_chunks = dst.chunks_exact_mut(64);
            let mut s_chunks = src.chunks_exact(64);
            for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
                let sv = _mm512_loadu_si512(s.as_ptr() as *const __m512i);
                let dv = _mm512_loadu_si512(d.as_ptr() as *const __m512i);
                let out = _mm512_xor_si512(dv, product64(sv, lo, hi, mask));
                _mm512_storeu_si512(d.as_mut_ptr() as *mut __m512i, out);
            }
            mul_acc_avx2(coeff, d_chunks.into_remainder(), s_chunks.remainder());
        }
    }

    /// # Safety
    ///
    /// Requires AVX-512BW (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx512f,avx512bw")]
    pub(super) unsafe fn mul_avx512(coeff: u8, data: &mut [u8]) {
        let t = nibble_tables();
        // SAFETY: as in `mul_acc_avx512`.
        unsafe {
            let lo = _mm512_broadcast_i32x4(_mm_loadu_si128(
                t.lo[coeff as usize].as_ptr() as *const __m128i
            ));
            let hi = _mm512_broadcast_i32x4(_mm_loadu_si128(
                t.hi[coeff as usize].as_ptr() as *const __m128i
            ));
            let mask = _mm512_set1_epi8(0x0f);
            let mut chunks = data.chunks_exact_mut(64);
            for d in &mut chunks {
                let dv = _mm512_loadu_si512(d.as_ptr() as *const __m512i);
                let out = product64(dv, lo, hi, mask);
                _mm512_storeu_si512(d.as_mut_ptr() as *mut __m512i, out);
            }
            mul_avx2(coeff, chunks.into_remainder());
        }
    }

    /// One AVX2 step: 32 products via two nibble shuffles.
    ///
    /// # Safety
    ///
    /// Caller must be inside an `avx2` target-feature region.
    #[inline(always)]
    unsafe fn product32(src: __m256i, lo: __m256i, hi: __m256i, mask: __m256i) -> __m256i {
        // SAFETY: caller is inside an avx2 target_feature region.
        unsafe {
            let lo_nib = _mm256_and_si256(src, mask);
            let hi_nib = _mm256_and_si256(_mm256_srli_epi64(src, 4), mask);
            _mm256_xor_si256(
                _mm256_shuffle_epi8(lo, lo_nib),
                _mm256_shuffle_epi8(hi, hi_nib),
            )
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_acc_avx2(coeff: u8, dst: &mut [u8], src: &[u8]) {
        let t = nibble_tables();
        // SAFETY: the table rows are 16 bytes, matching the unaligned loads;
        // chunk pointers come from `chunks_exact`, so every 32-byte access is
        // in bounds.
        unsafe {
            let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.lo[coeff as usize].as_ptr() as *const __m128i
            ));
            let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.hi[coeff as usize].as_ptr() as *const __m128i
            ));
            let mask = _mm256_set1_epi8(0x0f);
            let mut d_chunks = dst.chunks_exact_mut(32);
            let mut s_chunks = src.chunks_exact(32);
            for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
                let sv = _mm256_loadu_si256(s.as_ptr() as *const __m256i);
                let dv = _mm256_loadu_si256(d.as_ptr() as *const __m256i);
                let out = _mm256_xor_si256(dv, product32(sv, lo, hi, mask));
                _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, out);
            }
            super::swar::mul_acc_slice(coeff, d_chunks.into_remainder(), s_chunks.remainder());
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_avx2(coeff: u8, data: &mut [u8]) {
        let t = nibble_tables();
        // SAFETY: as in `mul_acc_avx2`.
        unsafe {
            let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.lo[coeff as usize].as_ptr() as *const __m128i
            ));
            let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.hi[coeff as usize].as_ptr() as *const __m128i
            ));
            let mask = _mm256_set1_epi8(0x0f);
            let mut chunks = data.chunks_exact_mut(32);
            for d in &mut chunks {
                let dv = _mm256_loadu_si256(d.as_ptr() as *const __m256i);
                let out = product32(dv, lo, hi, mask);
                _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, out);
            }
            super::swar::mul_slice(coeff, chunks.into_remainder());
        }
    }

    /// # Safety
    ///
    /// Requires SSSE3 (checked by the dispatcher at runtime).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_acc_ssse3(coeff: u8, dst: &mut [u8], src: &[u8]) {
        let t = nibble_tables();
        // SAFETY: as in `mul_acc_avx2`, with 16-byte accesses.
        unsafe {
            let lo = _mm_loadu_si128(t.lo[coeff as usize].as_ptr() as *const __m128i);
            let hi = _mm_loadu_si128(t.hi[coeff as usize].as_ptr() as *const __m128i);
            let mask = _mm_set1_epi8(0x0f);
            let mut d_chunks = dst.chunks_exact_mut(16);
            let mut s_chunks = src.chunks_exact(16);
            for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
                let sv = _mm_loadu_si128(s.as_ptr() as *const __m128i);
                let dv = _mm_loadu_si128(d.as_ptr() as *const __m128i);
                let lo_nib = _mm_and_si128(sv, mask);
                let hi_nib = _mm_and_si128(_mm_srli_epi64(sv, 4), mask);
                let prod =
                    _mm_xor_si128(_mm_shuffle_epi8(lo, lo_nib), _mm_shuffle_epi8(hi, hi_nib));
                _mm_storeu_si128(d.as_mut_ptr() as *mut __m128i, _mm_xor_si128(dv, prod));
            }
            super::swar::mul_acc_slice(coeff, d_chunks.into_remainder(), s_chunks.remainder());
        }
    }

    /// # Safety
    ///
    /// Requires SSSE3 (checked by the dispatcher at runtime).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_ssse3(coeff: u8, data: &mut [u8]) {
        let t = nibble_tables();
        // SAFETY: as in `mul_acc_ssse3`.
        unsafe {
            let lo = _mm_loadu_si128(t.lo[coeff as usize].as_ptr() as *const __m128i);
            let hi = _mm_loadu_si128(t.hi[coeff as usize].as_ptr() as *const __m128i);
            let mask = _mm_set1_epi8(0x0f);
            let mut chunks = data.chunks_exact_mut(16);
            for d in &mut chunks {
                let dv = _mm_loadu_si128(d.as_ptr() as *const __m128i);
                let lo_nib = _mm_and_si128(dv, mask);
                let hi_nib = _mm_and_si128(_mm_srli_epi64(dv, 4), mask);
                let prod =
                    _mm_xor_si128(_mm_shuffle_epi8(lo, lo_nib), _mm_shuffle_epi8(hi, hi_nib));
                _mm_storeu_si128(d.as_mut_ptr() as *mut __m128i, prod);
            }
            super::swar::mul_slice(coeff, chunks.into_remainder());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random payload so every length has non-trivial,
    /// reproducible content.
    fn payload(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt) ^ (i >> 8) as u8)
            .collect()
    }

    fn check_all_kernels(coeff: u8, len: usize) {
        let src = payload(len, coeff);
        let dst0 = payload(len, coeff.wrapping_add(91));

        let mut expect_acc = dst0.clone();
        scalar::mul_acc_slice(coeff, &mut expect_acc, &src);
        let mut expect_mul = src.clone();
        scalar::mul_slice(coeff, &mut expect_mul);

        let mut got = dst0.clone();
        swar::mul_acc_slice(coeff, &mut got, &src);
        assert_eq!(got, expect_acc, "swar mul_acc coeff {coeff:#04x} len {len}");

        let mut got = dst0.clone();
        mul_acc_slice(coeff, &mut got, &src);
        assert_eq!(
            got,
            expect_acc,
            "{} mul_acc coeff {coeff:#04x} len {len}",
            active_kernel()
        );

        let mut got = src.clone();
        swar::mul_slice(coeff, &mut got);
        assert_eq!(got, expect_mul, "swar mul coeff {coeff:#04x} len {len}");

        let mut got = src.clone();
        mul_slice(coeff, &mut got);
        assert_eq!(
            got,
            expect_mul,
            "{} mul coeff {coeff:#04x} len {len}",
            active_kernel()
        );
    }

    #[test]
    fn all_lengths_zero_to_300_match_scalar() {
        // Every length in the satellite-task range, against a spread of
        // coefficients including both field "edges" and a rolling value; hits
        // every unaligned head/tail combination of the 32/16/8-byte kernels.
        // Under the Miri interpreter the exhaustive sweep is intractable, so
        // subsample lengths (the full sweep still runs natively and in CI).
        let step = if cfg!(miri) { 37 } else { 1 };
        for len in (0..=300usize).step_by(step) {
            for coeff in [0u8, 1, 2, 3, 0x1d, 0x80, 0xff, (len as u8).wrapping_mul(7)] {
                check_all_kernels(coeff, len);
            }
        }
    }

    #[test]
    fn all_coefficients_match_scalar_at_vector_boundaries() {
        // Every coefficient, at lengths straddling the SIMD chunk sizes.
        // Subsampled under Miri as above.
        let step = if cfg!(miri) { 17 } else { 1 };
        for coeff in (0..=255u8).step_by(step as usize) {
            for len in [7usize, 8, 15, 16, 17, 31, 32, 33, 64, 100, 1024] {
                check_all_kernels(coeff, len);
            }
        }
    }

    #[test]
    fn swar_word_agrees_with_field_multiplication() {
        use crate::GF256;
        for coeff in [0u8, 1, 2, 0x53, 0x8e, 0xff] {
            let word = u64::from_ne_bytes([0x00, 0x01, 0x1d, 0x80, 0xca, 0x53, 0xfe, 0xff]);
            let product = swar::mul_word(word, coeff);
            for (lane, &byte) in word.to_ne_bytes().iter().enumerate() {
                let expect = (GF256(coeff) * GF256(byte)).0;
                assert_eq!(
                    product.to_ne_bytes()[lane],
                    expect,
                    "coeff {coeff:#04x} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn dispatcher_reports_a_known_kernel() {
        assert!(["avx512", "avx2", "ssse3", "swar", "scalar"].contains(&active_kernel()));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "probes host CPU features; the miri job forces the portable tiers"
    )]
    fn force_tier_values_resolve_or_error() {
        // The portable tiers are always accepted…
        assert_eq!(forced_isa("scalar"), Ok(Isa::Scalar));
        assert_eq!(forced_isa("swar"), Ok(Isa::Swar));
        // …unknown names never are (including near-misses: the matrix must
        // fail loudly on a typo, not silently run the default tier)…
        for bogus in ["", "SWAR", "Scalar", "sse2", "gfni", "avx1024"] {
            let err = forced_isa(bogus).expect_err(bogus);
            assert!(err.contains("DF_GF_FORCE_TIER"), "unhelpful error: {err}");
        }
        // …and the SIMD tiers resolve iff this machine has them.
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        for (name, isa, supported) in [
            (
                "ssse3",
                Isa::Ssse3,
                std::arch::is_x86_feature_detected!("ssse3"),
            ),
            (
                "avx2",
                Isa::Avx2,
                std::arch::is_x86_feature_detected!("avx2"),
            ),
            (
                "avx512",
                Isa::Avx512,
                std::arch::is_x86_feature_detected!("avx512bw"),
            ),
        ] {
            match forced_isa(name) {
                Ok(got) => {
                    assert!(supported, "{name} accepted on a CPU without it");
                    assert_eq!(got, isa);
                }
                Err(err) => {
                    assert!(!supported, "{name} rejected on a CPU with it: {err}");
                    assert!(err.contains("support"), "unhelpful error: {err}");
                }
            }
        }
    }

    #[test]
    fn forced_tier_kernels_match_scalar() {
        // When CI pins a tier via the env var, the whole dispatch test suite
        // runs through it; this spot-check additionally exercises the
        // *forced-isa* code path in-process for the portable tiers.
        for name in ["scalar", "swar"] {
            let isa = forced_isa(name).unwrap();
            let src = payload(300, 7);
            let mut expect = payload(300, 91);
            let mut got = expect.clone();
            scalar::mul_acc_slice(0xa7, &mut expect, &src);
            match isa {
                Isa::Swar => swar::mul_acc_slice(0xa7, &mut got, &src),
                _ => scalar::mul_acc_slice(0xa7, &mut got, &src),
            }
            assert_eq!(got, expect, "forced tier {name}");
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let mut dst = vec![0u8; 4];
        mul_acc_slice(3, &mut dst, &[0u8; 5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_simd_and_swar_match_scalar(
            coeff: u8,
            data in proptest::collection::vec(any::<u8>(), 0..300),
            acc in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            let len = data.len().min(acc.len());
            let (src, dst0) = (&data[..len], &acc[..len]);

            let mut expect = dst0.to_vec();
            scalar::mul_acc_slice(coeff, &mut expect, src);

            let mut got_swar = dst0.to_vec();
            swar::mul_acc_slice(coeff, &mut got_swar, src);
            prop_assert_eq!(&got_swar, &expect);

            let mut got_simd = dst0.to_vec();
            mul_acc_slice(coeff, &mut got_simd, src);
            prop_assert_eq!(&got_simd, &expect);

            let mut expect_mul = src.to_vec();
            scalar::mul_slice(coeff, &mut expect_mul);
            let mut got_mul = src.to_vec();
            mul_slice(coeff, &mut got_mul);
            prop_assert_eq!(&got_mul, &expect_mul);
        }
    }
}
