//! The [`Field`] trait abstracting over GF(2^w) implementations.
//!
//! Reed–Solomon code construction (`df-rs`) and the dense matrix algebra in
//! [`crate::matrix`] are generic over this trait, so the same code paths serve
//! both GF(2^8) (fast, blocks of ≤ 255 packets) and GF(2^16) (large blocks).

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A finite field of characteristic 2 whose elements fit in a machine word.
///
/// All fields used in this workspace are binary extension fields GF(2^w), so
/// addition and subtraction are both XOR and every element is its own additive
/// inverse.  The trait nevertheless exposes the full ring-operator surface so
/// that generic linear-algebra code reads naturally.
pub trait Field:
    Copy
    + Clone
    + Debug
    + PartialEq
    + Eq
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + SubAssign
    + Mul<Output = Self>
    + MulAssign
    + Div<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of bits per element (8 for GF(2^8), 16 for GF(2^16)).
    const BITS: u32;
    /// Number of elements in the field, i.e. `2^BITS`.
    const ORDER: usize;

    /// Construct an element from its canonical integer representation.
    ///
    /// # Panics
    ///
    /// Panics if `value >= ORDER`.  Erasure-code constructions map packet
    /// indices to distinct field points through this function; silently
    /// wrapping an out-of-range value would alias points and destroy the MDS
    /// ("any k of n") property, so out-of-range input is a caller bug.
    fn from_usize(value: usize) -> Self;

    /// The canonical integer representation of this element.
    fn to_usize(self) -> usize;

    /// Multiplicative inverse.
    ///
    /// Returns `None` for the zero element.
    fn inverse(self) -> Option<Self>;

    /// Raise the element to an integer power.
    ///
    /// `ZERO.pow(0)` is defined as `ONE`, matching the usual convention for
    /// evaluating Vandermonde matrices.
    fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            exp >>= 1;
        }
        acc
    }

    /// A fixed multiplicative generator of the field.
    fn generator() -> Self;

    /// True if this is the zero element.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Multiply-accumulate a byte slice: `dst[i] ^= coeff * src[i]` interpreted
    /// element-wise over the field's byte representation.
    ///
    /// This is the hot loop of every Reed–Solomon encode/decode: each output
    /// packet is a field-linear combination of input packets.  Implementations
    /// specialise it (table-driven for GF(2^8)) because the naive
    /// element-by-element path dominates runtime otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths or if the length is not
    /// a multiple of the element width in bytes.
    fn mul_acc_slice(coeff: Self, dst: &mut [u8], src: &[u8]);

    /// Multiply a byte slice in place by a scalar: `data[i] *= coeff`.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a multiple of the element width in bytes.
    fn mul_slice(coeff: Self, data: &mut [u8]);
}

/// XOR `src` into `dst`.  The byte-level addition for every GF(2^w).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_slice requires equal-length slices"
    );
    // `chunks_exact` + `zip` lets the compiler prove every access in bounds
    // once per loop, so the u64 body autovectorizes (AVX2 on x86) instead of
    // re-checking slice indices per chunk; the sub-word tail is scalar.
    let mut d_words = dst.chunks_exact_mut(8);
    let mut s_words = src.chunks_exact(8);
    for (d, s) in (&mut d_words).zip(&mut s_words) {
        let a = u64::from_ne_bytes((&*d).try_into().expect("chunk is 8 bytes"));
        let b = u64::from_ne_bytes(s.try_into().expect("chunk is 8 bytes"));
        d.copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for (d, s) in d_words.into_remainder().iter_mut().zip(s_words.remainder()) {
        *d ^= *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_slice_basic() {
        let mut a = vec![0xffu8, 0x00, 0xaa, 0x55];
        let b = vec![0x0fu8, 0xf0, 0xaa, 0xff];
        xor_slice(&mut a, &b);
        assert_eq!(a, vec![0xf0, 0xf0, 0x00, 0xaa]);
    }

    #[test]
    fn xor_slice_is_involution() {
        let orig: Vec<u8> = (0..97).map(|i| (i * 37 % 251) as u8).collect();
        let mask: Vec<u8> = (0..97).map(|i| (i * 91 % 253) as u8).collect();
        let mut x = orig.clone();
        xor_slice(&mut x, &mask);
        assert_ne!(x, orig);
        xor_slice(&mut x, &mask);
        assert_eq!(x, orig);
    }

    #[test]
    fn xor_slice_handles_unaligned_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
            let mut a = vec![0xabu8; len];
            let b = vec![0xcdu8; len];
            xor_slice(&mut a, &b);
            assert!(a.iter().all(|&v| v == 0xab ^ 0xcd), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_slice_length_mismatch_panics() {
        let mut a = vec![0u8; 4];
        let b = vec![0u8; 5];
        xor_slice(&mut a, &b);
    }
}
