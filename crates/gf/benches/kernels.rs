//! Micro-benchmarks for the GF slice kernels at the paper's 1 KB packet size.
//!
//! The PR-1 acceptance bar is `mul_acc/auto_*` ≥ 4× the throughput of
//! `mul_acc/scalar_reference` at 1 KiB (on pshufb-capable x86 the observed
//! ratio is far higher).  `active_kernel()` is printed so recorded numbers
//! identify the dispatched code path.

use criterion::{criterion_group, criterion_main, Criterion};
use df_gf::{kernels, Field, GF256, GF65536};

const PACKET: usize = 1024;

fn payload(salt: u8) -> Vec<u8> {
    (0..PACKET)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(salt))
        .collect()
}

fn gf8_mul_acc(c: &mut Criterion) {
    println!("dispatched kernel: {}", kernels::active_kernel());
    let src = payload(1);
    let mut dst = payload(2);
    let coeff = 0x8eu8;

    let mut group = c.benchmark_group("mul_acc_1KiB");
    group.sample_size(50);
    group.bench_function("scalar_reference", |b| {
        b.iter(|| kernels::scalar::mul_acc_slice(coeff, &mut dst, &src))
    });
    group.bench_function("swar", |b| {
        b.iter(|| kernels::swar::mul_acc_slice(coeff, &mut dst, &src))
    });
    group.bench_function(&format!("auto_{}", kernels::active_kernel()), |b| {
        b.iter(|| kernels::mul_acc_slice(coeff, &mut dst, &src))
    });
    group.bench_function("field_entry_point", |b| {
        b.iter(|| GF256::mul_acc_slice(GF256(coeff), &mut dst, &src))
    });
    group.finish();
}

fn gf8_mul(c: &mut Criterion) {
    let mut data = payload(3);
    let coeff = 0x53u8;
    let mut group = c.benchmark_group("mul_1KiB");
    group.sample_size(50);
    group.bench_function("scalar_reference", |b| {
        b.iter(|| kernels::scalar::mul_slice(coeff, &mut data))
    });
    group.bench_function(&format!("auto_{}", kernels::active_kernel()), |b| {
        b.iter(|| kernels::mul_slice(coeff, &mut data))
    });
    group.finish();
}

fn xor(c: &mut Criterion) {
    let src = payload(4);
    let mut dst = payload(5);
    let mut group = c.benchmark_group("xor_1KiB");
    group.sample_size(50);
    group.bench_function("xor_slice", |b| {
        b.iter(|| df_gf::field::xor_slice(&mut dst, &src))
    });
    group.finish();
}

fn gf16_mul_acc(c: &mut Criterion) {
    println!("dispatched gf16 kernel: {}", kernels::gf16::active_kernel());
    let src = payload(6);
    let mut dst = payload(7);
    let coeff = 0x1234u16;
    let mut group = c.benchmark_group("gf16_mul_acc_1KiB");
    group.sample_size(50);
    group.bench_function("scalar_reference", |b| {
        b.iter(|| kernels::gf16::scalar::mul_acc_slice(coeff, &mut dst, &src))
    });
    group.bench_function("split_byte_tables", |b| {
        b.iter(|| kernels::gf16::split_byte::mul_acc_slice(coeff, &mut dst, &src))
    });
    group.bench_function("swar", |b| {
        b.iter(|| kernels::gf16::swar::mul_acc_slice(coeff, &mut dst, &src))
    });
    group.bench_function(&format!("auto_{}", kernels::gf16::active_kernel()), |b| {
        b.iter(|| kernels::gf16::mul_acc_slice(coeff, &mut dst, &src))
    });
    group.bench_function("field_entry_point", |b| {
        b.iter(|| GF65536::mul_acc_slice(GF65536(coeff), &mut dst, &src))
    });
    group.finish();
}

fn gf16_mul(c: &mut Criterion) {
    let mut data = payload(8);
    let coeff = 0xabcdu16;
    let mut group = c.benchmark_group("gf16_mul_1KiB");
    group.sample_size(50);
    group.bench_function("split_byte_tables", |b| {
        b.iter(|| kernels::gf16::split_byte::mul_slice(coeff, &mut data))
    });
    group.bench_function(&format!("auto_{}", kernels::gf16::active_kernel()), |b| {
        b.iter(|| kernels::gf16::mul_slice(coeff, &mut data))
    });
    group.finish();
}

criterion_group!(benches, gf8_mul_acc, gf8_mul, xor, gf16_mul_acc, gf16_mul);
criterion_main!(benches);
