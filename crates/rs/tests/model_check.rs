//! Exhaustive model-check of [`df_rs::cache::InverseCache`] under the `loom`
//! shim (`shims/loom`): every interleaving of the insert/evict/hit protocol at
//! the capacity boundary, not the random sample `cache_stress.rs` takes.
//!
//! Build and run with `RUSTFLAGS="--cfg df_check" cargo test -p df-rs --test
//! model_check` — the CI `model-check` job does exactly this.  Under that cfg
//! the cache's `Arc`/`RwLock` resolve to the loom shim via `df_rs::sync`, so
//! each lock acquire/release is a schedule point the checker enumerates.
//!
//! Flake guard: every test sets an explicit `max_branches` cap so a state-space
//! blow-up fails loudly ("exploration truncated") instead of hanging CI, and
//! asserts via `explored()` that the cap was not even approached.
#![cfg(df_check)]

use df_gf::{Matrix, GF256};
use df_rs::cache::InverseCache;
use loom::model::Builder;
use loom::thread;

/// k=2 invertible matrix for pattern `tag`: distinct Vandermonde points keyed
/// off the tag so different patterns cache different values.
fn submatrix(tag: u8) -> Matrix<GF256> {
    let points = [
        GF256(tag.wrapping_mul(2) + 1),
        GF256(tag.wrapping_mul(2) + 2),
    ];
    Matrix::vandermonde(&points, 2)
}

fn build(tag: u8) -> Matrix<GF256> {
    submatrix(tag).inverse().unwrap()
}

/// The identity check a decode would perform: cached inverse times the
/// original submatrix must be I, whatever interleaving produced the entry.
fn assert_is_inverse(tag: u8, inv: &Matrix<GF256>) {
    assert!(
        inv.mul(&submatrix(tag)).unwrap().is_identity(),
        "cached matrix for pattern {tag} is not the inverse"
    );
}

fn checked(max_branches: usize, f: impl Fn() + Send + Sync + 'static) {
    let explored = Builder {
        max_branches,
        ..Builder::new()
    }
    .explored(f);
    // Flake guard: if the state space creeps toward the cap, fail while the
    // run is still fast rather than when it starts truncating.
    assert!(
        explored <= max_branches / 2,
        "state space grew to {explored} schedules (cap {max_branches}); \
         shrink the test or justify a bigger cap"
    );
}

/// Two threads miss on the *same* pattern: both may build (benign
/// double-build is part of the contract), both must get a correct inverse,
/// and exactly one entry remains.
#[test]
fn concurrent_misses_on_one_pattern_agree() {
    checked(2_000, || {
        let cache = InverseCache::<GF256>::with_cap(2);
        let c2 = cache.clone();
        let t = thread::spawn(move || {
            let inv = c2.get_or_build(&[0, 1], || Ok(build(7))).unwrap();
            assert_is_inverse(7, &inv);
        });
        let inv = cache.get_or_build(&[0, 1], || Ok(build(7))).unwrap();
        assert_is_inverse(7, &inv);
        t.join().unwrap();
        assert_eq!(cache.len(), 1);
    });
}

/// Insert/evict race at the capacity boundary (`cap = 1`): one thread's
/// insert of pattern B wholesale-evicts the prefilled pattern A while another
/// thread is reading A.  The reader must either hit A's entry or rebuild it —
/// never observe a torn or wrong matrix — and the cache never exceeds cap.
#[test]
fn eviction_race_keeps_entries_correct() {
    checked(4_000, || {
        let cache = InverseCache::<GF256>::with_cap(1);
        // Prefill pattern A (no concurrency yet — loom explores from here).
        cache.get_or_build(&[0, 1], || Ok(build(1))).unwrap();
        let c2 = cache.clone();
        let t = thread::spawn(move || {
            // Pattern B's insert hits the cap and clears the map.
            let inv = c2.get_or_build(&[1, 2], || Ok(build(2))).unwrap();
            assert_is_inverse(2, &inv);
        });
        // Concurrent lookup of A: hit before the eviction or rebuild after.
        let inv = cache.get_or_build(&[0, 1], || Ok(build(1))).unwrap();
        assert_is_inverse(1, &inv);
        t.join().unwrap();
        assert!(cache.len() <= 1, "cache overflowed its capacity");
        assert!(!cache.is_empty(), "both inserts lost");
    });
}

/// An `Arc` handed out by a hit stays valid across a concurrent eviction:
/// the reader grabs A, the evictor clears the map, the reader's matrix must
/// still verify.  Also checks two distinct patterns under cap 2 never evict.
#[test]
fn held_arc_survives_eviction_and_cap_two_fits_both() {
    checked(4_000, || {
        let cache = InverseCache::<GF256>::with_cap(2);
        let c2 = cache.clone();
        let t = thread::spawn(move || {
            let inv = c2.get_or_build(&[2, 3], || Ok(build(9))).unwrap();
            assert_is_inverse(9, &inv);
        });
        let inv = cache.get_or_build(&[0, 1], || Ok(build(4))).unwrap();
        t.join().unwrap();
        // Both patterns fit under cap 2: no eviction, both entries live.
        assert_eq!(cache.len(), 2);
        assert_is_inverse(4, &inv);
    });
}
