//! Multi-thread stress of the shared Vandermonde inverse-decode cache.
//!
//! The cache (`InverseCache`: `Arc<RwLock<HashMap<pattern, Arc<Matrix>>>>`,
//! read-lock hit path, capacity 8, wholesale eviction, inversion built
//! *outside* any lock) is the
//! one piece of cross-thread shared state in the codec today, and exactly the
//! shape the ROADMAP's multi-core sharding will multiply.  This test hammers
//! it from 8 threads so ThreadSanitizer (CI `sanitizers` job) gets real
//! concurrent coverage: more distinct index patterns than the cache holds
//! (constant eviction + rebuild races), periodic rounds where every thread
//! decodes the *same* pattern (insert/lookup contention on one key, shared
//! `Arc<Matrix>` reads), and correctness asserted on every decode.
//!
//! Flake guard: everything is deterministic — fixed seed, fixed thread and
//! round counts, pattern choice a pure function of `(thread, round)` — so the
//! TSan job's wall-clock is bounded and a failure always reproduces.

use std::sync::Arc;

use df_rs::{ErasureCode, VandermondeCode};

const THREADS: usize = 8;
const ROUNDS: usize = 48;
const PACKET_LEN: usize = 64;
const SEED: u64 = 0x5EED_CAFE_0BB1_E5ED;

/// Deterministic payload bytes (xorshift64*), so decode results are checkable
/// without any RNG crate in the loop.
fn seeded_payload(mut state: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

/// The k received indices thread `t` uses in round `r`: a rotating window of
/// `(start..start+k) mod n`.  With `n - k + n` > cache capacity the cache
/// evicts constantly, and every 4th round all threads share one window so the
/// same key is looked up, inserted and read concurrently.
fn pattern(t: usize, r: usize, k: usize, n: usize) -> Vec<usize> {
    let start = if r.is_multiple_of(4) {
        r % n
    } else {
        (t * 5 + r) % n
    };
    let mut idx: Vec<usize> = (0..k).map(|i| (start + i) % n).collect();
    idx.sort_unstable();
    idx
}

fn stress<C: ErasureCode + Send + Sync + 'static>(code: C, label: &str) {
    let k = code.k();
    let n = code.n();
    let source: Vec<Vec<u8>> = (0..k)
        .map(|i| seeded_payload(SEED.wrapping_add(i as u64), PACKET_LEN))
        .collect();
    let packets = Arc::new(code.encode(&source).unwrap());
    let source = Arc::new(source);
    let code = Arc::new(code);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let code = Arc::clone(&code);
            let packets = Arc::clone(&packets);
            let source = Arc::clone(&source);
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    let received: Vec<(usize, Vec<u8>)> = pattern(t, r, k, n)
                        .into_iter()
                        .map(|i| (i, packets[i].clone()))
                        .collect();
                    let decoded = code.decode(&received).unwrap();
                    assert_eq!(decoded, *source, "{label}: thread {t} round {r}");
                }
            });
        }
    });
}

#[test]
fn eight_threads_hammer_the_gf256_inverse_cache() {
    stress(VandermondeCode::new(8, 16).unwrap(), "gf256 k=8 n=16");
}

#[test]
fn eight_threads_hammer_the_gf65536_inverse_cache() {
    // Smaller k: the GF(2^16) inversion is pricier, and this keeps the TSan
    // run's wall-clock bounded while still racing the same cache code.
    stress(
        VandermondeCode::new_large(6, 12).unwrap(),
        "gf65536 k=6 n=12",
    );
}
