//! Cauchy Reed–Solomon erasure code (Blömer et al., "An XOR-Based
//! Erasure-Resilient Coding Scheme", ICSI TR-95-048) — the "Cauchy" column of
//! Tables 2 and 3 in the paper.
//!
//! The code is systematic by construction: encoding packets `0..k` are the
//! source packets, and redundant packet `k + r` is the field-linear
//! combination of the source packets with coefficients from row `r` of a
//! Cauchy matrix `C[r][c] = 1 / (x_r + y_c)` over disjoint point sets `x`
//! and `y`.  Every square submatrix of a Cauchy matrix is invertible, which
//! gives the MDS ("any k of n") property.
//!
//! Two implementation choices matter for scale, because the paper benchmarks
//! this code on whole files up to 16 MB (k up to 16 384 one-kilobyte packets):
//!
//! * coefficients are computed **on the fly** from the point sets rather than
//!   materialising the `ℓ × k` generator (which would be gigabytes for large
//!   files), and
//! * the decode linear system is solved with the **closed-form Cauchy matrix
//!   inverse**, so recovering `x` missing source packets costs `O(x²)` field
//!   operations for the matrix plus `O(k · x)` multiply-accumulates per packet
//!   byte — the `k(1 + x)P` decode cost the paper lists in Table 1 — instead
//!   of a general `O(k³)` Gaussian elimination.
//!
//! The original Blömer et al. scheme additionally expands field elements into
//! bit matrices so encoding uses only word XORs; that changes constant
//! factors, not asymptotics, and is noted as a substitution in DESIGN.md.

use crate::code::{check_received, check_source, reset_copy, reset_zeroed, ErasureCode, RsError};
use df_gf::{Field, GF256, GF65536};

/// A systematic Cauchy Reed–Solomon erasure code.
///
/// Defaults to GF(2^8) (`n ≤ 256`); use [`CauchyCode::new_large`] /
/// [`CauchyCode::with_field`] for bigger codes over GF(2^16).
#[derive(Debug, Clone)]
pub struct CauchyCode<F: Field = GF256> {
    k: usize,
    n: usize,
    /// Row points, one per redundant packet (`ℓ = n - k` of them).
    x: Vec<F>,
    /// Column points, one per source packet (`k` of them), disjoint from `x`.
    y: Vec<F>,
}

impl CauchyCode<GF256> {
    /// Create a code with `k` source packets and `n` total encoding packets
    /// over GF(2^8).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] unless `0 < k ≤ n ≤ 256`.
    pub fn new(k: usize, n: usize) -> Result<Self, RsError> {
        Self::with_field(k, n)
    }
}

impl CauchyCode<GF65536> {
    /// Create a code over GF(2^16) supporting up to 65 536 encoding packets.
    ///
    /// This is the variant the whole-file benchmarks (Tables 2 and 3) use for
    /// files larger than 255 packets.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] unless `0 < k ≤ n ≤ 65 536`.
    pub fn new_large(k: usize, n: usize) -> Result<Self, RsError> {
        Self::with_field(k, n)
    }
}

impl<F: Field> CauchyCode<F> {
    /// Create a code over an explicit field `F`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] if `k = 0`, `k > n`, or
    /// `n > |F|` (the construction needs `n` distinct field points).
    pub fn with_field(k: usize, n: usize) -> Result<Self, RsError> {
        if k == 0 || k > n {
            return Err(RsError::InvalidParameters {
                reason: format!("need 0 < k <= n, got k = {k}, n = {n}"),
            });
        }
        let ell = n - k;
        if n > F::ORDER {
            return Err(RsError::InvalidParameters {
                reason: format!("n = {n} exceeds field order {}", F::ORDER),
            });
        }
        // Disjoint point sets: rows use {0..ℓ}, columns use {ℓ..ℓ+k}.
        let x: Vec<F> = (0..ell).map(F::from_usize).collect();
        let y: Vec<F> = (ell..ell + k).map(F::from_usize).collect();
        Ok(CauchyCode { k, n, x, y })
    }

    /// Coefficient of source packet `col` in redundant packet `row`
    /// (`row < ℓ`, `col < k`).
    #[inline]
    fn coeff(&self, row: usize, col: usize) -> F {
        (self.x[row] + self.y[col])
            .inverse()
            .expect("x and y point sets are disjoint by construction")
    }

    /// Solve the `x × x` Cauchy system `C_sub · m = b` for the missing source
    /// packets using the closed-form Cauchy inverse, writing each recovered
    /// payload directly into its final slot `out[cols[i]]` (buffers reused).
    ///
    /// `rows` are indices into `self.x` (which redundant packets we use),
    /// `cols` are the missing source indices (into both `self.y` and `out`),
    /// and `b` holds one partially-reduced payload per row.
    fn solve_cauchy(
        &self,
        rows: &[usize],
        cols: &[usize],
        b: &[Vec<u8>],
        len: usize,
        out: &mut [Vec<u8>],
    ) {
        let m = rows.len();
        debug_assert_eq!(cols.len(), m);
        debug_assert_eq!(b.len(), m);
        let xs: Vec<F> = rows.iter().map(|&r| self.x[r]).collect();
        let ys: Vec<F> = cols.iter().map(|&c| self.y[c]).collect();

        // Closed-form inverse of the Cauchy matrix A[j][i] = 1/(xs[j] + ys[i]):
        //   (A^{-1})[i][j] = (Π_p (xs[j]+ys[p]) · Π_p (xs[p]+ys[i]))
        //                    / ((xs[j]+ys[i]) · Π_{p≠j}(xs[j]+xs[p]) · Π_{p≠i}(ys[i]+ys[p]))
        // All products are over p in 0..m.  In characteristic 2, + and − agree.
        let mut row_cross = vec![F::ONE; m]; // Π_p (xs[j] + ys[p]) for each j
        let mut col_cross = vec![F::ONE; m]; // Π_p (xs[p] + ys[i]) for each i
        for j in 0..m {
            for &y in &ys {
                row_cross[j] *= xs[j] + y;
            }
        }
        for i in 0..m {
            for &x in &xs {
                col_cross[i] *= x + ys[i];
            }
        }
        let mut row_self = vec![F::ONE; m]; // Π_{p≠j} (xs[j] + xs[p])
        let mut col_self = vec![F::ONE; m]; // Π_{p≠i} (ys[i] + ys[p])
        for j in 0..m {
            for p in 0..m {
                if p != j {
                    row_self[j] *= xs[j] + xs[p];
                }
            }
        }
        for i in 0..m {
            for p in 0..m {
                if p != i {
                    col_self[i] *= ys[i] + ys[p];
                }
            }
        }

        for i in 0..m {
            let target = &mut out[cols[i]];
            reset_zeroed(target, len);
            for j in 0..m {
                let num = row_cross[j] * col_cross[i];
                let den = (xs[j] + ys[i]) * row_self[j] * col_self[i];
                let inv_entry = num
                    * den
                        .inverse()
                        .expect("denominator factors are nonzero for distinct points");
                if inv_entry.is_zero() {
                    continue;
                }
                F::mul_acc_slice(inv_entry, target, &b[j]);
            }
        }
    }
}

impl<F: Field> ErasureCode for CauchyCode<F> {
    fn k(&self) -> usize {
        self.k
    }

    fn n(&self) -> usize {
        self.n
    }

    fn encode_into(&self, source: &[Vec<u8>], out: &mut Vec<Vec<u8>>) -> Result<(), RsError> {
        let len = check_source(source, self.k)?;
        if F::BITS == 16 && len % 2 != 0 {
            return Err(RsError::MalformedInput {
                reason: "GF(2^16) codes require even packet lengths".to_string(),
            });
        }
        out.resize_with(self.n, Vec::new);
        let (systematic, redundant) = out.split_at_mut(self.k);
        for (slot, pkt) in systematic.iter_mut().zip(source) {
            reset_copy(slot, pkt);
        }
        for (r, acc) in redundant.iter_mut().enumerate() {
            reset_zeroed(acc, len);
            for (c, pkt) in source.iter().enumerate() {
                F::mul_acc_slice(self.coeff(r, c), acc, pkt);
            }
        }
        Ok(())
    }

    fn decode_into(
        &self,
        received: &[(usize, &[u8])],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), RsError> {
        let (picked, len) = check_received(received, self.k, self.n)?;
        if F::BITS == 16 && len % 2 != 0 {
            return Err(RsError::MalformedInput {
                reason: "GF(2^16) codes require even packet lengths".to_string(),
            });
        }
        out.resize_with(self.k, Vec::new);
        let mut have_source = vec![false; self.k];
        let mut redundant: Vec<(usize, &[u8])> = Vec::new();
        for &(idx, payload) in &picked {
            if idx < self.k {
                have_source[idx] = true;
                reset_copy(&mut out[idx], payload);
            } else {
                redundant.push((idx - self.k, payload));
            }
        }
        let missing: Vec<usize> = (0..self.k).filter(|&i| !have_source[i]).collect();
        if missing.is_empty() {
            return Ok(());
        }
        // `picked` contains exactly k distinct packets, so the number of
        // redundant packets equals the number of missing source packets.
        debug_assert_eq!(redundant.len(), missing.len());
        let rows: Vec<usize> = redundant.iter().map(|(r, _)| *r).collect();

        // Reduce each used redundant packet by the contribution of the source
        // packets we already hold:  b_j = red_j  ⊕  Σ_{c received} C[r_j][c]·src_c.
        let mut b: Vec<Vec<u8>> = Vec::with_capacity(rows.len());
        for &(r, payload) in &redundant {
            let mut acc = payload.to_vec();
            for c in 0..self.k {
                if have_source[c] {
                    F::mul_acc_slice(self.coeff(r, c), &mut acc, &out[c]);
                }
            }
            b.push(acc);
        }
        self.solve_cauchy(&rows, &missing, &b, len, out);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "cauchy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn random_source(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(CauchyCode::new(0, 1).is_err());
        assert!(CauchyCode::new(3, 2).is_err());
        assert!(CauchyCode::new(200, 300).is_err());
        assert!(CauchyCode::new(128, 256).is_ok());
        assert!(CauchyCode::<GF65536>::new_large(20_000, 40_000).is_ok());
        assert!(CauchyCode::<GF65536>::new_large(40_000, 70_000).is_err());
    }

    #[test]
    fn construction_at_field_order_boundary_round_trips() {
        // n equal to the field order uses every field point exactly once for
        // the disjoint x/y sets; `from_usize` asserts rather than wrapping,
        // so any aliasing bug panics instead of breaking MDS silently.
        let code = CauchyCode::new(128, 256).unwrap();
        let src = random_source(128, 8, 77);
        let enc = code.encode(&src).unwrap();
        let rx: Vec<(usize, Vec<u8>)> = (128..256).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&rx).unwrap(), src);

        let large = CauchyCode::<GF65536>::new_large(2, 65_536).unwrap();
        let src = random_source(2, 6, 78);
        let enc2 = large.encode(&src).unwrap();
        let rx: Vec<(usize, Vec<u8>)> = [65_535usize, 1]
            .iter()
            .map(|&i| (i, enc2[i].clone()))
            .collect();
        assert_eq!(large.decode(&rx).unwrap(), src);
    }

    #[test]
    fn rate_one_code_is_passthrough() {
        let code = CauchyCode::new(3, 3).unwrap();
        let src = random_source(3, 10, 0);
        let enc = code.encode(&src).unwrap();
        assert_eq!(enc, src);
        let rx: Vec<(usize, Vec<u8>)> = enc.iter().cloned().enumerate().collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn systematic_prefix_is_source() {
        let code = CauchyCode::new(4, 9).unwrap();
        let src = random_source(4, 50, 1);
        let enc = code.encode(&src).unwrap();
        assert_eq!(&enc[..4], &src[..]);
        assert_eq!(enc.len(), 9);
    }

    #[test]
    fn stretch_factor_two_recovers_from_half_loss() {
        // The paper's canonical configuration: n = 2k, half the packets lost.
        let k = 32;
        let code = CauchyCode::new(k, 2 * k).unwrap();
        let src = random_source(k, 128, 2);
        let enc = code.encode(&src).unwrap();
        // Receive exactly the odd-indexed packets (half source, half redundant).
        let rx: Vec<(usize, Vec<u8>)> = (0..2 * k)
            .filter(|i| i % 2 == 1)
            .map(|i| (i, enc[i].clone()))
            .collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn decode_only_redundant_packets() {
        let k = 10;
        let code = CauchyCode::new(k, 2 * k).unwrap();
        let src = random_source(k, 33, 3);
        let enc = code.encode(&src).unwrap();
        let rx: Vec<(usize, Vec<u8>)> = (k..2 * k).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn wrong_packet_count_rejected() {
        let code = CauchyCode::new(4, 8).unwrap();
        let src = random_source(3, 8, 4);
        assert!(matches!(
            code.encode(&src),
            Err(RsError::MalformedInput { .. })
        ));
    }

    #[test]
    fn duplicate_indices_do_not_count_twice() {
        let code = CauchyCode::new(4, 8).unwrap();
        let src = random_source(4, 8, 5);
        let enc = code.encode(&src).unwrap();
        let rx = vec![
            (0usize, enc[0].clone()),
            (0, enc[0].clone()),
            (1, enc[1].clone()),
            (2, enc[2].clone()),
        ];
        assert_eq!(
            code.decode(&rx),
            Err(RsError::NotEnoughPackets { have: 3, need: 4 })
        );
    }

    #[test]
    fn gf16_large_block_roundtrip() {
        // A block larger than GF(2^8) could address, exercising the GF(2^16)
        // path used by the whole-file benchmarks.
        let k = 400;
        let code = CauchyCode::new_large(k, 2 * k).unwrap();
        let src = random_source(k, 16, 6);
        let enc = code.encode(&src).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut idx: Vec<usize> = (0..2 * k).collect();
        idx.shuffle(&mut rng);
        let rx: Vec<(usize, Vec<u8>)> = idx[..k].iter().map(|&i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn encode_into_and_decode_into_reuse_buffers() {
        let code = CauchyCode::new(8, 16).unwrap();
        let mut encoded = Vec::new();
        let mut decoded = Vec::new();
        // Seed the reused buffers with stale content of a *different* shape to
        // prove each call fully overwrites what it needs.
        decoded.push(vec![0xeeu8; 999]);
        for seed in 0..3u64 {
            let src = random_source(8, 64, seed);
            code.encode_into(&src, &mut encoded).unwrap();
            assert_eq!(encoded.len(), 16);
            assert_eq!(&encoded[..8], &src[..]);
            let refs: Vec<(usize, &[u8])> = (4..12).map(|i| (i, encoded[i].as_slice())).collect();
            code.decode_into(&refs, &mut decoded).unwrap();
            assert_eq!(decoded, src, "seed {seed}");
        }
    }

    #[test]
    fn decode_ref_matches_decode() {
        let code = CauchyCode::new(5, 10).unwrap();
        let src = random_source(5, 40, 9);
        let enc = code.encode(&src).unwrap();
        let owned: Vec<(usize, Vec<u8>)> = (5..10).map(|i| (i, enc[i].clone())).collect();
        let refs: Vec<(usize, &[u8])> = owned.iter().map(|(i, p)| (*i, p.as_slice())).collect();
        assert_eq!(
            code.decode(&owned).unwrap(),
            code.decode_ref(&refs).unwrap()
        );
    }

    #[test]
    fn names_distinguish_codes() {
        assert_eq!(CauchyCode::new(2, 4).unwrap().name(), "cauchy");
        assert_eq!(
            crate::VandermondeCode::new(2, 4).unwrap().name(),
            "vandermonde"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// MDS property for the Cauchy construction.
        #[test]
        fn prop_any_k_of_n_decodes(
            k in 1usize..12,
            extra in 0usize..12,
            len in 1usize..40,
            seed in any::<u64>(),
        ) {
            let n = k + extra;
            let code = CauchyCode::new(k, n).unwrap();
            let src = random_source(k, len, seed);
            let enc = code.encode(&src).unwrap();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xbeef);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            let rx: Vec<(usize, Vec<u8>)> = idx[..k].iter().map(|&i| (i, enc[i].clone())).collect();
            prop_assert_eq!(code.decode(&rx).unwrap(), src);
        }

        /// Vandermonde and Cauchy codes agree on the reconstruction (both are
        /// exact: the decoded source must equal the original regardless of
        /// which code produced the redundancy).
        #[test]
        fn prop_codes_agree_on_source(
            k in 2usize..8,
            seed in any::<u64>(),
        ) {
            let n = 2 * k;
            let src = random_source(k, 16, seed);
            for code in [&CauchyCode::new(k, n).unwrap() as &dyn ErasureCode,
                         &crate::VandermondeCode::new(k, n).unwrap() as &dyn ErasureCode] {
                let enc = code.encode(&src).unwrap();
                let rx: Vec<(usize, Vec<u8>)> = (k..2 * k).map(|i| (i, enc[i].clone())).collect();
                prop_assert_eq!(code.decode(&rx).unwrap(), src.clone());
            }
        }
    }
}
