//! Reed–Solomon erasure codes — the baseline codes of the paper's evaluation.
//!
//! The paper compares Tornado codes against two standard Reed–Solomon erasure
//! code implementations (Section 5.2, Tables 2 and 3):
//!
//! * **Vandermonde codes** — Rizzo-style systematic codes built from a
//!   Vandermonde generator matrix brought to systematic form
//!   ([`VandermondeCode`]).
//! * **Cauchy codes** — Blömer et al.'s construction where the redundant rows
//!   form a Cauchy matrix, which is systematic by construction
//!   ([`CauchyCode`]).
//!
//! Both are *maximum distance separable* (MDS): the `k` source packets can be
//! reconstructed from **any** `k` of the `n` encoding packets — zero reception
//! overhead, which is the gold standard a digital fountain aims for.  The
//! price is the `O(k·ℓ)` field multiplications per packet byte at encode time
//! and the `O(k·x)` (x = missing source packets) work plus a matrix inversion
//! at decode time, which is exactly the cost the paper's Tables 2–4 quantify
//! and that Tornado codes avoid.
//!
//! # Example
//!
//! ```
//! use df_rs::{CauchyCode, ErasureCode};
//!
//! // Stretch 4 source packets to 8 encoding packets (stretch factor 2).
//! let code = CauchyCode::new(4, 8).unwrap();
//! let source: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
//! let encoding = code.encode(&source).unwrap();
//!
//! // Lose half the packets — any 4 survivors are enough.
//! let received: Vec<(usize, Vec<u8>)> = [6, 1, 7, 2]
//!     .iter()
//!     .map(|&i| (i, encoding[i].clone()))
//!     .collect();
//! let decoded = code.decode(&received).unwrap();
//! assert_eq!(decoded, source);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared inverse-submatrix cache; public under `--cfg df_check` so the
/// model-check suite (`tests/model_check.rs`) can drive it directly.
#[cfg(df_check)]
pub mod cache;
#[cfg(not(df_check))]
pub(crate) mod cache;
pub mod cauchy;
pub mod code;
pub(crate) mod sync;
pub mod vandermonde;

pub use cauchy::CauchyCode;
pub use code::{ErasureCode, RsError};
pub use vandermonde::VandermondeCode;
