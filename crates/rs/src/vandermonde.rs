//! Rizzo-style systematic Vandermonde Reed–Solomon erasure code.
//!
//! The generator matrix starts as an `n x k` Vandermonde matrix over distinct
//! evaluation points and is brought to systematic form by multiplying with the
//! inverse of its top `k x k` block (exactly the construction in Rizzo,
//! "Effective Erasure Codes for Reliable Computer Communication Protocols",
//! CCR 1997, which the paper benchmarks as the "Vandermonde" column of
//! Tables 2 and 3).
//!
//! Encoding cost is `O(k · ℓ)` field multiplications per packet byte; decoding
//! requires inverting a `k x k` matrix and then `O(k · x)` multiplications per
//! byte where `x` is the number of missing source packets — the costs the
//! paper summarises in Table 1.

use crate::cache::InverseCache;
use crate::code::{check_received, check_source, reset_copy, reset_zeroed, ErasureCode, RsError};
use df_gf::{Field, Matrix, GF256, GF65536};

/// Shared implementation for generator-matrix-based systematic MDS codes.
///
/// Both [`VandermondeCode`] and [`crate::CauchyCode`] delegate to this: they
/// differ only in how the generator matrix is constructed.
#[derive(Debug, Clone)]
pub(crate) struct MatrixCode<F: Field> {
    pub(crate) k: usize,
    pub(crate) n: usize,
    /// Systematic `n x k` generator matrix: row `j` holds the coefficients of
    /// encoding packet `j` as a combination of the `k` source packets.
    generator: Matrix<F>,
    /// Inverted decode submatrices of recently seen erasure patterns.
    inverse_cache: InverseCache<F>,
}

impl<F: Field> MatrixCode<F> {
    pub(crate) fn from_generator(k: usize, n: usize, generator: Matrix<F>) -> Self {
        debug_assert_eq!(generator.rows(), n);
        debug_assert_eq!(generator.cols(), k);
        MatrixCode {
            k,
            n,
            generator,
            inverse_cache: InverseCache::new(),
        }
    }

    pub(crate) fn encode_into(
        &self,
        source: &[Vec<u8>],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), RsError> {
        let len = check_source(source, self.k)?;
        if F::BITS == 16 && len % 2 != 0 {
            return Err(RsError::MalformedInput {
                reason: "GF(2^16) codes require even packet lengths".to_string(),
            });
        }
        out.resize_with(self.n, Vec::new);
        let (systematic, redundant) = out.split_at_mut(self.k);
        // Systematic prefix: source packets are passed through untouched.
        for (slot, pkt) in systematic.iter_mut().zip(source) {
            reset_copy(slot, pkt);
        }
        for (j, acc) in (self.k..self.n).zip(redundant.iter_mut()) {
            let row = self.generator.row(j);
            reset_zeroed(acc, len);
            for (i, coeff) in row.iter().enumerate() {
                if coeff.is_zero() {
                    continue;
                }
                F::mul_acc_slice(*coeff, acc, &source[i]);
            }
        }
        Ok(())
    }

    pub(crate) fn decode_into(
        &self,
        received: &[(usize, &[u8])],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), RsError> {
        let (picked, len) = check_received(received, self.k, self.n)?;
        if F::BITS == 16 && len % 2 != 0 {
            return Err(RsError::MalformedInput {
                reason: "GF(2^16) codes require even packet lengths".to_string(),
            });
        }
        // Which source packets arrived verbatim?
        let mut have_source = vec![false; self.k];
        out.resize_with(self.k, Vec::new);
        for &(idx, payload) in &picked {
            if idx < self.k {
                have_source[idx] = true;
                reset_copy(&mut out[idx], payload);
            }
        }
        let missing: Vec<usize> = (0..self.k).filter(|&i| !have_source[i]).collect();
        if missing.is_empty() {
            return Ok(());
        }
        // Solve for the missing source packets: the received rows of the
        // generator, restricted to the k picked packets, form an invertible
        // k x k system A * source = received.  source = A^{-1} * received.
        // The inverse depends only on *which* packets arrived, so it is
        // cached per erasure pattern — a receiver that decodes repeatedly
        // behind a stable loss pattern (the carousel case the paper's decode
        // benchmarks model) pays the O(k³) inversion once, not per call.
        let rows: Vec<usize> = picked.iter().map(|(idx, _)| *idx).collect();
        let a_inv = self.inverse_cache.get_or_build(&rows, || {
            self.generator
                .select_rows(&rows)
                .inverse()
                .map_err(|_| RsError::DecodeFailure)
        })?;
        for &mi in &missing {
            let acc = &mut out[mi];
            reset_zeroed(acc, len);
            for (col, &(_, payload)) in picked.iter().enumerate() {
                let coeff = a_inv[(mi, col)];
                if coeff.is_zero() {
                    continue;
                }
                F::mul_acc_slice(coeff, acc, payload);
            }
        }
        Ok(())
    }
}

/// A systematic Vandermonde Reed–Solomon erasure code over GF(2^8) by default
/// (`n ≤ 256`) or GF(2^16) via [`VandermondeCode::with_field`] for larger
/// codes such as whole-file encodings.
#[derive(Debug, Clone)]
pub struct VandermondeCode<F: Field = GF256> {
    inner: MatrixCode<F>,
}

impl VandermondeCode<GF256> {
    /// Create a code with `k` source packets and `n` total encoding packets
    /// over GF(2^8).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] unless `0 < k ≤ n ≤ 256`.
    pub fn new(k: usize, n: usize) -> Result<Self, RsError> {
        Self::with_field(k, n)
    }
}

impl VandermondeCode<GF65536> {
    /// Create a code over GF(2^16), supporting up to 65 536 encoding packets.
    ///
    /// This is what the paper's whole-file Vandermonde baseline needs for
    /// multi-megabyte files (Table 2/3 sizes above 250 KB with 1 KB packets).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] unless `0 < k ≤ n ≤ 65 536`.
    pub fn new_large(k: usize, n: usize) -> Result<Self, RsError> {
        Self::with_field(k, n)
    }
}

impl<F: Field> VandermondeCode<F> {
    /// Create a code over an explicit field `F`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] if `k = 0`, `k > n`, or `n`
    /// exceeds the field order.
    pub fn with_field(k: usize, n: usize) -> Result<Self, RsError> {
        if k == 0 || k > n {
            return Err(RsError::InvalidParameters {
                reason: format!("need 0 < k <= n, got k = {k}, n = {n}"),
            });
        }
        if n > F::ORDER {
            return Err(RsError::InvalidParameters {
                reason: format!("n = {n} exceeds field order {}", F::ORDER),
            });
        }
        // Distinct evaluation points 0, 1, ..., n-1.  The top k x k block of
        // the Vandermonde matrix over distinct points is invertible, so the
        // systematic transform always succeeds.
        let points: Vec<F> = (0..n).map(F::from_usize).collect();
        let vander = Matrix::vandermonde(&points, k);
        let generator = vander
            .systematic()
            .map_err(|e| RsError::InvalidParameters {
                reason: format!("failed to build systematic generator: {e}"),
            })?;
        Ok(VandermondeCode {
            inner: MatrixCode::from_generator(k, n, generator),
        })
    }
}

impl<F: Field> ErasureCode for VandermondeCode<F> {
    fn k(&self) -> usize {
        self.inner.k
    }

    fn n(&self) -> usize {
        self.inner.n
    }

    fn encode_into(&self, source: &[Vec<u8>], out: &mut Vec<Vec<u8>>) -> Result<(), RsError> {
        self.inner.encode_into(source, out)
    }

    fn decode_into(
        &self,
        received: &[(usize, &[u8])],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), RsError> {
        self.inner.decode_into(received, out)
    }

    fn name(&self) -> &'static str {
        "vandermonde"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn random_source(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(VandermondeCode::new(0, 4).is_err());
        assert!(VandermondeCode::new(5, 4).is_err());
        assert!(VandermondeCode::new(4, 300).is_err());
        assert!(VandermondeCode::<GF65536>::with_field(4, 70_000).is_err());
    }

    #[test]
    fn systematic_prefix_is_source() {
        let code = VandermondeCode::new(5, 10).unwrap();
        let src = random_source(5, 32, 1);
        let enc = code.encode(&src).unwrap();
        assert_eq!(enc.len(), 10);
        assert_eq!(&enc[..5], &src[..]);
    }

    #[test]
    fn decodes_from_redundant_packets_only() {
        let code = VandermondeCode::new(6, 12).unwrap();
        let src = random_source(6, 100, 2);
        let enc = code.encode(&src).unwrap();
        let rx: Vec<(usize, Vec<u8>)> = (6..12).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn decodes_from_any_k_mix() {
        let code = VandermondeCode::new(8, 16).unwrap();
        let src = random_source(8, 64, 3);
        let enc = code.encode(&src).unwrap();
        let pick = [15usize, 0, 7, 9, 3, 12, 5, 11];
        let rx: Vec<(usize, Vec<u8>)> = pick.iter().map(|&i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn all_source_received_short_circuits() {
        let code = VandermondeCode::new(4, 8).unwrap();
        let src = random_source(4, 16, 4);
        let enc = code.encode(&src).unwrap();
        let rx: Vec<(usize, Vec<u8>)> = (0..4).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn too_few_packets_is_reported() {
        let code = VandermondeCode::new(4, 8).unwrap();
        let src = random_source(4, 16, 5);
        let enc = code.encode(&src).unwrap();
        let rx: Vec<(usize, Vec<u8>)> = (0..3).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(
            code.decode(&rx),
            Err(RsError::NotEnoughPackets { have: 3, need: 4 })
        );
    }

    #[test]
    fn extra_packets_are_ignored() {
        let code = VandermondeCode::new(3, 9).unwrap();
        let src = random_source(3, 24, 6);
        let enc = code.encode(&src).unwrap();
        let rx: Vec<(usize, Vec<u8>)> = (0..9).rev().map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn gf16_code_roundtrip() {
        let code = VandermondeCode::new_large(300, 600).unwrap();
        let src = random_source(300, 8, 7);
        let enc = code.encode(&src).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let mut idx: Vec<usize> = (0..600).collect();
        idx.shuffle(&mut rng);
        let rx: Vec<(usize, Vec<u8>)> = idx[..300].iter().map(|&i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&rx).unwrap(), src);
    }

    #[test]
    fn construction_at_field_order_boundary_round_trips() {
        // n equal to the field order must work: evaluation points are exactly
        // 0..n, and `from_usize` asserts rather than wrapping, so an
        // off-by-one here would panic instead of silently aliasing points.
        let code = VandermondeCode::new(3, 256).unwrap();
        let src = random_source(3, 16, 20);
        let enc = code.encode(&src).unwrap();
        assert_eq!(enc.len(), 256);
        let rx: Vec<(usize, Vec<u8>)> = [255usize, 128, 0]
            .iter()
            .map(|&i| (i, enc[i].clone()))
            .collect();
        assert_eq!(code.decode(&rx).unwrap(), src);

        let large = VandermondeCode::<GF65536>::with_field(2, 65_536).unwrap();
        let src = random_source(2, 8, 21);
        let enc = large.encode(&src).unwrap();
        let rx: Vec<(usize, Vec<u8>)> = [65_535usize, 40_000]
            .iter()
            .map(|&i| (i, enc[i].clone()))
            .collect();
        assert_eq!(large.decode(&rx).unwrap(), src);
    }

    #[test]
    fn repeated_pattern_decodes_hit_the_inverse_cache() {
        // Same erasure pattern, different payloads: the second decode reuses
        // the cached inverse and must still be exact.  Clones share the
        // cache; distinct patterns must not collide.
        let code = VandermondeCode::new(8, 16).unwrap();
        let clone = code.clone();
        for seed in 0..5u64 {
            let src = random_source(8, 64, 30 + seed);
            let enc = code.encode(&src).unwrap();
            let pattern = [15usize, 0, 7, 9, 3, 12, 5, 11];
            let rx: Vec<(usize, Vec<u8>)> = pattern.iter().map(|&i| (i, enc[i].clone())).collect();
            assert_eq!(code.decode(&rx).unwrap(), src, "seed {seed}");
            assert_eq!(clone.decode(&rx).unwrap(), src, "clone, seed {seed}");
            // A different pattern over the same encoding.
            let rx2: Vec<(usize, Vec<u8>)> = (8..16).map(|i| (i, enc[i].clone())).collect();
            assert_eq!(code.decode(&rx2).unwrap(), src, "alt pattern, seed {seed}");
        }
    }

    #[test]
    fn many_patterns_overflow_the_cache_safely() {
        // More distinct patterns than INVERSE_CACHE_CAP: eviction must not
        // affect correctness.
        let code = VandermondeCode::new(4, 16).unwrap();
        let src = random_source(4, 24, 40);
        let enc = code.encode(&src).unwrap();
        for start in 0..12usize {
            let rx: Vec<(usize, Vec<u8>)> =
                (start..start + 4).map(|i| (i, enc[i].clone())).collect();
            assert_eq!(code.decode(&rx).unwrap(), src, "pattern at {start}");
        }
    }

    #[test]
    fn gf16_rejects_odd_packet_length() {
        let code = VandermondeCode::new_large(4, 8).unwrap();
        let src = random_source(4, 7, 9);
        assert!(matches!(
            code.encode(&src),
            Err(RsError::MalformedInput { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// MDS property: any k of the n encoding packets reconstruct the file.
        #[test]
        fn prop_any_k_of_n_decodes(
            k in 1usize..12,
            extra in 0usize..12,
            len in 1usize..40,
            seed in any::<u64>(),
        ) {
            let n = k + extra;
            let code = VandermondeCode::new(k, n).unwrap();
            let src = random_source(k, len, seed);
            let enc = code.encode(&src).unwrap();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            let rx: Vec<(usize, Vec<u8>)> = idx[..k].iter().map(|&i| (i, enc[i].clone())).collect();
            prop_assert_eq!(code.decode(&rx).unwrap(), src);
        }
    }
}
