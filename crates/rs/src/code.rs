//! The [`ErasureCode`] trait and shared error type.
//!
//! Everything in the workspace that consumes a fixed-rate erasure code — the
//! interleaved baseline in `df-sim`, the final cascade level of a Tornado code
//! in `df-core`, and the benchmark harness — goes through this trait, so the
//! Vandermonde and Cauchy variants are interchangeable.

/// Errors returned by Reed–Solomon encode/decode operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// The requested code parameters are unsupported (e.g. `k > n`, or `n`
    /// exceeds what the field can address).
    InvalidParameters {
        /// Description of what was wrong with the parameters.
        reason: String,
    },
    /// The caller supplied packets whose count or lengths are inconsistent
    /// with the code parameters.
    MalformedInput {
        /// Description of the inconsistency.
        reason: String,
    },
    /// Fewer than `k` distinct packets were supplied to the decoder.
    NotEnoughPackets {
        /// How many distinct, in-range packets were available.
        have: usize,
        /// How many are required (`k`).
        need: usize,
    },
    /// The decode linear system was singular.  With distinct packet indices
    /// this cannot happen for an MDS code; it indicates corrupted input
    /// (e.g. duplicate indices after deduplication failed upstream).
    DecodeFailure,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::InvalidParameters { reason } => write!(f, "invalid code parameters: {reason}"),
            RsError::MalformedInput { reason } => write!(f, "malformed input: {reason}"),
            RsError::NotEnoughPackets { have, need } => {
                write!(f, "not enough packets to decode: have {have}, need {need}")
            }
            RsError::DecodeFailure => write!(f, "decoding linear system was singular"),
        }
    }
}

impl std::error::Error for RsError {}

/// A fixed-rate, systematic erasure code mapping `k` source packets to `n`
/// encoding packets of the same length.
///
/// Packets are byte vectors; all packets in one encode/decode call must share
/// one length `P` (the paper uses P = 1 KB for its benchmarks and 500 B in the
/// prototype).  Encoding packet indices `0..k` are the source packets
/// themselves (systematic property); indices `k..n` are redundant packets.
pub trait ErasureCode: Send + Sync {
    /// Number of source packets.
    fn k(&self) -> usize;

    /// Total number of encoding packets.
    fn n(&self) -> usize;

    /// Number of redundant packets, `n - k`.
    fn redundancy(&self) -> usize {
        self.n() - self.k()
    }

    /// Stretch factor `n / k` as used throughout the paper.
    fn stretch_factor(&self) -> f64 {
        self.n() as f64 / self.k() as f64
    }

    /// Produce the full encoding into caller-provided storage: `n` packets
    /// whose first `k` are copies of the source packets.
    ///
    /// This is the allocation-free primitive: `out` is resized to `n` entries
    /// and each entry's buffer is reused if its capacity suffices, so a
    /// carousel re-encoding files of the same shape allocates nothing after
    /// the first call.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::MalformedInput`] if the source packet count is not
    /// `k` or the packets have inconsistent lengths.
    fn encode_into(&self, source: &[Vec<u8>], out: &mut Vec<Vec<u8>>) -> Result<(), RsError>;

    /// Convenience wrapper over [`ErasureCode::encode_into`] allocating fresh
    /// output.
    ///
    /// # Errors
    ///
    /// See [`ErasureCode::encode_into`].
    fn encode(&self, source: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        let mut out = Vec::new();
        self.encode_into(source, &mut out)?;
        Ok(out)
    }

    /// Reconstruct the `k` source packets from any `k` distinct encoding
    /// packets supplied as `(encoding index, payload)` pairs, into
    /// caller-provided storage whose buffers are reused.
    ///
    /// Payloads are **borrowed**: decoding copies each payload at most once
    /// (into its final position), never to marshal the input.  Extra packets
    /// beyond `k` are ignored (the first `k` distinct in-range indices are
    /// used); duplicate indices are deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::NotEnoughPackets`] when fewer than `k` distinct
    /// packets are available and [`RsError::MalformedInput`] on inconsistent
    /// payload lengths or out-of-range indices.
    fn decode_into(
        &self,
        received: &[(usize, &[u8])],
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), RsError>;

    /// Borrowing wrapper over [`ErasureCode::decode_into`] allocating fresh
    /// output.
    ///
    /// # Errors
    ///
    /// See [`ErasureCode::decode_into`].
    fn decode_ref(&self, received: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, RsError> {
        let mut out = Vec::new();
        self.decode_into(received, &mut out)?;
        Ok(out)
    }

    /// Owned-payload wrapper over [`ErasureCode::decode_into`], kept for
    /// callers that naturally hold `(index, Vec<u8>)` pairs.
    ///
    /// # Errors
    ///
    /// See [`ErasureCode::decode_into`].
    fn decode(&self, received: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>, RsError> {
        let refs: Vec<(usize, &[u8])> = received
            .iter()
            .map(|(idx, payload)| (*idx, payload.as_slice()))
            .collect();
        self.decode_ref(&refs)
    }

    /// A short human-readable name used in benchmark tables
    /// ("vandermonde", "cauchy", ...).
    fn name(&self) -> &'static str;
}

/// Reset `buf` to `len` zero bytes, reusing its capacity.
pub(crate) fn reset_zeroed(buf: &mut Vec<u8>, len: usize) {
    buf.clear();
    buf.resize(len, 0);
}

/// Overwrite `buf` with a copy of `data`, reusing its capacity.
pub(crate) fn reset_copy(buf: &mut Vec<u8>, data: &[u8]) {
    buf.clear();
    buf.extend_from_slice(data);
}

/// Validate a batch of source packets against code parameters and return the
/// shared packet length.
pub(crate) fn check_source(source: &[Vec<u8>], k: usize) -> Result<usize, RsError> {
    if source.len() != k {
        return Err(RsError::MalformedInput {
            reason: format!("expected {k} source packets, got {}", source.len()),
        });
    }
    let len = source.first().map(|p| p.len()).unwrap_or(0);
    if len == 0 {
        return Err(RsError::MalformedInput {
            reason: "source packets must be non-empty".to_string(),
        });
    }
    if source.iter().any(|p| p.len() != len) {
        return Err(RsError::MalformedInput {
            reason: "source packets must all have the same length".to_string(),
        });
    }
    Ok(len)
}

/// Deduplicated borrowed packets plus their shared payload length, as
/// returned by [`check_received`].
pub(crate) type PickedPackets<'a> = (Vec<(usize, &'a [u8])>, usize);

/// Deduplicate received packets, validate indices/lengths, and return up to
/// `k` of them sorted by index, along with the shared payload length.
pub(crate) fn check_received<'a>(
    received: &[(usize, &'a [u8])],
    k: usize,
    n: usize,
) -> Result<PickedPackets<'a>, RsError> {
    let mut seen = vec![false; n];
    let mut picked: Vec<(usize, &'a [u8])> = Vec::with_capacity(k);
    let mut len: Option<usize> = None;
    for &(idx, payload) in received {
        if idx >= n {
            return Err(RsError::MalformedInput {
                reason: format!("packet index {idx} out of range for n = {n}"),
            });
        }
        match len {
            None => len = Some(payload.len()),
            Some(l) if l != payload.len() => {
                return Err(RsError::MalformedInput {
                    reason: "received packets must all have the same length".to_string(),
                })
            }
            _ => {}
        }
        if seen[idx] {
            continue;
        }
        seen[idx] = true;
        picked.push((idx, payload));
        if picked.len() == k {
            break;
        }
    }
    if picked.len() < k {
        return Err(RsError::NotEnoughPackets {
            have: picked.len(),
            need: k,
        });
    }
    picked.sort_by_key(|(idx, _)| *idx);
    let len = len.unwrap_or(0);
    if len == 0 {
        return Err(RsError::MalformedInput {
            reason: "received packets must be non-empty".to_string(),
        });
    }
    Ok((picked, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_rejects_wrong_count() {
        let pkts = vec![vec![1u8; 4]; 3];
        assert!(matches!(
            check_source(&pkts, 4),
            Err(RsError::MalformedInput { .. })
        ));
    }

    #[test]
    fn check_source_rejects_mixed_lengths() {
        let pkts = vec![vec![1u8; 4], vec![2u8; 5]];
        assert!(matches!(
            check_source(&pkts, 2),
            Err(RsError::MalformedInput { .. })
        ));
    }

    #[test]
    fn check_source_rejects_empty_packets() {
        let pkts = vec![vec![], vec![]];
        assert!(matches!(
            check_source(&pkts, 2),
            Err(RsError::MalformedInput { .. })
        ));
    }

    fn as_refs(rx: &[(usize, Vec<u8>)]) -> Vec<(usize, &[u8])> {
        rx.iter().map(|(i, p)| (*i, p.as_slice())).collect()
    }

    #[test]
    fn check_received_dedups_and_sorts() {
        let rx = vec![
            (3usize, vec![3u8; 2]),
            (1, vec![1u8; 2]),
            (3, vec![9u8; 2]),
            (0, vec![0u8; 2]),
        ];
        let (picked, len) = check_received(&as_refs(&rx), 3, 4).unwrap();
        assert_eq!(len, 2);
        let idxs: Vec<usize> = picked.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![0, 1, 3]);
        // The first occurrence of index 3 wins.
        assert_eq!(picked[2].1, &[3u8, 3u8]);
    }

    #[test]
    fn check_received_not_enough() {
        let rx = vec![(0usize, vec![1u8; 2]), (0, vec![1u8; 2])];
        assert_eq!(
            check_received(&as_refs(&rx), 2, 4),
            Err(RsError::NotEnoughPackets { have: 1, need: 2 })
        );
    }

    #[test]
    fn check_received_out_of_range() {
        let rx = vec![(7usize, vec![1u8; 2])];
        assert!(matches!(
            check_received(&as_refs(&rx), 1, 4),
            Err(RsError::MalformedInput { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = RsError::NotEnoughPackets { have: 3, need: 8 };
        assert!(e.to_string().contains("have 3"));
        assert!(e.to_string().contains("need 8"));
    }
}
