//! Shared cache of inverted decode submatrices, keyed by erasure pattern.
//!
//! Split out of `vandermonde.rs` so the model-check suite can drive it
//! directly: under `--cfg df_check` this module is public and its lock/Arc
//! types come from the `loom` shim (see [`crate::sync`]), letting
//! `tests/model_check.rs` exhaustively explore insert/evict/hit races at the
//! capacity boundary — the interleavings `cache_stress.rs` only samples.
//!
//! The hit path takes a **read** lock: carousel receivers converge on one or
//! two erasure patterns, so after warm-up every decode is a cache hit and
//! read-read concurrency is the common case (the `vandermonde_repeat` bench
//! row measures exactly this path).  Only a miss — which already paid an
//! `O(k³)` inversion outside any lock — takes the write lock to insert.

use crate::code::RsError;
use crate::sync::{Arc, RwLock};
use df_gf::{Field, Matrix};
use std::collections::HashMap;

/// How many erasure patterns' inverted submatrices to keep per code.
///
/// Receivers of a carousel see few distinct patterns (often exactly one — the
/// set of packets that survived their loss process), so a handful of entries
/// removes the `O(k³)` inversion from every decode after the first.  The k×k
/// inverse for a large GF(2^16) code is megabytes, so the cap is small and
/// eviction is wholesale rather than LRU bookkeeping.
pub(crate) const INVERSE_CACHE_CAP: usize = 8;

/// Map from a sorted received-index pattern to the shared inverse of its
/// decode submatrix.
type PatternMap<F> = HashMap<Vec<usize>, Arc<Matrix<F>>>;

/// Cache of inverted decode submatrices keyed by the sorted pattern of
/// received packet indices.
///
/// Interior mutability lives behind an `Arc`, so clones of a code share one
/// cache and `decode_into(&self, ...)` stays `&self` (the `ErasureCode` trait
/// requires `Send + Sync`).
pub struct InverseCache<F: Field> {
    map: Arc<RwLock<PatternMap<F>>>,
    cap: usize,
}

impl<F: Field> InverseCache<F> {
    /// A cache with the production capacity ([`INVERSE_CACHE_CAP`]).
    pub fn new() -> Self {
        Self::with_cap(INVERSE_CACHE_CAP)
    }

    /// A cache with an explicit capacity — the model-check suite shrinks it
    /// to 1–2 entries so the eviction race is reachable in a tiny state
    /// space.
    pub fn with_cap(cap: usize) -> Self {
        InverseCache {
            map: Arc::new(RwLock::new(HashMap::new())),
            cap: cap.max(1),
        }
    }

    /// Fetch the cached inverse for `rows`, or build, cache and return it.
    ///
    /// The hit path holds only the read lock; the build runs outside any
    /// lock (a concurrent decode of a new pattern must not block decodes of
    /// cached patterns behind an `O(k³)` inversion).  Two threads missing on
    /// the same pattern may both build — benign: the values are identical
    /// and the second insert just replaces the first `Arc`.
    pub fn get_or_build(
        &self,
        rows: &[usize],
        build: impl FnOnce() -> Result<Matrix<F>, RsError>,
    ) -> Result<Arc<Matrix<F>>, RsError> {
        if let Some(inv) = self.map.read().get(rows) {
            return Ok(inv.clone());
        }
        let inv = Arc::new(build()?);
        let mut map = self.map.write();
        if map.len() >= self.cap {
            map.clear();
        }
        map.insert(rows.to_vec(), inv.clone());
        Ok(inv)
    }

    /// Number of cached patterns (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache holds no patterns.
    #[cfg_attr(not(df_check), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<F: Field> Default for InverseCache<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Field> Clone for InverseCache<F> {
    fn clone(&self) -> Self {
        InverseCache {
            map: self.map.clone(),
            cap: self.cap,
        }
    }
}

impl<F: Field> std::fmt::Debug for InverseCache<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InverseCache({} patterns)", self.len())
    }
}
