//! Integration tests for `df-lint`: each rule fires on its fixture with the
//! right file:line, the whole tree passes clean, and seeded violations
//! (drifted DESIGN.md constants, forged FFI rows) are caught.
//!
//! The fixture files under `tests/fixtures/` are neither compiled (cargo only
//! builds top-level `tests/*.rs`) nor seen by `run()` (the walker skips
//! `tests/fixtures/`).

use std::path::{Path, PathBuf};

use df_lint::{
    check_atomic_ordering, check_design_text, check_ffi_allowlist, check_lock_discipline,
    check_safety_comments, check_send_sync_audit, check_unsafe_posture, check_wire_discipline, run,
    split_comments, WireConstants,
};

fn fixture(name: &str) -> (String, Vec<df_lint::SourceLine>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    (
        format!("crates/lint/tests/fixtures/{name}"),
        split_comments(&src),
    )
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn safety_rule_fires_with_file_and_line() {
    let (file, lines) = fixture("missing_safety.rs");
    let diags = check_safety_comments(&file, &lines);
    assert_eq!(diags.len(), 1, "exactly the undocumented block: {diags:?}");
    assert_eq!(diags[0].file, file);
    assert_eq!(diags[0].line, 9);
    assert_eq!(diags[0].rule, "safety-comment");
}

#[test]
fn wire_rule_fires_on_panic_paths_and_indexing_only_outside_tests() {
    let (file, lines) = fixture("wire_violations.rs");
    let diags = check_wire_discipline(&file, &lines);
    let mut hits: Vec<(usize, &str)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    hits.sort();
    assert_eq!(
        hits,
        [(6, "wire-discipline"), (7, "wire-discipline")],
        "indexing at 6 and unwrap at 7, nothing from the test mod: {diags:?}"
    );
}

#[test]
fn ffi_rule_fires_on_forged_signature_and_out_of_shims_block() {
    // As a shims/ path: unknown signature.
    let (_, lines) = fixture("forged_ffi.rs");
    let files = vec![("shims/forged/src/lib.rs".to_string(), lines.clone())];
    let diags = check_ffi_allowlist(&files);
    let forged: Vec<_> = diags
        .iter()
        .filter(|d| d.file == "shims/forged/src/lib.rs")
        .collect();
    assert_eq!(forged.len(), 1, "{diags:?}");
    assert_eq!(forged[0].line, 5);
    assert!(forged[0].message.contains("fn connect"));
    // Stale allowlist row also reported: the real poll(2) entry went unmatched.
    assert!(diags
        .iter()
        .any(|d| d.message.contains("stale FFI allowlist entry")));

    // Same block outside shims/ is banned outright.
    let files = vec![("crates/evil/src/lib.rs".to_string(), lines)];
    let diags = check_ffi_allowlist(&files);
    assert!(
        diags.iter().any(|d| d.file == "crates/evil/src/lib.rs"
            && d.line == 5
            && d.message.contains("outside shims/")),
        "{diags:?}"
    );
}

#[test]
fn posture_rule_fires_on_bare_crate_root() {
    let (file, lines) = fixture("missing_posture.rs");
    let diags = check_unsafe_posture(&file, &lines);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 1);
    assert_eq!(diags[0].rule, "unsafe-posture");
}

#[test]
fn doc_drift_fires_on_seeded_control_version_drift() {
    let consts = WireConstants {
        magic: 0xDF,
        version: 3,
        header_len: 12,
        max_layers: 32,
        max_scheduled_layers: 16,
    };
    let design = std::fs::read_to_string(repo_root().join("DESIGN.md")).unwrap();
    assert!(
        check_design_text(&design, &consts).is_empty(),
        "checked-in DESIGN.md is clean"
    );

    // Seed the drift the acceptance criteria call out: bump CONTROL_VERSION.
    let drifted = design
        .replace("wire version 3", "wire version 4")
        .replace("`CONTROL_VERSION` = 3", "`CONTROL_VERSION` = 4");
    let diags = check_design_text(&drifted, &consts);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|(line, _)| *line > 0));
}

#[test]
fn atomic_ordering_rule_fires_only_on_the_unjustified_line() {
    let (file, lines) = fixture("atomic_ordering.rs");
    let diags = check_atomic_ordering(&file, &lines);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].file, file);
    assert_eq!(diags[0].line, 8, "the bare Acquire load");
    assert_eq!(diags[0].rule, "atomic-ordering");
    assert!(diags[0].message.contains("Ordering::Acquire"));
    // The justified Release and the SeqCst store stayed silent.
}

#[test]
fn send_sync_rule_fires_on_unlisted_impl_and_stale_rows() {
    let (_, lines) = fixture("send_sync.rs");
    let files = vec![("crates/evil/src/lib.rs".to_string(), lines)];
    let diags = check_send_sync_audit(&files);
    let forged: Vec<_> = diags
        .iter()
        .filter(|d| d.file == "crates/evil/src/lib.rs")
        .collect();
    assert_eq!(forged.len(), 1, "{diags:?}");
    assert_eq!(forged[0].line, 9);
    assert_eq!(forged[0].rule, "send-sync-audit");
    assert!(forged[0].message.contains("RawHandle"));
    // With none of the loom shim files present, every allowlist row is stale.
    assert!(diags
        .iter()
        .any(|d| d.message.contains("stale Send/Sync allowlist entry")));
}

#[test]
fn lock_discipline_rule_fires_only_on_the_noteless_nesting() {
    let (file, lines) = fixture("lock_discipline.rs");
    let diags = check_lock_discipline(&file, &lines);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].file, file);
    assert_eq!(diags[0].line, 9, "the second guard in `violating`");
    assert_eq!(diags[0].rule, "lock-discipline");
    assert!(diags[0].message.contains("`gb`") && diags[0].message.contains("`ga`"));
    // The noted nesting, drop-first, and scoped patterns stayed silent.
}

#[test]
fn whole_tree_is_clean() {
    let diags = run(&repo_root());
    assert!(
        diags.is_empty(),
        "df-lint must pass on the checked-in tree:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
