// Fixture for the `unsafe-posture` rule: a crate root with neither
// #![forbid(unsafe_code)] nor #![deny(unsafe_op_in_unsafe_fn)].

pub fn noop() {}
