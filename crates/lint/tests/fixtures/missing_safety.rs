// Fixture for the `safety-comment` rule: the first unsafe block has no
// justification; the second is properly annotated and must not fire.
// NOTE: never compiled or linted as part of the tree — the walker skips
// `tests/fixtures/`.

fn undocumented() {
    let x = [1u8, 2];
    let p = x.as_ptr();
    unsafe { p.read() }; // line 9: should fire
}

fn documented() -> u8 {
    let x = [1u8, 2];
    let p = x.as_ptr();
    // SAFETY: `p` points at the live two-byte array above.
    unsafe { p.read() }
}
