//! Fixture for the `lock-discipline` rule: one nested acquisition without a
//! `// lock-order:` note (the violation), one with, and two patterns that
//! never hold two guards at once.  Never compiled; only scanned.

use parking_lot::Mutex;

fn violating(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    let _ = (*ga, *gb);
}

fn clean_with_note(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    // lock-order: a is always taken before b in this module.
    let gb = b.lock();
    let _ = (*ga, *gb);
}

fn clean_dropped_first(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    drop(ga);
    let gb = b.lock();
    let _ = *gb;
}

fn clean_scoped(a: &Mutex<u32>, b: &Mutex<u32>) {
    {
        let ga = a.lock();
        let _ = *ga;
    }
    let gb = b.lock();
    let _ = *gb;
}
