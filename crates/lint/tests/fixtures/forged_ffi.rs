// Fixture for the `ffi-allowlist` rule: an extern block declaring a
// function that is not in FFI_ALLOWLIST.

extern "C" {
    fn connect(sockfd: i32, addr: *const u8, addrlen: u32) -> i32; // line 5
}
