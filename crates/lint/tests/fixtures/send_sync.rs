//! Fixture for the `send-sync-audit` rule: a thread-safety assertion that is
//! not in `SEND_SYNC_ALLOWLIST`.  The SAFETY comment is present (so the
//! safety-comment rule would pass) precisely to show the audit is gated by
//! the allowlist table, not by prose.  Never compiled; only scanned.

struct RawHandle(*mut u8);

// SAFETY: forged — a raw pointer is not Send just because we say so.
unsafe impl Send for RawHandle {}
