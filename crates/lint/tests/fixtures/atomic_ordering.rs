//! Fixture for the `atomic-ordering` rule: one unjustified non-SeqCst
//! ordering (the violation), one justified, and one SeqCst (exempt).
//! Never compiled; only scanned by `lint_rules.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};

fn violating(flag: &AtomicUsize) -> usize {
    flag.load(Ordering::Acquire)
}

fn clean(flag: &AtomicUsize) {
    // ordering: Release pairs with the Acquire load in `violating`.
    flag.store(1, Ordering::Release);
    flag.store(2, Ordering::SeqCst);
}
