// Fixture for the `wire-discipline` rule: a panic path, an unannotated
// indexing site, an annotated one (must not fire), and a #[cfg(test)]
// region whose unwraps are exempt.

pub fn parse(data: &[u8]) -> u32 {
    let first = data[0]; // line 6: unannotated indexing — should fire
    let tail: u32 = data.last().copied().map(u32::from).unwrap(); // line 7: should fire
    // bounds: caller guarantees at least one byte.
    let noted = data[0];
    u32::from(first) + tail + u32::from(noted)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v: Option<u8> = Some(1);
        v.unwrap(); // inside cfg(test): must not fire
    }
}
