//! `df-lint` — repo-specific static analysis the compiler and clippy cannot do.
//!
//! The analyzer is deliberately *lexical*: a small scanner strips string
//! literals and separates comments from code, and every rule works on that
//! token-ish view.  No `syn`, no dependencies — the linter must build in the
//! offline environment and must never become the slowest crate in the tree.
//!
//! Rules (see DESIGN.md "Static analysis & sanitizers"):
//!
//! 1. **safety-comment** — every `unsafe` keyword (block, fn, impl) must have
//!    a `// SAFETY:` comment or a `# Safety` doc section within the preceding
//!    [`SAFETY_LOOKBACK`] lines (or on the same line).
//! 2. **wire-discipline** — the wire-facing proto modules ([`WIRE_FACING`])
//!    must not contain panic paths (`unwrap`/`expect`/`panic!`/…) or
//!    unannotated indexing outside `#[cfg(test)]` regions.  Indexing is
//!    allowed when a nearby comment justifies it with the word "bound".
//! 3. **ffi-allowlist** — `extern "…" { }` FFI blocks may only appear under
//!    `shims/`, and every declaration must match [`FFI_ALLOWLIST`] verbatim
//!    (modulo whitespace).  Stale allowlist entries are also errors.
//! 4. **doc-drift** — the wire-format constants quoted in DESIGN.md (magic,
//!    version, header size, layer caps) are cross-checked against the code,
//!    and `MAX_SCHEDULED_LAYERS` must stay single-sourced from `df_mcast`.
//! 5. **unsafe-posture** — every crate root (`crates/*/src/lib.rs`,
//!    `shims/*/src/lib.rs`, the workspace root `src/lib.rs`) must declare
//!    `#![forbid(unsafe_code)]` or `#![deny(unsafe_op_in_unsafe_fn)]`.
//! 6. **atomic-ordering** — every non-`SeqCst` memory ordering
//!    (`Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel`) must carry a
//!    `// ordering:` justification within the preceding
//!    [`ORDERING_LOOKBACK`] lines.  `SeqCst` is the self-justifying default;
//!    anything weaker is an optimization that needs its pairing argument
//!    written down (and model-checked — see `shims/loom`).
//! 7. **send-sync-audit** — every `unsafe impl Send`/`unsafe impl Sync` must
//!    match a row of [`SEND_SYNC_ALLOWLIST`] verbatim (modulo whitespace),
//!    like the FFI rule: the diff to the table is the review surface for new
//!    thread-safety assertions.  Stale rows are errors too.
//! 8. **lock-discipline** — a `let`-bound lock guard acquired while another
//!    guard is still live in scope needs a `// lock-order:` note within the
//!    preceding [`LOCK_ORDER_LOOKBACK`] lines naming the global acquisition
//!    order — the discipline that makes the loom deadlock check
//!    (`detects_lock_order_inversion_deadlock`) stay vacuous in production
//!    code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Lines of lookback granted to a `SAFETY:` comment before an `unsafe` token.
///
/// Wide enough for a doc comment with a `# Safety` section on an `unsafe fn`,
/// or one shared comment over a short run of dispatch arms; narrow enough that
/// a comment cannot accidentally license an unrelated block.
pub const SAFETY_LOOKBACK: usize = 12;

/// Comment lookback for an indexing bounds note in wire-facing modules.
pub const BOUNDS_LOOKBACK: usize = 3;

/// Modules that parse or construct untrusted wire input (rule 2 scope).
pub const WIRE_FACING: &[&str] = &[
    "crates/proto/src/control.rs",
    "crates/proto/src/client.rs",
    "crates/proto/src/rateless.rs",
    "crates/proto/src/wire.rs",
];

/// Tokens banned outside `#[cfg(test)]` in wire-facing modules.
pub const BANNED_WIRE_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// One allowlisted FFI declaration.
#[derive(Debug, Clone, Copy)]
pub struct FfiEntry {
    /// Repo-relative path (with `/` separators) the declaration may live in.
    pub file: &'static str,
    /// The exact declaration, compared whitespace-insensitively.
    pub signature: &'static str,
}

/// Every `extern` FFI declaration the workspace is allowed to contain.
///
/// Adding an FFI call means adding a row here *in the same PR* — the diff to
/// this table is the review surface for new foreign-function exposure.
pub const FFI_ALLOWLIST: &[FfiEntry] = &[
    FfiEntry {
        file: "shims/polling/src/lib.rs",
        signature:
            "fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> i32",
    },
    FfiEntry {
        file: "shims/polling/src/lib.rs",
        signature: "fn epoll_create1(flags: std::ffi::c_int) -> std::ffi::c_int",
    },
    FfiEntry {
        file: "shims/polling/src/lib.rs",
        signature: "fn epoll_ctl(epfd: std::ffi::c_int, op: std::ffi::c_int, \
                     fd: std::ffi::c_int, event: *mut EpollEvent,) -> std::ffi::c_int",
    },
    FfiEntry {
        file: "shims/polling/src/lib.rs",
        signature: "fn epoll_wait(epfd: std::ffi::c_int, events: *mut EpollEvent, \
                     maxevents: std::ffi::c_int, timeout: std::ffi::c_int,) -> std::ffi::c_int",
    },
];

/// A single lint finding, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (stable kebab-case identifier).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

fn diag(file: &str, line: usize, rule: &'static str, message: impl Into<String>) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Scanner: split source into per-line (code, comment) pairs.
// ---------------------------------------------------------------------------

/// One source line with string literals blanked out of `code` and every
/// comment's text (line, block, doc) collected into `comment`.
#[derive(Debug, Default, Clone)]
pub struct SourceLine {
    /// Code text: literals replaced by their delimiters only (`""`, `''`).
    pub code: String,
    /// Concatenated comment text that touches this line.
    pub comment: String,
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
}

/// Lexically split `src` into lines of code and comment text.
///
/// String/char literal *contents* are dropped (delimiters kept) so rules never
/// match tokens inside literals; comment text is preserved verbatim so rules
/// can look for `SAFETY:` / `# Safety` / bounds notes.
pub fn split_comments(src: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = SourceLine::default();
    let mut state = State::Code;
    let mut i = 0;

    // Returns Some(hash_count) when the code buffer ends in a raw-string
    // opener prefix (`r`, `r#`, `br##`, …) for the quote about to be pushed.
    fn raw_prefix(code: &str) -> Option<u32> {
        let b = code.as_bytes();
        let mut j = b.len();
        let mut hashes = 0u32;
        while j > 0 && b[j - 1] == b'#' {
            hashes += 1;
            j -= 1;
        }
        if j == 0 || b[j - 1] != b'r' {
            return None;
        }
        j -= 1;
        if j > 0 && b[j - 1] == b'b' {
            j -= 1;
        }
        // `r`/`br` must start an identifier, not end one (`var#"` is not raw).
        if j > 0 {
            let prev = code[..j].chars().next_back().unwrap_or(' ');
            if prev.is_alphanumeric() || prev == '_' {
                return None;
            }
        }
        Some(hashes)
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    let raw = raw_prefix(&cur.code);
                    cur.code.push('"');
                    state = State::Str { raw_hashes: raw };
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    let next = chars.get(i + 1);
                    let is_char_lit = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_lit {
                        cur.code.push_str("''");
                        i += 1; // past the opening quote
                        if chars.get(i) == Some(&'\\') {
                            i += 2; // past the backslash and the escaped char
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                        } else {
                            i += 1; // past the single content char
                        }
                        i += 1; // past the closing quote
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' {
                        i += 2; // skip the escaped char
                    } else if c == '"' {
                        cur.code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Some(h) => {
                    if c == '"' && (0..h as usize).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                        cur.code.push('"');
                        state = State::Code;
                        i += 1 + h as usize;
                    } else {
                        i += 1;
                    }
                }
            },
        }
    }
    lines.push(cur);
    lines
}

/// True when `code` contains `word` as a standalone token (identifier
/// boundaries on both sides), so `unsafe_code` never matches `unsafe`.
pub fn has_keyword(code: &str, word: &str) -> bool {
    keyword_positions(code, word).next().is_some()
}

fn keyword_positions<'a>(code: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    code.match_indices(word).filter_map(move |(pos, _)| {
        let before_ok = code[..pos].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok = code[pos + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident(c));
        (before_ok && after_ok).then_some(pos)
    })
}

// ---------------------------------------------------------------------------
// Rule 1: SAFETY comments.
// ---------------------------------------------------------------------------

fn window_has_safety(lines: &[SourceLine], at: usize) -> bool {
    let lo = at.saturating_sub(SAFETY_LOOKBACK);
    lines[lo..=at]
        .iter()
        .any(|l| l.comment.contains("SAFETY:") || l.comment.contains("# Safety"))
}

/// Rule `safety-comment`: every `unsafe` token needs a nearby justification.
pub fn check_safety_comments(file: &str, lines: &[SourceLine]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if has_keyword(&line.code, "unsafe") && !window_has_safety(lines, i) {
            out.push(diag(
                file,
                i + 1,
                "safety-comment",
                format!(
                    "`unsafe` without a `// SAFETY:` comment or `# Safety` doc section \
                     within the preceding {SAFETY_LOOKBACK} lines"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 2: wire-facing discipline (no panic paths, annotated indexing).
// ---------------------------------------------------------------------------

/// Mark every line covered by a `#[cfg(test)]`-gated item (brace matching).
pub fn test_region_mask(lines: &[SourceLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            let mut depth: i64 = 0;
            let mut started = false;
            let mut j = i;
            'scan: while j < lines.len() {
                for ch in lines[j].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            started = true;
                        }
                        '}' => {
                            depth -= 1;
                            if started && depth <= 0 {
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            let end = j.min(lines.len() - 1);
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end;
        }
        i += 1;
    }
    mask
}

const INDEX_PRECEDING_KEYWORDS: &[&str] = &[
    "let", "in", "return", "else", "match", "mut", "ref", "box", "move", "if", "while", "for",
];

/// Count indexing/slicing sites on one code line: a `[` applied to a value
/// (preceded by an identifier, `)` or `]`), as opposed to attributes, array
/// types/literals and slice patterns.
pub fn indexing_sites(code: &str) -> usize {
    let chars: Vec<char> = code.chars().collect();
    let mut count = 0;
    for (p, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut q = p;
        while q > 0 && chars[q - 1] == ' ' {
            q -= 1;
        }
        if q == 0 {
            continue;
        }
        let prev = chars[q - 1];
        if prev == ')' || prev == ']' {
            count += 1;
        } else if prev.is_alphanumeric() || prev == '_' {
            let mut s = q - 1;
            while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
                s -= 1;
            }
            let word: String = chars[s..q].iter().collect();
            // A lifetime before `[` (`&'a [u8]`) is a slice type, not indexing.
            let is_lifetime = s > 0 && chars[s - 1] == '\'';
            if !is_lifetime && !INDEX_PRECEDING_KEYWORDS.contains(&word.as_str()) {
                count += 1;
            }
        }
    }
    count
}

fn window_has_bounds_note(lines: &[SourceLine], at: usize) -> bool {
    let lo = at.saturating_sub(BOUNDS_LOOKBACK);
    lines[lo..=at]
        .iter()
        .any(|l| l.comment.to_ascii_lowercase().contains("bound"))
}

/// Rule `wire-discipline`: wire-facing parse paths must be total — no panic
/// tokens and no unannotated indexing outside `#[cfg(test)]`.
pub fn check_wire_discipline(file: &str, lines: &[SourceLine]) -> Vec<Diagnostic> {
    let mask = test_region_mask(lines);
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        for tok in BANNED_WIRE_TOKENS {
            if line.code.contains(tok) {
                out.push(diag(
                    file,
                    i + 1,
                    "wire-discipline",
                    format!(
                        "`{tok}` in a wire-facing module: untrusted input must surface \
                         a MalformedInput-style error, not a panic path"
                    ),
                ));
            }
        }
        if indexing_sites(&line.code) > 0 && !window_has_bounds_note(lines, i) {
            out.push(diag(
                file,
                i + 1,
                "wire-discipline",
                format!(
                    "indexing in a wire-facing module without a bounds note \
                     (add a `// bounds: …` comment within {BOUNDS_LOOKBACK} lines, \
                     or use a non-panicking accessor)"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 3: FFI signature allowlist.
// ---------------------------------------------------------------------------

/// Whitespace-insensitive normal form for FFI signature comparison.
pub fn normalize_signature(sig: &str) -> String {
    sig.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Extract `fn` declarations from `extern "…" { }` blocks, with 1-based line
/// numbers.  `extern crate` and `extern "C" fn` pointer types have no block
/// and are ignored.
pub fn collect_extern_signatures(lines: &[SourceLine]) -> Vec<(usize, String)> {
    // Join code with '\n' so we can scan across lines; remember line starts.
    let mut joined = String::new();
    let mut line_starts = Vec::with_capacity(lines.len());
    for l in lines {
        line_starts.push(joined.len());
        joined.push_str(&l.code);
        joined.push('\n');
    }
    let line_of = |pos: usize| match line_starts.binary_search(&pos) {
        Ok(i) => i + 1,
        Err(i) => i, // i is the insertion point; line index is i-1, 1-based i
    };

    let bytes = joined.as_bytes();
    let mut out = Vec::new();
    for pos in keyword_positions(&joined, "extern").collect::<Vec<_>>() {
        let mut p = pos + "extern".len();
        let skip_ws = |p: &mut usize| {
            while *p < bytes.len() && (bytes[*p] as char).is_whitespace() {
                *p += 1;
            }
        };
        skip_ws(&mut p);
        // Optional ABI string — the scanner reduced it to bare quotes.
        if bytes.get(p) == Some(&b'"') {
            p += 1;
            while p < bytes.len() && bytes[p] != b'"' {
                p += 1;
            }
            p += 1;
            skip_ws(&mut p);
        }
        if bytes.get(p) != Some(&b'{') {
            continue; // `extern crate …`, or an `extern "C" fn` type
        }
        let body_start = p + 1;
        let mut depth = 1i64;
        let mut q = body_start;
        while q < bytes.len() && depth > 0 {
            match bytes[q] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
            q += 1;
        }
        let body = &joined[body_start..q.saturating_sub(1).max(body_start)];
        let mut offset = 0;
        for decl in body.split(';') {
            if let Some(fn_rel) = keyword_positions(decl, "fn").next() {
                let fn_abs = body_start + offset + fn_rel;
                let sig = decl[fn_rel..]
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push((line_of(fn_abs), sig));
            }
            offset += decl.len() + 1;
        }
    }
    out
}

/// Rule `ffi-allowlist`: every extern declaration must be in [`FFI_ALLOWLIST`]
/// and under `shims/`; stale allowlist rows are flagged too.
pub fn check_ffi_allowlist(files: &[(String, Vec<SourceLine>)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut matched = vec![false; FFI_ALLOWLIST.len()];
    for (file, lines) in files {
        for (line, sig) in collect_extern_signatures(lines) {
            if !file.starts_with("shims/") {
                out.push(diag(
                    file,
                    line,
                    "ffi-allowlist",
                    format!("extern FFI declaration outside shims/: `{sig}`"),
                ));
                continue;
            }
            let norm = normalize_signature(&sig);
            let hit = FFI_ALLOWLIST
                .iter()
                .position(|e| e.file == file && normalize_signature(e.signature) == norm);
            match hit {
                Some(idx) => matched[idx] = true,
                None => out.push(diag(
                    file,
                    line,
                    "ffi-allowlist",
                    format!(
                        "extern FFI declaration not in the df-lint allowlist: `{sig}` \
                         (crates/lint/src/lib.rs FFI_ALLOWLIST)"
                    ),
                )),
            }
        }
    }
    for (entry, hit) in FFI_ALLOWLIST.iter().zip(&matched) {
        if !hit {
            out.push(diag(
                "crates/lint/src/lib.rs",
                1,
                "ffi-allowlist",
                format!(
                    "stale FFI allowlist entry: `{}` not found in {}",
                    entry.signature, entry.file
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 4: DESIGN.md wire-constant drift.
// ---------------------------------------------------------------------------

/// The wire-format constants single-sourced in code (rule 4 inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConstants {
    /// `df_proto::control::CONTROL_MAGIC`.
    pub magic: u64,
    /// `df_proto::control::CONTROL_VERSION`.
    pub version: u64,
    /// `df_proto::wire::HEADER_LEN`.
    pub header_len: u64,
    /// `df_proto::client::MAX_LAYERS`.
    pub max_layers: u64,
    /// `df_proto::client::MAX_SCHEDULED_LAYERS` (= `df_mcast::MAX_LAYERS`).
    pub max_scheduled_layers: u64,
}

/// Parse an integer literal: decimal, `0x…`/`0b…`/`0o…`, `_` separators,
/// optional type suffix.
pub fn parse_int_literal(text: &str) -> Option<u64> {
    let t: String = text.trim().chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(rest) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))
    {
        (rest, 16)
    } else if let Some(rest) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (rest, 2)
    } else if let Some(rest) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (rest, 8)
    } else {
        (t.as_str(), 10)
    };
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// Find `const NAME: … = <expr>;` in `src` and return the raw `<expr>` text.
pub fn find_const_expr(src: &str, name: &str) -> Option<String> {
    for pos in keyword_positions(src, name).collect::<Vec<_>>() {
        let before = src[..pos].trim_end();
        if !before.ends_with("const") {
            continue;
        }
        let rest = &src[pos + name.len()..];
        let eq = rest.find('=')?;
        let semi = rest[eq..].find(';')? + eq;
        return Some(rest[eq + 1..semi].trim().to_string());
    }
    None
}

/// Extract [`WireConstants`] from the proto/mcast sources, checking that
/// `MAX_SCHEDULED_LAYERS` stays single-sourced from `df_mcast::MAX_LAYERS`.
pub fn extract_wire_constants(root: &Path) -> Result<WireConstants, Vec<Diagnostic>> {
    let mut errs = Vec::new();
    let read = |rel: &str, errs: &mut Vec<Diagnostic>| -> String {
        std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| {
            errs.push(diag(
                rel,
                1,
                "doc-drift",
                format!("cannot read source: {e}"),
            ));
            String::new()
        })
    };
    let control = read("crates/proto/src/control.rs", &mut errs);
    let wire = read("crates/proto/src/wire.rs", &mut errs);
    let client = read("crates/proto/src/client.rs", &mut errs);
    let mcast = read("crates/mcast/src/layers.rs", &mut errs);

    let lit = |src: &str, rel: &str, name: &str, errs: &mut Vec<Diagnostic>| -> u64 {
        match find_const_expr(src, name)
            .as_deref()
            .and_then(parse_int_literal)
        {
            Some(v) => v,
            None => {
                errs.push(diag(
                    rel,
                    1,
                    "doc-drift",
                    format!("cannot find integer `const {name}` to cross-check DESIGN.md"),
                ));
                0
            }
        }
    };
    let magic = lit(
        &control,
        "crates/proto/src/control.rs",
        "CONTROL_MAGIC",
        &mut errs,
    );
    let version = lit(
        &control,
        "crates/proto/src/control.rs",
        "CONTROL_VERSION",
        &mut errs,
    );
    let header_len = lit(&wire, "crates/proto/src/wire.rs", "HEADER_LEN", &mut errs);
    let max_layers = lit(
        &client,
        "crates/proto/src/client.rs",
        "MAX_LAYERS",
        &mut errs,
    );
    let mcast_layers = lit(
        &mcast,
        "crates/mcast/src/layers.rs",
        "MAX_LAYERS",
        &mut errs,
    );

    match find_const_expr(&client, "MAX_SCHEDULED_LAYERS") {
        Some(expr) if expr.contains("df_mcast::MAX_LAYERS") => {}
        Some(expr) => errs.push(diag(
            "crates/proto/src/client.rs",
            1,
            "doc-drift",
            format!(
                "MAX_SCHEDULED_LAYERS must be single-sourced as `df_mcast::MAX_LAYERS`, \
                 found `{expr}`"
            ),
        )),
        None => errs.push(diag(
            "crates/proto/src/client.rs",
            1,
            "doc-drift",
            "cannot find `const MAX_SCHEDULED_LAYERS`",
        )),
    }

    if errs.is_empty() {
        Ok(WireConstants {
            magic,
            version,
            header_len,
            max_layers,
            max_scheduled_layers: mcast_layers,
        })
    } else {
        Err(errs)
    }
}

/// Rule `doc-drift` over the DESIGN.md text: every quoted wire constant must
/// match the code, and every constant must be quoted at least once.
pub fn check_design_text(design: &str, c: &WireConstants) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    // Which constants DESIGN.md actually states (by any accepted phrasing).
    let mut stated = [false; 5]; // magic, version, header, max_layers, max_sched
    let named: [(&str, u64, usize); 5] = [
        ("CONTROL_MAGIC", c.magic, 0),
        ("CONTROL_VERSION", c.version, 1),
        ("HEADER_LEN", c.header_len, 2),
        ("MAX_LAYERS", c.max_layers, 3),
        ("MAX_SCHEDULED_LAYERS", c.max_scheduled_layers, 4),
    ];

    for (lineno, line) in design.lines().enumerate() {
        let lineno = lineno + 1;
        // Form 1: "`NAME` = value" (the constants table).
        for (name, want, slot) in named {
            let pat = format!("`{name}` = ");
            if let Some(p) = line.find(&pat) {
                stated[slot] = true;
                match parse_int_literal(&line[p + pat.len()..]) {
                    Some(got) if got == want => {}
                    got => out.push((
                        lineno,
                        format!(
                            "DESIGN.md states `{name}` = {}, code says {want}",
                            got.map_or_else(|| "<unparseable>".into(), |g| g.to_string())
                        ),
                    )),
                }
            }
        }
        // Form 2: "magic `0xDF`".
        if let Some(p) = line.find("magic `") {
            stated[0] = true;
            let rest = &line[p + "magic `".len()..];
            let lit = rest.split('`').next().unwrap_or("");
            match parse_int_literal(lit) {
                Some(got) if got == c.magic => {}
                _ => out.push((
                    lineno,
                    format!("DESIGN.md quotes magic `{lit}`, code says {:#04x}", c.magic),
                )),
            }
        }
        // Form 3: "wire version N" / "wire-format version N".
        for pat in ["wire version ", "wire-format version "] {
            if let Some(p) = line.find(pat) {
                stated[1] = true;
                match parse_int_literal(&line[p + pat.len()..]) {
                    Some(got) if got == c.version => {}
                    _ => out.push((
                        lineno,
                        format!("DESIGN.md quotes a wire version != {}", c.version),
                    )),
                }
            }
        }
        // Form 4: "N-byte header".
        if let Some(p) = line.find("-byte header") {
            let digits: String = line[..p]
                .chars()
                .rev()
                .take_while(|ch| ch.is_ascii_digit())
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            stated[2] = true;
            match parse_int_literal(&digits) {
                Some(got) if got == c.header_len => {}
                _ => out.push((
                    lineno,
                    format!("DESIGN.md quotes a header size != {} bytes", c.header_len),
                )),
            }
        }
    }

    for (name, _, slot) in named {
        if !stated[slot] {
            out.push((
                1,
                format!("DESIGN.md never states `{name}` — the drift check has nothing to pin"),
            ));
        }
    }
    out
}

/// Rule `doc-drift`, full form: extract constants and check DESIGN.md on disk.
pub fn check_doc_drift(root: &Path) -> Vec<Diagnostic> {
    let consts = match extract_wire_constants(root) {
        Ok(c) => c,
        Err(errs) => return errs,
    };
    let design = match std::fs::read_to_string(root.join("DESIGN.md")) {
        Ok(d) => d,
        Err(e) => {
            return vec![diag(
                "DESIGN.md",
                1,
                "doc-drift",
                format!("cannot read: {e}"),
            )]
        }
    };
    check_design_text(&design, &consts)
        .into_iter()
        .map(|(line, msg)| diag("DESIGN.md", line, "doc-drift", msg))
        .collect()
}

// ---------------------------------------------------------------------------
// Rule 5: crate-root unsafe posture.
// ---------------------------------------------------------------------------

/// Rule `unsafe-posture`: a crate root must forbid unsafe code outright or
/// deny implicit unsafe inside `unsafe fn`.
pub fn check_unsafe_posture(file: &str, lines: &[SourceLine]) -> Vec<Diagnostic> {
    let ok = lines.iter().any(|l| {
        l.code.contains("forbid(unsafe_code)") || l.code.contains("deny(unsafe_op_in_unsafe_fn)")
    });
    if ok {
        Vec::new()
    } else {
        vec![diag(
            file,
            1,
            "unsafe-posture",
            "crate root must declare #![forbid(unsafe_code)] or \
             #![deny(unsafe_op_in_unsafe_fn)]",
        )]
    }
}

// ---------------------------------------------------------------------------
// Rule 6: non-SeqCst atomic orderings need a written pairing argument.
// ---------------------------------------------------------------------------

/// Comment lookback for an `// ordering:` justification before a non-`SeqCst`
/// memory-ordering token.
pub const ORDERING_LOOKBACK: usize = 4;

/// The orderings that demand justification.  `SeqCst` is the safe default and
/// exempt; everything weaker trades a reordering window for speed and must
/// say which Release/Acquire pair (or why no pairing is needed) makes that
/// sound.
pub const NON_SEQCST_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

fn window_has_ordering_note(lines: &[SourceLine], at: usize) -> bool {
    let lo = at.saturating_sub(ORDERING_LOOKBACK);
    lines[lo..=at]
        .iter()
        .any(|l| l.comment.to_ascii_lowercase().contains("ordering:"))
}

/// Rule `atomic-ordering`: each line using a non-`SeqCst` ordering needs a
/// nearby `// ordering:` comment.
pub fn check_atomic_ordering(file: &str, lines: &[SourceLine]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(tok) = NON_SEQCST_ORDERINGS
            .iter()
            .find(|t| has_keyword(&line.code, t))
        else {
            continue;
        };
        if !window_has_ordering_note(lines, i) {
            out.push(diag(
                file,
                i + 1,
                "atomic-ordering",
                format!(
                    "`{tok}` without a `// ordering:` justification within the \
                     preceding {ORDERING_LOOKBACK} lines (state the Release/Acquire \
                     pairing, or use SeqCst)"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 7: unsafe Send/Sync impl allowlist.
// ---------------------------------------------------------------------------

/// One allowlisted `unsafe impl Send`/`Sync` declaration.
#[derive(Debug, Clone, Copy)]
pub struct SendSyncEntry {
    /// Repo-relative path (with `/` separators) the impl may live in.
    pub file: &'static str,
    /// The declaration up to (not including) its body, compared
    /// whitespace-insensitively.
    pub signature: &'static str,
}

/// Every `unsafe impl Send`/`unsafe impl Sync` the workspace may contain.
///
/// A hand-written thread-safety assertion is a proof obligation the compiler
/// cannot check; adding one means adding a row here *in the same PR*, so the
/// diff to this table is the review surface.  Today only the loom shim's own
/// primitives qualify: each wraps its data in a way the model checker
/// serializes, and each carries a SAFETY comment with the argument.
pub const SEND_SYNC_ALLOWLIST: &[SendSyncEntry] = &[
    SendSyncEntry {
        file: "shims/loom/src/cell.rs",
        signature: "unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T>",
    },
    SendSyncEntry {
        file: "shims/loom/src/cell.rs",
        signature: "unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T>",
    },
    SendSyncEntry {
        file: "shims/loom/src/sync.rs",
        signature: "unsafe impl<T: ?Sized + Send> Send for Mutex<T>",
    },
    SendSyncEntry {
        file: "shims/loom/src/sync.rs",
        signature: "unsafe impl<T: ?Sized + Send> Sync for Mutex<T>",
    },
    SendSyncEntry {
        file: "shims/loom/src/sync.rs",
        signature: "unsafe impl<T: ?Sized + Send> Send for RwLock<T>",
    },
    SendSyncEntry {
        file: "shims/loom/src/sync.rs",
        signature: "unsafe impl<T: ?Sized + Send> Sync for RwLock<T>",
    },
];

/// Extract `unsafe impl … Send/Sync for …` declarations (up to the body),
/// with 1-based line numbers.
pub fn collect_send_sync_impls(lines: &[SourceLine]) -> Vec<(usize, String)> {
    let mut joined = String::new();
    let mut line_starts = Vec::with_capacity(lines.len());
    for l in lines {
        line_starts.push(joined.len());
        joined.push_str(&l.code);
        joined.push('\n');
    }
    let line_of = |pos: usize| match line_starts.binary_search(&pos) {
        Ok(i) => i + 1,
        Err(i) => i,
    };

    let mut out = Vec::new();
    for pos in keyword_positions(&joined, "unsafe").collect::<Vec<_>>() {
        let rest = &joined[pos..];
        let Some(after_kw) = rest.strip_prefix("unsafe") else {
            continue;
        };
        if keyword_positions(after_kw.trim_start(), "impl").next() != Some(0) {
            continue;
        }
        let end = rest.find(['{', ';']).map_or(rest.len(), |e| e);
        let decl = rest[..end].split_whitespace().collect::<Vec<_>>().join(" ");
        // Only Send/Sync assertions are audited; other unsafe impls (e.g. a
        // future `unsafe impl Step`) are the safety-comment rule's problem.
        let is_send_sync = decl.contains(" Send for ") || decl.contains(" Sync for ");
        if is_send_sync {
            out.push((line_of(pos), decl));
        }
    }
    out
}

/// Rule `send-sync-audit`: every `unsafe impl Send`/`Sync` must be in
/// [`SEND_SYNC_ALLOWLIST`]; stale allowlist rows are flagged too.
pub fn check_send_sync_audit(files: &[(String, Vec<SourceLine>)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut matched = vec![false; SEND_SYNC_ALLOWLIST.len()];
    for (file, lines) in files {
        for (line, decl) in collect_send_sync_impls(lines) {
            let norm = normalize_signature(&decl);
            let hit = SEND_SYNC_ALLOWLIST
                .iter()
                .position(|e| e.file == file && normalize_signature(e.signature) == norm);
            match hit {
                Some(idx) => matched[idx] = true,
                None => out.push(diag(
                    file,
                    line,
                    "send-sync-audit",
                    format!(
                        "`{decl}` is not in the df-lint Send/Sync allowlist \
                         (crates/lint/src/lib.rs SEND_SYNC_ALLOWLIST)"
                    ),
                )),
            }
        }
    }
    for (entry, hit) in SEND_SYNC_ALLOWLIST.iter().zip(&matched) {
        if !hit {
            out.push(diag(
                "crates/lint/src/lib.rs",
                1,
                "send-sync-audit",
                format!(
                    "stale Send/Sync allowlist entry: `{}` not found in {}",
                    entry.signature, entry.file
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 8: lock acquisition discipline.
// ---------------------------------------------------------------------------

/// Comment lookback for a `// lock-order:` note before a nested guard
/// acquisition.
pub const LOCK_ORDER_LOOKBACK: usize = 4;

fn window_has_lock_order_note(lines: &[SourceLine], at: usize) -> bool {
    let lo = at.saturating_sub(LOCK_ORDER_LOOKBACK);
    lines[lo..=at]
        .iter()
        .any(|l| l.comment.to_ascii_lowercase().contains("lock-order:"))
}

/// The guard-binding shape rule 8 tracks: `let [mut] NAME = ….lock();` (or
/// `.read();` / `.write();`).  Returns the bound name.
///
/// Deliberately conservative: guards acquired as temporaries (`x.lock().y`)
/// die at end of statement and cannot deadlock across statements, and
/// multi-line builder chains are rare enough in this tree to stay out of a
/// lexical rule.
fn guard_binding(code: &str) -> Option<String> {
    let t = code.trim();
    let rest = t.strip_prefix("let ")?;
    if !(t.ends_with(".lock();") || t.ends_with(".read();") || t.ends_with(".write();")) {
        return None;
    }
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|&c| c.is_alphanumeric() || c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Rule `lock-discipline`: holding two `let`-bound lock guards at once
/// requires a `// lock-order:` note on the inner acquisition.
///
/// Lexical scope model: a guard bound at brace depth `d` dies when the depth
/// drops below `d` or when `drop(name)` appears; acquiring a new guard while
/// any tracked guard is live without a nearby note is the violation.  This
/// is the static face of the dynamic check in `shims/loom`'s deadlock
/// detector — the note is where the global order that makes nesting safe
/// gets written down.
pub fn check_lock_discipline(file: &str, lines: &[SourceLine]) -> Vec<Diagnostic> {
    struct Guard {
        name: String,
        depth: i64,
    }
    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    for (i, line) in lines.iter().enumerate() {
        guards.retain(|g| !line.code.contains(&format!("drop({})", g.name)));
        if let Some(name) = guard_binding(&line.code) {
            if let Some(outer) = guards.last() {
                if !window_has_lock_order_note(lines, i) {
                    out.push(diag(
                        file,
                        i + 1,
                        "lock-discipline",
                        format!(
                            "guard `{name}` acquired while `{}` is still live — state \
                             the global acquisition order in a `// lock-order:` comment \
                             within {LOCK_ORDER_LOOKBACK} lines (or drop the outer \
                             guard first)",
                            outer.name
                        ),
                    ));
                }
            }
            guards.push(Guard { name, depth });
        }
        for ch in line.code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
    out
}

fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || ((rel.starts_with("crates/") || rel.starts_with("shims/"))
            && rel.ends_with("/src/lib.rs"))
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

/// Recursively collect repo-relative `.rs` paths under `root`, skipping build
/// output, VCS metadata, and the lint's own (deliberately violating) fixtures.
pub fn collect_rs_files(root: &Path) -> Vec<String> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                walk(&path, root, out);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                if rel.contains("tests/fixtures/") {
                    continue;
                }
                out.push(rel);
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

/// Run every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    let mut out = Vec::new();
    for rel in collect_rs_files(root) {
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => files.push((rel, split_comments(&src))),
            Err(e) => out.push(diag(&rel, 1, "io", format!("cannot read source: {e}"))),
        }
    }

    for (rel, lines) in &files {
        out.extend(check_safety_comments(rel, lines));
        out.extend(check_atomic_ordering(rel, lines));
        out.extend(check_lock_discipline(rel, lines));
        if WIRE_FACING.contains(&rel.as_str()) {
            out.extend(check_wire_discipline(rel, lines));
        }
        if is_crate_root(rel) {
            out.extend(check_unsafe_posture(rel, lines));
        }
    }
    out.extend(check_ffi_allowlist(&files));
    out.extend(check_send_sync_audit(&files));
    out.extend(check_doc_drift(root));

    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// The workspace root when the linter is run from its own crate directory
/// (`cargo run -p df-lint`): two levels above `crates/lint`.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_comments(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn scanner_strips_string_contents() {
        let got = codes("let s = \"unsafe { } // not a comment\";");
        assert_eq!(got, ["let s = \"\";"]);
    }

    #[test]
    fn scanner_strips_raw_strings_with_hashes() {
        let got = codes("let s = r#\"has \"quotes\" and unsafe\"#; let t = 1;");
        assert_eq!(got, ["let s = r#\"\"; let t = 1;"]);
    }

    #[test]
    fn scanner_handles_escapes_and_chars_and_lifetimes() {
        let got = codes("let q = '\\''; let b = b'x'; fn f<'a>(x: &'a str) {}");
        assert_eq!(got, ["let q = ''; let b = b''; fn f<'a>(x: &'a str) {}"]);
    }

    #[test]
    fn scanner_separates_comments() {
        let lines = split_comments("let x = 1; // SAFETY: fine\n/* block\nstill */ let y = 2;");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert!(lines[0].comment.contains("SAFETY: fine"));
        assert!(lines[1].comment.contains("block"));
        assert_eq!(lines[2].code.trim(), "let y = 2;");
    }

    #[test]
    fn keyword_matching_respects_identifier_boundaries() {
        assert!(has_keyword("unsafe { }", "unsafe"));
        assert!(has_keyword("pub unsafe fn f()", "unsafe"));
        assert!(!has_keyword("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!has_keyword("deny(unsafe_op_in_unsafe_fn)", "unsafe"));
    }

    #[test]
    fn safety_rule_accepts_doc_section_and_comment() {
        let ok = "/// # Safety\n/// caller ensures len\npub unsafe fn f() {}";
        assert!(check_safety_comments("x.rs", &split_comments(ok)).is_empty());
        let ok2 = "// SAFETY: ptr is valid\nunsafe { go() }";
        assert!(check_safety_comments("x.rs", &split_comments(ok2)).is_empty());
        let bad = "pub unsafe fn f() {}";
        let d = check_safety_comments("x.rs", &split_comments(bad));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn test_region_mask_covers_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\nfn c() {}";
        let mask = test_region_mask(&split_comments(src));
        assert_eq!(mask, [false, true, true, true, true, false]);
    }

    #[test]
    fn indexing_detection() {
        assert_eq!(indexing_sites("let x = buf[0];"), 1);
        assert_eq!(indexing_sites("&data[4..8]"), 1);
        assert_eq!(indexing_sites("#[derive(Debug)]"), 0);
        assert_eq!(indexing_sites("let a: [u8; 4] = [0; 4];"), 0);
        assert_eq!(indexing_sites("for x in [1, 2] {}"), 0);
        assert_eq!(indexing_sites("f(x)[1]"), 1);
        assert_eq!(
            indexing_sites("fn take(&mut self) -> Option<&'a [u8]> {"),
            0
        );
    }

    #[test]
    fn wire_rule_allows_bounds_notes_and_tests() {
        let ok = "// bounds: length checked above\nlet x = data[0];";
        assert!(check_wire_discipline("w.rs", &split_comments(ok)).is_empty());
        let bad = "let x = data[0];\nlet y = v.unwrap();";
        let d = check_wire_discipline("w.rs", &split_comments(bad));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn extern_signatures_are_collected() {
        let src = "extern \"C\" {\n    fn poll(fds: *mut PollFd,\n        nfds: u64) -> i32;\n}";
        let sigs = collect_extern_signatures(&split_comments(src));
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].0, 2);
        assert_eq!(
            normalize_signature(&sigs[0].1),
            normalize_signature("fn poll(fds: *mut PollFd, nfds: u64) -> i32")
        );
    }

    #[test]
    fn extern_crate_and_fn_types_are_ignored() {
        let src = "extern crate alloc;\ntype F = extern \"C\" fn(i32) -> i32;";
        assert!(collect_extern_signatures(&split_comments(src)).is_empty());
    }

    #[test]
    fn int_literal_parsing() {
        assert_eq!(parse_int_literal("0xDF"), Some(0xDF));
        assert_eq!(parse_int_literal("12"), Some(12));
        assert_eq!(parse_int_literal("0x02"), Some(2));
        assert_eq!(parse_int_literal("1_000"), Some(1000));
        assert_eq!(parse_int_literal("16usize"), Some(16));
        assert_eq!(parse_int_literal("abc"), None);
    }

    #[test]
    fn const_expr_extraction() {
        let src = "pub const CONTROL_MAGIC: u8 = 0xDF;\npub const N: usize = df_mcast::MAX_LAYERS;";
        assert_eq!(
            find_const_expr(src, "CONTROL_MAGIC").as_deref(),
            Some("0xDF")
        );
        assert_eq!(
            find_const_expr(src, "N").as_deref(),
            Some("df_mcast::MAX_LAYERS")
        );
        assert_eq!(find_const_expr(src, "MISSING"), None);
    }

    #[test]
    fn design_drift_detects_mismatch_and_omission() {
        let c = WireConstants {
            magic: 0xDF,
            version: 2,
            header_len: 12,
            max_layers: 32,
            max_scheduled_layers: 16,
        };
        let good = "magic `0xDF` wire version 2 the 12-byte header\n\
                    `CONTROL_MAGIC` = 0xDF `CONTROL_VERSION` = 2 `HEADER_LEN` = 12 \
                    `MAX_LAYERS` = 32 `MAX_SCHEDULED_LAYERS` = 16\n";
        assert!(check_design_text(good, &c).is_empty());
        let drifted = good.replace("wire version 2", "wire version 9");
        let d = check_design_text(&drifted, &c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 1);
        let missing = "nothing quoted at all";
        assert_eq!(check_design_text(missing, &c).len(), 5);
    }

    #[test]
    fn ordering_rule_exempts_seqcst_and_accepts_notes() {
        assert!(
            check_atomic_ordering("a.rs", &split_comments("x.store(1, Ordering::SeqCst);"))
                .is_empty()
        );
        let ok = "// ordering: pairs with the Acquire in recv\nx.store(1, Ordering::Release);";
        assert!(check_atomic_ordering("a.rs", &split_comments(ok)).is_empty());
        let bad = "let v = x.load(Ordering::Relaxed);";
        let d = check_atomic_ordering("a.rs", &split_comments(bad));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        // Inside a string literal: not a use.
        assert!(
            check_atomic_ordering("a.rs", &split_comments("let s = \"Ordering::Relaxed\";"))
                .is_empty()
        );
    }

    #[test]
    fn send_sync_impls_are_collected_across_lines() {
        let src =
            "unsafe impl<T: ?Sized + Send> Sync\n    for Mutex<T> {}\nunsafe impl Step for X {}";
        let got = collect_send_sync_impls(&split_comments(src));
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, 1);
        assert_eq!(
            normalize_signature(&got[0].1),
            normalize_signature("unsafe impl<T: ?Sized + Send> Sync for Mutex<T>")
        );
    }

    #[test]
    fn lock_rule_tracks_drops_and_scopes() {
        let bad = "let a = x.lock();\nlet b = y.lock();";
        let d = check_lock_discipline("l.rs", &split_comments(bad));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        let ok = "let a = x.lock();\n// lock-order: x before y, always\nlet b = y.lock();";
        assert!(check_lock_discipline("l.rs", &split_comments(ok)).is_empty());
        let dropped = "let a = x.lock();\ndrop(a);\nlet b = y.lock();";
        assert!(check_lock_discipline("l.rs", &split_comments(dropped)).is_empty());
        let scoped = "{\n    let a = x.lock();\n}\nlet b = y.lock();";
        assert!(check_lock_discipline("l.rs", &split_comments(scoped)).is_empty());
        // Temporaries (no `let` binding) are not tracked.
        let temp = "x.lock().push(1);\nlet b = y.lock();";
        assert!(check_lock_discipline("l.rs", &split_comments(temp)).is_empty());
    }

    #[test]
    fn posture_rule() {
        assert!(
            check_unsafe_posture("l.rs", &split_comments("#![forbid(unsafe_code)]")).is_empty()
        );
        assert!(
            check_unsafe_posture("l.rs", &split_comments("#![deny(unsafe_op_in_unsafe_fn)]"))
                .is_empty()
        );
        assert_eq!(
            check_unsafe_posture("l.rs", &split_comments("fn f() {}")).len(),
            1
        );
        assert!(is_crate_root("crates/gf/src/lib.rs"));
        assert!(is_crate_root("src/lib.rs"));
        assert!(!is_crate_root("crates/gf/src/kernels.rs"));
    }
}
