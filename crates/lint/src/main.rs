//! `df-lint` binary: walk the workspace, print diagnostics, exit non-zero on
//! any finding.  Usage: `cargo run -p df-lint [-- <repo-root>]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(df_lint::default_root);
    let diagnostics = df_lint::run(&root);
    if diagnostics.is_empty() {
        println!(
            "df-lint: clean ({} .rs files checked)",
            df_lint::collect_rs_files(&root).len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &diagnostics {
        println!("{d}");
    }
    eprintln!("df-lint: {} diagnostic(s)", diagnostics.len());
    ExitCode::FAILURE
}
