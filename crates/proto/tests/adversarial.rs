//! Adversarial receive-path tests: everything here feeds the client and the
//! control parser hostile input — random noise, truncations, bit flips,
//! forged headers, cross-session spoofs — and asserts the two robustness
//! invariants the sessions advertise:
//!
//! 1. **No panic.**  `ClientSession::handle_datagram` and the control-channel
//!    parsers are total functions over arbitrary bytes.
//! 2. **Bounded memory.**  However many forged-but-plausible datagrams
//!    arrive, the client never buffers more than
//!    [`ClientSession::buffer_cap`] undecoded packets; the overflow is
//!    refused with a counted [`ClientEvent::Rejected`].
//!
//! Iteration counts are fixed and the RNG is seeded, so this doubles as the
//! CI fuzz smoke: deterministic, a few seconds, no corpus to manage.

use bytes::Bytes;
use df_core::{LtEncoder, PacketizedFile, LT_DEFAULT_C, LT_DEFAULT_DELTA};
use df_proto::{
    seed_to_words, ClientEvent, ClientSession, ControlRequest, ControlResponse, DataPacket,
    FountainServer, PacketHeader, RatelessMode, RatelessReceiver, ServerSession, SessionConfig,
    HEADER_LEN,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

fn random_file(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

fn client_for(data: &[u8], layers: usize, seed: u64) -> (ServerSession, ClientSession) {
    let server = ServerSession::with_defaults(data, layers, seed).unwrap();
    let client = ClientSession::new(server.control_info().clone()).unwrap();
    (server, client)
}

/// The memory invariant checked after every hostile datagram: staged packets
/// plus packets already handed to the decoder never exceed the cap.
fn assert_bounded(client: &ClientSession) {
    assert!(
        client.buffered_packets() + client.decoder_packets_fed() <= client.buffer_cap(),
        "memory bound violated: {} staged + {} fed > cap {}",
        client.buffered_packets(),
        client.decoder_packets_fed(),
        client.buffer_cap()
    );
}

#[test]
fn random_noise_never_panics_the_client_and_is_ignored() {
    let data = random_file(40_000, 1);
    let (_server, mut client) = client_for(&data, 2, 11);
    let mut rng = ChaCha8Rng::seed_from_u64(0xda7a);
    for _ in 0..4_000 {
        let len = rng.gen_range(0..700usize);
        let noise: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let event = client.handle_datagram(Bytes::from(noise));
        // Noise may collide with a plausible header, so Buffered/Rejected
        // are legal; a decode state transition is not.
        assert!(
            !matches!(event, ClientEvent::Complete | ClientEvent::Join { .. }),
            "noise must never complete a download or trigger a join: {event:?}"
        );
        assert_bounded(&client);
    }
    assert!(!client.is_complete());
    assert!(client.file().is_none());
}

#[test]
fn truncations_and_bit_flips_of_honest_packets_never_panic() {
    let data = random_file(60_000, 2);
    let (mut server, mut client) = client_for(&data, 1, 13);
    let mut rng = ChaCha8Rng::seed_from_u64(0xb17f);
    // Collect a round of honest datagrams to mutate.
    let mut honest = Vec::new();
    while let Some((_group, dgram)) = server.poll_transmit() {
        honest.push(dgram);
        if server.round_complete() {
            break;
        }
    }
    assert!(!honest.is_empty());
    for i in 0..6_000 {
        let base = &honest[i % honest.len()];
        let mut bytes = base.to_vec();
        match i % 3 {
            // Truncate anywhere, including mid-header and to zero length.
            0 => bytes.truncate(rng.gen_range(0..bytes.len())),
            // Flip a bit in the serial/group header fields.  (Payload and
            // packet-index corruption is deliberately out of scope: the
            // paper's packets carry no integrity tag beyond the UDP
            // checksum, so a flipped payload is indistinguishable from an
            // honest one and would corrupt the decode by design.)
            1 => {
                let at = rng.gen_range(4..HEADER_LEN);
                bytes[at] ^= 1 << rng.gen_range(0..8u32);
            }
            // Rewrite the header with wild values; keep the payload.
            _ => {
                let forged = PacketHeader {
                    packet_index: rng.gen(),
                    serial: rng.gen(),
                    group: rng.gen(),
                };
                bytes[..HEADER_LEN].copy_from_slice(&forged.encode());
            }
        }
        client.handle_datagram(Bytes::from(bytes));
        assert_bounded(&client);
    }
    // The session must still be able to finish from honest traffic alone.
    let mut tries = 0;
    while !client.is_complete() && tries < 200_000 {
        if let Some((_group, dgram)) = server.poll_transmit() {
            client.handle_datagram(dgram);
        }
        if server.round_complete() {
            server.advance_round();
        }
        tries += 1;
    }
    assert!(client.is_complete(), "mutated traffic poisoned the session");
    assert_eq!(client.file().unwrap(), &data[..]);
}

#[test]
fn a_forged_flood_of_plausible_packets_stays_within_the_memory_bound() {
    // Datagrams that parse fine (valid index range, right payload length)
    // but carry garbage payloads: the worst case for memory, because every
    // one is "new".  With an honest announcement the decoder structurally
    // absorbs or dedupes everything before the cap can fire (the `Rejected`
    // overflow path itself is unit-tested in `client.rs` with a shrunk
    // cap), so the invariant here is the bound, not the rejection.
    let data = random_file(100_000, 3);
    let (server, mut client) = client_for(&data, 1, 17);
    let k = server.control_info().k as u32;
    let n = server.control_info().n as u32;
    let payload_len = server.control_info().packet_size;
    let base_group = server.control_info().base_group;
    let mut rng = ChaCha8Rng::seed_from_u64(0xf100d);
    let frame = |index: u32, serial: u32, rng: &mut ChaCha8Rng| {
        let header = PacketHeader {
            packet_index: index,
            serial,
            group: base_group,
        };
        let junk: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
        DataPacket::frame(&header, &junk)
    };
    // Phase 1: check-packet indices only, each twice.  The decode threshold
    // sits above `k` distinct packets, so no attempt ever fires: the buffer
    // holds exactly the distinct count and every repeat is dropped as a
    // duplicate, not buffered again.
    for lap in 0..2u32 {
        for index in k..n {
            let event = client.handle_datagram(frame(index, index, &mut rng));
            if lap == 1 {
                assert_eq!(event, ClientEvent::Duplicate);
            }
            assert_bounded(&client);
        }
    }
    assert_eq!(client.buffered_packets(), (n - k) as usize);
    assert!(!client.is_complete(), "check packets alone cannot decode");
    // Phase 2: sweep the source indices too.  The bound must hold at every
    // step; whatever the decoder does with forged payloads (the wire format
    // has no integrity tag, so a structural completion over garbage is
    // legal), it must never hoard memory past the cap.
    for index in 0..k {
        client.handle_datagram(frame(index, n + index, &mut rng));
        assert_bounded(&client);
    }
    assert!(
        client.buffered_packets() + client.decoder_packets_fed() <= client.buffer_cap(),
        "the flood must end inside the cap"
    );
}

#[test]
fn cross_session_spoofs_are_ignored_wholesale() {
    // Packets from a *different* session — wrong groups, wrong code — must
    // neither count as progress nor consume the victim's packet buffer.
    let data_a = random_file(50_000, 4);
    let data_b = random_file(50_000, 5);
    let (mut server_b, _) = client_for(&data_b, 3, 23);
    let (_server_a, mut client_a) = client_for(&data_a, 3, 19);
    let received_before = client_a.stats().received();
    for _ in 0..20 {
        while let Some((group, dgram)) = server_b.poll_transmit() {
            // Re-tag with B's shifted group numbering.
            let mut packet = DataPacket::from_bytes(dgram).unwrap();
            packet.header.group = group + 100;
            let event = client_a.handle_datagram(packet.to_bytes());
            assert_eq!(
                event,
                ClientEvent::Ignored,
                "foreign-group traffic must be ignored"
            );
            assert_bounded(&client_a);
        }
        server_b.advance_round();
    }
    assert_eq!(client_a.stats().received(), received_before);
    assert_eq!(client_a.buffered_packets(), 0);
}

#[test]
fn wild_serials_cannot_poison_the_layered_controller() {
    // A layered client fed forged serials from the far future and the far
    // past, interleaved with honest traffic: it must neither panic nor leak
    // memory, and must still finish the download.
    let data = random_file(80_000, 6);
    let (mut server, mut client) = client_for(&data, 4, 29);
    let payload_len = server.control_info().packet_size;
    let base_group = server.control_info().base_group;
    let mut rng = ChaCha8Rng::seed_from_u64(0x5e71a);
    let mut rounds = 0;
    while !client.is_complete() && rounds < 3_000 {
        while let Some((_group, dgram)) = server.poll_transmit() {
            client.handle_datagram(dgram);
            if client.is_complete() {
                break;
            }
        }
        server.advance_round();
        rounds += 1;
        // Every few rounds, a forged serial barrage on a subscribed group.
        if rounds % 5 == 0 {
            for _ in 0..30 {
                let header = PacketHeader {
                    packet_index: rng.gen(),
                    serial: if rng.gen_bool(0.5) { rng.gen() } else { 0 },
                    group: base_group,
                };
                let junk: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
                client.handle_datagram(DataPacket::frame(&header, &junk));
                assert_bounded(&client);
            }
        }
    }
    assert!(client.is_complete(), "forged serials starved the download");
    assert_eq!(client.file().unwrap(), &data[..]);
}

#[test]
fn control_parsers_are_total_over_random_bytes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xc0471);
    for _ in 0..20_000 {
        let len = rng.gen_range(0..256usize);
        let noise: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Totality is the assertion: these must return, not panic.
        let _ = ControlRequest::from_bytes(&noise);
        let _ = ControlResponse::from_bytes(&noise);
    }
}

#[test]
fn mutated_control_round_trips_parse_or_reject_but_never_panic() {
    // Start from well-formed frames and corrupt them: every mutation either
    // still parses (benign flip) or is cleanly rejected.
    let data = random_file(30_000, 7);
    let mut server = FountainServer::new();
    server.add_session(&data, SessionConfig::default()).unwrap();
    let frames: Vec<Bytes> = vec![
        ControlRequest::ListSessions.to_bytes(),
        ControlRequest::Describe { session_id: 0 }.to_bytes(),
        server
            .handle_control(&ControlRequest::ListSessions)
            .to_bytes(),
        server
            .handle_control(&ControlRequest::Describe { session_id: 0 })
            .to_bytes(),
        ControlResponse::BadRequest.to_bytes(),
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(0xbadc0de);
    for i in 0..12_000 {
        let base = &frames[i % frames.len()];
        let mut bytes = base.to_vec();
        match i % 4 {
            0 => bytes.truncate(rng.gen_range(0..bytes.len())),
            1 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0..8u32);
            }
            2 => {
                // Append trailing garbage; the framing demands exact length.
                let extra = rng.gen_range(1..16usize);
                bytes.extend((0..extra).map(|_| rng.gen::<u8>()));
                assert_eq!(
                    ControlRequest::from_bytes(&bytes),
                    None,
                    "oversized request frames must be rejected"
                );
            }
            _ => {
                // Splice two frames together.
                let other = &frames[(i + 1) % frames.len()];
                let cut = rng.gen_range(0..bytes.len());
                bytes.truncate(cut);
                bytes.extend_from_slice(other);
            }
        }
        let _ = ControlRequest::from_bytes(&bytes);
        let _ = ControlResponse::from_bytes(&bytes);
        // The server's own datagram entry point must answer every mutation
        // with a parseable response (BadRequest for the rejects).
        let reply = server.handle_control_datagram(&bytes);
        assert!(
            ControlResponse::from_bytes(&reply).is_some(),
            "the control server must always answer with a well-formed frame"
        );
    }
}

fn rateless_pair(
    data: &[u8],
    mode: RatelessMode,
    code_seed: u64,
) -> (ServerSession, ClientSession) {
    let server = ServerSession::new(
        data,
        SessionConfig {
            rateless: mode,
            code_seed,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let client = ClientSession::new(server.control_info().clone()).unwrap();
    (server, client)
}

/// Frame a rateless datagram for an attacker-chosen seed.
fn seed_frame(seed: u64, group: u32, payload: &[u8]) -> Bytes {
    let (hi, lo) = seed_to_words(seed);
    let header = PacketHeader {
        packet_index: hi,
        serial: lo,
        group,
    };
    DataPacket::frame(&header, payload)
}

#[test]
fn rateless_absurd_degree_floods_hit_the_edge_cap_not_the_heap() {
    // The control channel announces the LT stream seed, so an attacker can
    // grind the seed space for equations of absurd degree: each one parks
    // ~degree edges in the decoder and — with no degree-1 symbol ever
    // arriving — nothing peels, so the equation buffer only grows.  The edge
    // cap must refuse the flood (`ClientEvent::Rejected`) while the buffered
    // state is still far too small for a structural completion over garbage.
    let data = random_file(50_000, 9); // k = 100
    let (server, mut client) = rateless_pair(&data, RatelessMode::Lt, 41);
    let info = server.control_info().clone();
    assert_eq!(info.k, 100);
    // Reconstruct the seed → equation derivation exactly as the session does,
    // and a bare receiver to read the cap geometry off.
    let enc = LtEncoder::new(info.k, LT_DEFAULT_C, LT_DEFAULT_DELTA, info.code_seed).unwrap();
    let mirror = RatelessReceiver::for_lt(info.k, info.packet_size, info.code_seed).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0xc4b5);
    let mut flood = Vec::new();
    let mut edges = 0usize;
    let mut seed = 0u64;
    while edges <= mirror.max_edges() + 256 {
        seed += 1;
        let degree = enc.equation(seed).neighbors.len();
        if degree >= 48 {
            edges += degree;
            flood.push(seed);
        }
    }
    // Sanity on the attack shape: the edge cap bites after far fewer
    // equations than either the equation cap or the `k` equations any
    // decode — honest or structural-over-garbage — would need.
    assert!(
        flood.len() < info.k,
        "flood of {} equations is too large to prove the edge cap fires first",
        flood.len()
    );
    let mut rejected = 0u64;
    for &seed in &flood {
        let junk: Vec<u8> = (0..info.packet_size).map(|_| rng.gen()).collect();
        match client.handle_datagram(seed_frame(seed, info.base_group, &junk)) {
            ClientEvent::Rejected => rejected += 1,
            ClientEvent::Buffered | ClientEvent::Duplicate => {}
            other => panic!("unexpected event under a high-degree flood: {other:?}"),
        }
        assert!(
            client.buffered_packets() <= client.buffer_cap(),
            "equation buffer outgrew its cap: {} > {}",
            client.buffered_packets(),
            client.buffer_cap()
        );
    }
    assert!(rejected > 0, "the edge cap never fired");
    assert_eq!(client.stats().rejected(), rejected);
    assert!(
        !client.is_complete(),
        "an underdetermined flood cannot decode"
    );
    // The same flood against the bare receiver, to watch the edge ledger
    // itself: once `at_capacity` trips, additions stop, so pending edges
    // can overshoot `max_edges` by at most one equation's degree (≤ k).
    let mut mirror = mirror;
    for &seed in &flood {
        if !mirror.at_capacity() {
            mirror.add(seed, vec![0u8; info.packet_size]);
        }
        assert!(mirror.pending_equations() <= mirror.max_equations());
        assert!(mirror.pending_edges() < mirror.max_edges() + info.k);
    }
    assert!(mirror.at_capacity(), "the mirror receiver never saturated");
}

#[test]
fn rateless_colliding_neighbor_sets_reduce_cleanly() {
    // Distinct seeds whose equations land on the *same* neighbor set: after
    // XOR reduction the second of each pair is the empty (degree-0) equation
    // — the closest an attacker can get to a degree-0 symbol, since the
    // soliton derivation itself never emits one.  With honest payloads the
    // residual is all-zero and must be dropped as a duplicate; the session
    // must then still finish cleanly from the ordinary stream.
    let data = random_file(30_000, 10); // k = 60
    let (mut server, mut client) = rateless_pair(&data, RatelessMode::Lt, 43);
    let info = server.control_info().clone();
    let enc = LtEncoder::new(info.k, LT_DEFAULT_C, LT_DEFAULT_DELTA, info.code_seed).unwrap();
    let file = PacketizedFile::split(&data, info.packet_size).unwrap();
    let mut buckets: BTreeMap<Vec<u32>, Vec<u64>> = BTreeMap::new();
    // Grind outside the server's own monotonic seed range so the honest
    // stream later delivers fresh seeds, not replays of the flood.
    for seed in 1_000_000..1_030_000u64 {
        let mut neighbors = enc.equation(seed).neighbors;
        neighbors.sort_unstable();
        buckets.entry(neighbors).or_default().push(seed);
    }
    let colliding: Vec<Vec<u64>> = buckets
        .into_values()
        .filter(|seeds| seeds.len() >= 2)
        .take(8)
        .collect();
    assert!(
        !colliding.is_empty(),
        "no neighbor-set collisions found in 30k seeds"
    );
    for group in &colliding {
        for &seed in group {
            let payload = enc.encode_symbol(seed, file.packets()).unwrap();
            let event = client.handle_datagram(seed_frame(seed, info.base_group, &payload));
            assert!(
                matches!(event, ClientEvent::Buffered | ClientEvent::Duplicate),
                "colliding seed {seed} produced {event:?}"
            );
            assert!(client.buffered_packets() <= client.buffer_cap());
        }
    }
    // Same collisions with *garbage* payloads against a fresh client: the
    // empty equation now carries a nonzero residual (an inconsistency no
    // honest stream can produce).  A handful of equations is far below any
    // completion, so the only legal outcomes are buffer/duplicate.
    let (_, mut poisoned) = rateless_pair(&data, RatelessMode::Lt, 43);
    let mut rng = ChaCha8Rng::seed_from_u64(0xdead);
    for group in &colliding {
        for &seed in group {
            let junk: Vec<u8> = (0..info.packet_size).map(|_| rng.gen()).collect();
            let event = poisoned.handle_datagram(seed_frame(seed, info.base_group, &junk));
            assert!(
                matches!(event, ClientEvent::Buffered | ClientEvent::Duplicate),
                "inconsistent empty equation produced {event:?}"
            );
        }
    }
    assert!(!poisoned.is_complete());
    // The first client saw only honestly-encoded payloads, so the ordinary
    // stream must still converge to the exact file.
    let mut rounds = 0;
    while !client.is_complete() {
        while let Some((_group, dgram)) = server.poll_transmit() {
            if client.handle_datagram(dgram) == ClientEvent::Complete {
                break;
            }
        }
        server.advance_round();
        rounds += 1;
        assert!(rounds < 50, "collision flood poisoned the session");
    }
    assert_eq!(client.file().unwrap(), &data[..]);
}

#[test]
fn rateless_sessions_are_total_over_forged_seeds_and_noise() {
    // Pure hostility, both modes: random seeds with garbage payloads,
    // wrong-length payloads, truncations and raw noise.  The wire format has
    // no integrity tag, so a structural completion over garbage is legal —
    // the invariants are totality and the memory bound, nothing else.
    for (mode, file_seed) in [(RatelessMode::Lt, 11), (RatelessMode::Raptor, 12)] {
        let data = random_file(40_000, file_seed);
        let (server, mut client) = rateless_pair(&data, mode, 47);
        let info = server.control_info().clone();
        let payload_len = match mode {
            // Raptor symbols ride at the (possibly padded) intermediate
            // length; the announced packet size is close enough to land in
            // both the accepted and the length-rejected branches.
            RatelessMode::Raptor => info.packet_size + info.packet_size % 2,
            _ => info.packet_size,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0x7e57 + file_seed);
        for i in 0..3_000usize {
            let dgram = match i % 4 {
                // Forged random seed, correct-length garbage payload.
                0 => {
                    let junk: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
                    seed_frame(rng.gen(), info.base_group, &junk)
                }
                // Wrong-length payload (must be ignored before the decoder).
                1 => {
                    let len = rng.gen_range(0..payload_len * 2);
                    let junk: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                    seed_frame(rng.gen(), info.base_group, &junk)
                }
                // Truncated honest-looking frame.
                2 => {
                    let junk: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
                    let full = seed_frame(rng.gen(), info.base_group, &junk);
                    let cut = rng.gen_range(0..full.len());
                    full.slice(0..cut)
                }
                // Raw noise.
                _ => {
                    let len = rng.gen_range(0..700usize);
                    Bytes::from((0..len).map(|_| rng.gen::<u8>()).collect::<Vec<u8>>())
                }
            };
            let event = client.handle_datagram(dgram);
            assert!(
                !matches!(event, ClientEvent::Join { .. } | ClientEvent::Leave { .. }),
                "rateless sessions have no layers to join: {event:?}"
            );
            assert!(
                client.buffered_packets() <= client.buffer_cap(),
                "memory bound violated under {mode:?} noise"
            );
        }
    }
}

#[test]
fn completion_is_stable_under_continued_hostile_input() {
    // After the file decodes, further datagrams — honest or hostile — keep
    // reporting Complete and never disturb the reconstructed file.
    let data = random_file(30_000, 8);
    let (mut server, mut client) = client_for(&data, 1, 31);
    let mut guard = 0;
    while !client.is_complete() {
        if let Some((_group, dgram)) = server.poll_transmit() {
            client.handle_datagram(dgram);
        }
        if server.round_complete() {
            server.advance_round();
        }
        guard += 1;
        assert!(guard < 200_000, "clean download never finished");
    }
    let file = client.file().unwrap().to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(0xaf7e);
    for _ in 0..2_000 {
        let len = rng.gen_range(0..600usize);
        let noise: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        assert_eq!(
            client.handle_datagram(Bytes::from(noise)),
            ClientEvent::Complete
        );
    }
    assert_eq!(client.file().unwrap(), &file[..]);
}
