//! Exhaustive model-check of df-proto's cross-thread structures under the
//! `loom` shim (`shims/loom`): the [`SimMulticast`] channel's
//! join/leave/send/recv interplay and the [`driver::queue::IntentQueue`]
//! push/pop/disconnect protocol, across **every** interleaving within the
//! branch budget — not the schedule the OS happened to pick.
//!
//! Build and run with `RUSTFLAGS="--cfg df_check" cargo test -p df-proto
//! --test model_check` — the CI `model-check` job does exactly this.  Under
//! that cfg `crate::sync` resolves `Arc`/`Mutex`/`atomic` to the loom shim,
//! so every lock and atomic operation is a schedule point.
//!
//! Flake guard: every test runs through [`checked`], which sets an explicit
//! `max_branches` cap (blow-ups fail loudly as "exploration truncated"
//! instead of hanging CI) and asserts the explored count stays under half the
//! cap so growth is caught while runs are still fast.  All consumer loops are
//! bounded — unbounded spin loops diverge the DPOR search (see the loom shim
//! crate docs).
#![cfg(df_check)]

use bytes::Bytes;
use df_proto::driver::queue::{bounded, PopError, PushError};
use df_proto::driver::shard::{flush_pending, FlushState};
use df_proto::transport::{SimMulticast, Transport};
use loom::model::Builder;
use loom::thread;
use std::collections::VecDeque;

fn checked(max_branches: usize, f: impl Fn() + Send + Sync + 'static) {
    checked_with(max_branches, None, f);
}

/// Like [`checked`] but with a preemption bound: sound bounded exploration
/// for the tests whose unbounded DPOR space is too large for CI.  Almost all
/// concurrency bugs manifest within two preemptions (CHESS's empirical
/// result), so `Some(2)` keeps the guarantee meaningful.
fn checked_with(
    max_branches: usize,
    preemption_bound: Option<usize>,
    f: impl Fn() + Send + Sync + 'static,
) {
    let explored = Builder {
        max_branches,
        preemption_bound,
        ..Builder::new()
    }
    .explored(f);
    assert!(
        explored <= max_branches / 2,
        "state space grew to {explored} schedules (cap {max_branches}); \
         shrink the test or justify a bigger cap"
    );
}

/// Two producers race a concurrently-popping consumer: every accepted intent
/// is delivered exactly once and per-producer FIFO order survives any
/// interleaving.
#[test]
fn intent_queue_no_loss_no_dup_fifo() {
    // Three threads × ~10 schedule points: the unbounded DPOR space is too
    // large for CI, so this one runs with a preemption bound of 2.
    checked_with(60_000, Some(2), || {
        let (tx, rx) = bounded::<u32>(4);
        let tx_a = tx.clone();
        let tx_b = tx.clone();
        drop(tx);
        let a = thread::spawn(move || {
            tx_a.push(1).unwrap();
            tx_a.push(2).unwrap();
        });
        let b = thread::spawn(move || {
            tx_b.push(10).unwrap();
        });
        // Bounded concurrent pops; the post-join drain below catches the rest.
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Ok(v) = rx.try_pop() {
                got.push(v);
            }
        }
        a.join().unwrap();
        b.join().unwrap();
        // Producers are gone: pops now yield items then Disconnected, within
        // ring-size + 1 iterations.
        for _ in 0..4 {
            match rx.try_pop() {
                Ok(v) => got.push(v),
                Err(PopError::Disconnected) => break,
                Err(PopError::Empty) => unreachable!("Empty after all senders dropped"),
            }
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [1, 2, 10], "lost or duplicated intent: {got:?}");
        let a_seq: Vec<u32> = got.iter().copied().filter(|&v| v == 1 || v == 2).collect();
        assert_eq!(a_seq, [1, 2], "producer A's intents reordered: {got:?}");
    });
}

/// `Disconnected` is only ever reported after every pushed intent has been
/// delivered — the senders-count-before-ring read order in `try_pop` is what
/// guarantees it, and reordering those two reads makes this test fail.
#[test]
fn intent_queue_disconnect_never_strands_an_intent() {
    checked(20_000, || {
        let (tx, rx) = bounded::<u32>(2);
        let t = thread::spawn(move || {
            tx.push(42).unwrap();
            // Sender drops at thread end: the Release decrement races the
            // consumer's Acquire read below.
        });
        let mut delivered = 0u32;
        for _ in 0..4 {
            match rx.try_pop() {
                Ok(v) => {
                    assert_eq!(v, 42);
                    delivered += 1;
                }
                Err(PopError::Disconnected) => {
                    assert_eq!(delivered, 1, "Disconnected with an intent still in flight");
                }
                Err(PopError::Empty) => {}
            }
        }
        t.join().unwrap();
        // Post-join the queue state is settled: drain whatever is left.
        while let Ok(v) = rx.try_pop() {
            assert_eq!(v, 42);
            delivered += 1;
        }
        assert_eq!(delivered, 1, "intent lost or duplicated");
    });
}

/// Backpressure at capacity 1: a refused push hands the intent back intact,
/// and bounded retries never duplicate — the consumer receives exactly the
/// accepted multiset.
#[test]
fn intent_queue_full_returns_intent_without_loss() {
    checked(60_000, || {
        let (tx, rx) = bounded::<u32>(1);
        let t = thread::spawn(move || {
            let mut accepted = Vec::new();
            for v in [5u32, 6] {
                let mut item = v;
                // Bounded retry: an unbounded spin would diverge the search.
                for _ in 0..2 {
                    match tx.push(item) {
                        Ok(()) => {
                            accepted.push(v);
                            break;
                        }
                        Err(PushError::Full(back)) => item = back,
                        Err(PushError::Closed(_)) => unreachable!("receiver is alive"),
                    }
                }
            }
            accepted
        });
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Ok(v) = rx.try_pop() {
                got.push(v);
            }
        }
        let accepted = t.join().unwrap();
        while let Ok(v) = rx.try_pop() {
            got.push(v);
        }
        assert_eq!(got, accepted, "delivered set diverged from accepted set");
    });
}

/// Shard shutdown vs in-flight event handoff, happy half: a worker whose
/// final `flush_pending` fits the queue capacity flushes everything, and the
/// control plane — popping concurrently and then draining after the join —
/// receives every event exactly once, in order, before `Disconnected`.  This
/// is the worker-exit path of `driver::shard`'s teardown protocol.
#[test]
fn shard_teardown_flush_strands_nothing() {
    checked(60_000, || {
        let (tx, rx) = bounded::<u32>(4);
        let worker = thread::spawn(move || {
            let mut pending: VecDeque<u32> = VecDeque::from([1, 2, 3]);
            // Capacity ≥ pending: one pass must flush everything.
            assert_eq!(flush_pending(&mut pending, &tx), FlushState::Flushed);
            // The sender drops at thread end: its Release decrement races
            // the concurrent pops below.
        });
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Ok(v) = rx.try_pop() {
                got.push(v);
            }
        }
        worker.join().unwrap();
        for _ in 0..4 {
            match rx.try_pop() {
                Ok(v) => got.push(v),
                Err(PopError::Disconnected) => break,
                Err(PopError::Empty) => unreachable!("Empty after worker exited"),
            }
        }
        assert_eq!(got, [1, 2, 3], "teardown lost, duplicated or reordered");
    });
}

/// Shard shutdown vs in-flight event handoff, backpressure half: with the
/// event queue at capacity 1, a worker's bounded flush attempts may leave a
/// backlog — which must ride the `Stopped` ack rather than be dropped.  The
/// control plane's view (queue events, then ack leftovers) is exactly the
/// pending set, in order, whatever the interleaving.
#[test]
fn shard_teardown_backlog_rides_the_stopped_ack() {
    checked(60_000, || {
        let (ev_tx, ev_rx) = bounded::<u32>(1);
        let (ack_tx, ack_rx) = bounded::<Vec<u32>>(2);
        let worker = thread::spawn(move || {
            let mut pending: VecDeque<u32> = VecDeque::from([1, 2]);
            // Bounded flush attempts (an unbounded retry loop would diverge
            // the DPOR search); capacity 1 means at least one event backlogs
            // unless the consumer drains between passes.
            for _ in 0..2 {
                if flush_pending(&mut pending, &ev_tx) != FlushState::Backlogged {
                    break;
                }
            }
            // Teardown: whatever could not be flushed rides the ack.
            let leftover: Vec<u32> = pending.drain(..).collect();
            ack_tx.push(leftover).expect("ack ring has room");
        });
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Ok(v) = ev_rx.try_pop() {
                got.push(v);
            }
        }
        worker.join().unwrap();
        loop {
            match ev_rx.try_pop() {
                Ok(v) => got.push(v),
                Err(PopError::Disconnected) => break,
                Err(PopError::Empty) => unreachable!("Empty after worker exited"),
            }
        }
        let leftover = ack_rx.try_pop().expect("worker always acks before exit");
        got.extend(leftover);
        assert_eq!(
            got,
            [1, 2],
            "teardown handoff lost, duplicated or reordered"
        );
    });
}

/// A subscribed receiver racing a two-datagram sender: lossless channel, so
/// both datagrams arrive, in send order, exactly once — whatever the
/// interleaving of sends and concurrent receives.
#[test]
fn sim_multicast_send_recv_fifo() {
    checked(60_000, || {
        let net = SimMulticast::new(7);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.0);
        rx.join(0).unwrap();
        let sender = thread::spawn(move || {
            tx.send(0, Bytes::from_static(b"a"));
            tx.send(0, Bytes::from_static(b"b"));
        });
        let mut got = Vec::new();
        for _ in 0..2 {
            if let Some((group, data)) = rx.recv() {
                assert_eq!(group, 0);
                got.push(data);
            }
        }
        sender.join().unwrap();
        while let Some((_, data)) = rx.recv() {
            got.push(data);
        }
        assert_eq!(
            got.len(),
            2,
            "lossless channel lost or duplicated a datagram"
        );
        assert_eq!(&got[0][..], b"a", "datagrams reordered");
        assert_eq!(&got[1][..], b"b", "datagrams reordered");
        assert_eq!(net.sent(), 2);
        assert_eq!(net.delivered(), 2);
    });
}

/// Join racing a send: the datagram is either delivered (join won) or cleanly
/// missed (send won) — never torn state — and the channel's delivered counter
/// always agrees with what the receiver drained.  The subsequent leave is
/// then absolute: nothing sent after it arrives.
#[test]
fn sim_multicast_join_leave_vs_send() {
    checked(40_000, || {
        let net = SimMulticast::new(3);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.0);
        let sender = thread::spawn(move || {
            tx.send(0, Bytes::from_static(b"racing"));
            tx
        });
        rx.join(0).unwrap();
        let mut tx = sender.join().unwrap();
        let drained = std::iter::from_fn(|| rx.recv()).count() as u64;
        assert!(drained <= 1, "one send delivered twice");
        assert_eq!(
            net.delivered(),
            drained,
            "delivery counter disagrees with queue"
        );
        rx.leave(0);
        tx.send(0, Bytes::from_static(b"after leave"));
        assert!(rx.recv().is_none(), "datagram delivered after leave");
        assert_eq!(net.sent(), 2);
    });
}

/// Two endpoints registering (and joining) concurrently get distinct receiver
/// slots: a datagram sent afterwards reaches both, and neither registration
/// clobbered the other.
#[test]
fn sim_multicast_concurrent_endpoint_registration() {
    checked(40_000, || {
        let net = SimMulticast::new(11);
        let n1 = net.clone();
        let n2 = net.clone();
        let t1 = thread::spawn(move || {
            let mut ep = n1.endpoint(0.0);
            ep.join(0).unwrap();
            ep
        });
        let t2 = thread::spawn(move || {
            let mut ep = n2.endpoint(0.0);
            ep.join(0).unwrap();
            ep
        });
        let mut ep1 = t1.join().unwrap();
        let mut ep2 = t2.join().unwrap();
        let mut tx = net.endpoint(0.0);
        tx.send(0, Bytes::from_static(b"both"));
        for ep in [&mut ep1, &mut ep2] {
            let (group, data) = ep.recv().expect("registration race dropped a receiver");
            assert_eq!(group, 0);
            assert_eq!(&data[..], b"both");
        }
        assert_eq!(net.delivered(), 2);
    });
}
