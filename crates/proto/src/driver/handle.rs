//! The redesigned driver API surface: configuration, handles and events.
//!
//! The sharded [`Driver`] replaces three
//! single-threaded assumptions baked into the old `EventLoop`-only API:
//!
//! * **Raw tokens** — a [`Token`] indexes one loop's
//!   slot table, which is meaningless once sessions live on N loops.
//!   Registration now returns a [`SessionHandle`] pairing the owning shard
//!   with its shard-local token.
//! * **Callbacks on the loop thread** — completion used to invoke a closure
//!   while the loop held `&mut self`; with worker threads that contract
//!   would run owner code on an arbitrary shard.  Completion (and every
//!   other notification) is now a [`DriverEvent`] drained from the control
//!   thread via [`Driver::poll_events`](crate::driver::Driver::poll_events).
//! * **Constructor soup** — shard count, placement policy and pacing
//!   interact, so they are grouped in a builder-style [`DriverConfig`].

use crate::client::{ClientSession, DownloadStats};
use crate::driver::placement::Placement;
use crate::driver::shard::Driver;
use crate::driver::{EventLoopStats, Pacing, Token};
use crate::transport::Transport;
use std::time::Duration;

/// Identifies one session registered with a [`Driver`]:
/// the shard that owns it plus its shard-local [`Token`].  Handles are opaque
/// to callers — the accessors exist for logging and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionHandle {
    shard: usize,
    token: Token,
}

impl SessionHandle {
    pub(crate) fn new(shard: usize, token: Token) -> SessionHandle {
        SessionHandle { shard, token }
    }

    /// Index of the worker shard that owns this session's slot and sockets.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The session's token *within its shard's loop*.  Tokens from different
    /// shards collide freely; only the (shard, token) pair is unique.
    pub fn token(&self) -> Token {
        self.token
    }
}

/// One notification from a [`Driver`], drained on the
/// control thread via
/// [`Driver::poll_events`](crate::driver::Driver::poll_events).
///
/// This is the cross-thread analogue of
/// [`LoopEvent`](crate::driver::LoopEvent): shard workers forward their
/// loops' events through the driver's bounded event queue, wrapping tokens
/// into [`SessionHandle`]s and — for completions — carrying the finished
/// session itself back to the owner (its transport is dropped on the worker,
/// closing the sockets a finished receiver no longer needs).
#[derive(Debug)]
pub enum DriverEvent {
    /// A client finished its download; the decoded file is in `session`.
    Completed {
        /// Handle the session was registered under.
        handle: SessionHandle,
        /// Reception statistics at the moment of completion.
        stats: DownloadStats,
        /// The finished session, moved off the shard.
        session: Box<ClientSession>,
    },
    /// A client's Join intent failed at its transport; the layer's datagrams
    /// read as loss (see
    /// [`LoopEvent::JoinFailed`](crate::driver::LoopEvent::JoinFailed)).
    JoinFailed {
        /// Handle of the session whose join failed.
        handle: SessionHandle,
        /// The multicast group that could not be joined.
        group: u32,
    },
    /// A client registration failed on its shard (an initial join refused).
    /// The handle returned by the add is dead: it never occupied a slot.
    AddFailed {
        /// The dead handle.
        handle: SessionHandle,
        /// Display form of the I/O error (errors are not `Clone`, and the
        /// event crosses a thread boundary).
        error: String,
    },
}

impl DriverEvent {
    /// The handle this event concerns.
    pub fn handle(&self) -> SessionHandle {
        match self {
            DriverEvent::Completed { handle, .. }
            | DriverEvent::JoinFailed { handle, .. }
            | DriverEvent::AddFailed { handle, .. } => *handle,
        }
    }
}

/// Final accounting returned by
/// [`Driver::shutdown`](crate::driver::Driver::shutdown).
#[derive(Debug, Default)]
pub struct DriverReport {
    /// Lifetime loop counters per shard, indexed by shard.
    pub shard_stats: Vec<EventLoopStats>,
    /// Events still undrained at shutdown (completions the caller never
    /// polled, plus any teardown leftovers handed back by workers).
    pub events: Vec<DriverEvent>,
}

impl DriverReport {
    /// Field-wise sum of every shard's counters.
    pub fn total_stats(&self) -> EventLoopStats {
        self.shard_stats
            .iter()
            .fold(EventLoopStats::default(), |acc, s| acc.merge(*s))
    }
}

/// Builder-style configuration for a sharded [`Driver`].
///
/// ```
/// use df_proto::driver::{DriverConfig, Placement, Pacing};
/// use df_proto::SimEndpoint;
/// use std::time::Duration;
///
/// let driver = DriverConfig::new()
///     .shards(2)
///     .placement(Placement::LeastLoaded)
///     .pacing(Pacing::new(Duration::from_millis(1), 64))
///     .stepped(true)
///     .build::<SimEndpoint>();
/// assert_eq!(driver.shards(), 2);
/// driver.shutdown().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    pub(crate) shards: usize,
    pub(crate) placement: Placement,
    pub(crate) pacing: Pacing,
    pub(crate) stepped: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            shards: 1,
            placement: Placement::GroupRange,
            pacing: Pacing::new(Duration::from_millis(1), 256),
            stepped: false,
        }
    }
}

impl DriverConfig {
    /// The default configuration: one shard, group-range placement, paced
    /// wall-clock workers.
    pub fn new() -> DriverConfig {
        DriverConfig::default()
    }

    /// Number of worker shards (clamped to at least 1).  Each shard is one
    /// `EventLoop` on its own thread.
    pub fn shards(mut self, shards: usize) -> DriverConfig {
        self.shards = shards.max(1);
        self
    }

    /// How sessions are assigned to shards at registration time.
    pub fn placement(mut self, placement: Placement) -> DriverConfig {
        self.placement = placement;
        self
    }

    /// Default pacing for server sessions added without an explicit pacing.
    /// This is the *aggregate* budget of one logical server: when a carousel
    /// is replicated across shards the driver splits it with
    /// [`Pacing::split`] so the total emission rate is shard-count
    /// invariant.
    pub fn pacing(mut self, pacing: Pacing) -> DriverConfig {
        self.pacing = pacing;
        self
    }

    /// Stepped mode: workers tick only when the control thread calls
    /// [`Driver::step`](crate::driver::Driver::step) /
    /// [`Driver::step_until_complete`](crate::driver::Driver::step_until_complete),
    /// each step being one deterministic `EventLoop::step`.  This is the
    /// mode the simulation experiments use; paced mode (the default) runs
    /// each worker's wall-clock loop continuously.
    pub fn stepped(mut self, stepped: bool) -> DriverConfig {
        self.stepped = stepped;
        self
    }

    /// Spawn the worker threads and return the driver facade.
    pub fn build<T: Transport + Send + 'static>(self) -> Driver<T> {
        Driver::new(self)
    }
}
