//! Bounded MPSC handoff queue for cross-loop intents.
//!
//! Today's [`EventLoop`](crate::driver::EventLoop) executes Join/Leave
//! intents inline — sessions and sockets live on one thread.  The ROADMAP's
//! multi-core driver shards sessions across worker loops, and at that point
//! a worker that decides "leave group 3" must hand the intent to the loop
//! that *owns* the socket.  [`IntentQueue`] is that handoff edge: a bounded
//! multi-producer single-consumer queue carrying [`LoopIntent`]s, small
//! enough to model-check exhaustively (`tests/model_check.rs` under
//! `RUSTFLAGS=--cfg df_check` explores every interleaving of its push/pop
//! protocol and proves no intent is lost, duplicated or reordered).
//!
//! # Why bounded, why errors instead of blocking
//!
//! An unbounded intent queue converts a stalled owner loop into unbounded
//! memory growth; a blocking push converts it into a stalled *worker* loop.
//! Both are the failure modes the driver exists to avoid, so `push` returns
//! the intent to the caller on a full queue ([`PushError::Full`]) and the
//! caller treats it like channel loss — the same discipline the rest of the
//! protocol applies to its best-effort channel.  Join/Leave intents are
//! idempotent to re-send; a completion handoff retries on the next tick.
//!
//! # The disconnect protocol
//!
//! `try_pop` reads the live-sender count **before** draining the ring.  A
//! producer's final push happens-before its `Release` decrement of that
//! count, so if the consumer observes zero senders *and then* finds the ring
//! empty, no intent can still be in flight — [`PopError::Disconnected`] is
//! only ever reported after every pushed intent has been delivered.  (Read
//! the two in the other order and an intent pushed between them is silently
//! stranded; the model-check suite catches exactly that bug if you reorder
//! the lines.)

use crate::driver::Token;
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};
use std::collections::VecDeque;

/// A subscription or lifecycle decision made on one loop that must be
/// executed on the loop owning the slot's transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopIntent {
    /// Subscribe the slot's transport to `group`.
    Join {
        /// Slot whose transport executes the join.
        token: Token,
        /// Multicast group to join.
        group: u32,
    },
    /// Unsubscribe the slot's transport from `group`.
    Leave {
        /// Slot whose transport executes the leave.
        token: Token,
        /// Multicast group to leave.
        group: u32,
    },
    /// The slot's client session finished decoding; the owning loop should
    /// leave its groups and fire the completion callback.
    Completed {
        /// Slot that completed.
        token: Token,
    },
}

/// Why a [`IntentSender::push`] was refused; the intent comes back to the
/// caller either way.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; retry on a later tick or drop like loss.
    Full(T),
    /// The consumer is gone; the intent can never be delivered.
    Closed(T),
}

/// Why a [`IntentReceiver::try_pop`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// No intent queued right now, but producers are still live.
    Empty,
    /// Every producer is gone and the ring is drained: no intent will ever
    /// arrive again.
    Disconnected,
}

struct Shared<T> {
    ring: Mutex<VecDeque<T>>,
    /// Live [`IntentSender`] clones; the final drop's `Release` decrement is
    /// what makes [`PopError::Disconnected`] loss-free (see module docs).
    senders: AtomicUsize,
    /// Set when the [`IntentReceiver`] drops, so producers fail fast with
    /// [`PushError::Closed`] instead of filling a ring nobody drains.
    rx_gone: AtomicBool,
    capacity: usize,
}

/// Producer half of an [`IntentQueue`]; clone one per worker loop.
pub struct IntentSender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half of an [`IntentQueue`]; owned by the loop that executes the
/// intents.
pub struct IntentReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded MPSC intent queue with room for `capacity` intents.
///
/// `capacity` is clamped to at least 1 (a zero-capacity queue could never
/// deliver anything).
pub fn bounded<T>(capacity: usize) -> (IntentSender<T>, IntentReceiver<T>) {
    let shared = Arc::new(Shared {
        ring: Mutex::new(VecDeque::new()),
        senders: AtomicUsize::new(1),
        rx_gone: AtomicBool::new(false),
        capacity: capacity.max(1),
    });
    (
        IntentSender {
            shared: shared.clone(),
        },
        IntentReceiver { shared },
    )
}

/// A bounded MPSC queue of [`LoopIntent`]s — the concrete instantiation the
/// multi-core driver will use.
pub type IntentQueue = (IntentSender<LoopIntent>, IntentReceiver<LoopIntent>);

impl<T> IntentSender<T> {
    /// Enqueue `intent`, or hand it back if the queue is full or the
    /// consumer is gone.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when `capacity` intents are already queued;
    /// [`PushError::Closed`] when the receiver has been dropped.
    pub fn push(&self, intent: T) -> Result<(), PushError<T>> {
        // ordering: Acquire pairs with the Release store in
        // IntentReceiver::drop; Closed is advisory (a racing drop may still
        // strand this intent in the ring) so no stronger edge is needed.
        if self.shared.rx_gone.load(Ordering::Acquire) {
            return Err(PushError::Closed(intent));
        }
        let mut ring = self.shared.ring.lock();
        if ring.len() >= self.shared.capacity {
            return Err(PushError::Full(intent));
        }
        ring.push_back(intent);
        Ok(())
    }

    /// Number of intents currently queued (racy snapshot; use only for
    /// telemetry and backpressure heuristics).
    pub fn len(&self) -> usize {
        self.shared.ring.lock().len()
    }

    /// Whether the queue currently holds no intents (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this queue was created with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Clone for IntentSender<T> {
    fn clone(&self) -> Self {
        // ordering: Relaxed suffices — the count only needs to be exact, not
        // to publish data; cloning happens-before any push on the clone via
        // the Arc handoff that delivers it to the other thread.
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        IntentSender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for IntentSender<T> {
    fn drop(&mut self) {
        // ordering: Release pairs with the Acquire load at the top of
        // try_pop — everything this sender pushed is visible to a consumer
        // that observes the decremented count (the loss-freedom argument in
        // the module docs hangs on this edge).
        self.shared.senders.fetch_sub(1, Ordering::Release);
    }
}

impl<T> std::fmt::Debug for IntentSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntentSender")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> IntentReceiver<T> {
    /// Dequeue the oldest intent, if any.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] when nothing is queued but producers are live;
    /// [`PopError::Disconnected`] only once every producer has dropped *and*
    /// every intent they pushed has been delivered — never while an intent
    /// is still in flight.
    pub fn try_pop(&self) -> Result<T, PopError> {
        // Read the sender count BEFORE draining the ring: a push
        // happens-before its sender's final decrement, so zero-then-empty
        // proves nothing is in flight.  (Reordering these two reads is the
        // lost-intent bug the model-check suite exists to catch.)
        // ordering: Acquire pairs with the Release fetch_sub in
        // IntentSender::drop, making all pre-drop pushes visible to the lock
        // acquire below.
        let senders = self.shared.senders.load(Ordering::Acquire);
        if let Some(intent) = self.shared.ring.lock().pop_front() {
            return Ok(intent);
        }
        if senders == 0 {
            Err(PopError::Disconnected)
        } else {
            Err(PopError::Empty)
        }
    }

    /// Number of intents currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        self.shared.ring.lock().len()
    }

    /// Whether the queue currently holds no intents (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for IntentReceiver<T> {
    fn drop(&mut self) {
        // ordering: Release so a producer whose Acquire load sees the flag
        // also sees any state the consumer published before abandoning the
        // queue; exactness beyond that is not required (Closed is advisory).
        self.shared.rx_gone.store(true, Ordering::Release);
    }
}

impl<T> std::fmt::Debug for IntentReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntentReceiver")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(all(test, not(df_check)))]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(3);
        for g in 0..3u32 {
            tx.push(LoopIntent::Join {
                token: Token(0),
                group: g,
            })
            .unwrap();
        }
        assert_eq!(
            tx.push(LoopIntent::Completed { token: Token(0) }),
            Err(PushError::Full(LoopIntent::Completed { token: Token(0) }))
        );
        for g in 0..3u32 {
            assert_eq!(
                rx.try_pop(),
                Ok(LoopIntent::Join {
                    token: Token(0),
                    group: g
                })
            );
        }
        assert_eq!(rx.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn disconnect_reported_only_after_drain() {
        let (tx, rx) = bounded(4);
        tx.push(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(7));
        assert_eq!(rx.try_pop(), Err(PopError::Disconnected));
    }

    #[test]
    fn closed_when_receiver_gone() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.push(1u32), Err(PushError::Closed(1)));
    }

    #[test]
    fn cross_thread_handoff_is_complete() {
        let (tx, rx) = bounded(64);
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for g in 0..16u32 {
                        tx.push(LoopIntent::Join {
                            token: Token(t as usize),
                            group: g,
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        loop {
            match rx.try_pop() {
                Ok(i) => got.push(i),
                Err(PopError::Empty) => std::thread::yield_now(),
                Err(PopError::Disconnected) => break,
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 64);
        // Per-producer FIFO: each token's groups arrive in push order.
        for t in 0..4usize {
            let groups: Vec<u32> = got
                .iter()
                .filter_map(|i| match i {
                    LoopIntent::Join { token, group } if token.0 == t => Some(*group),
                    _ => None,
                })
                .collect();
            assert_eq!(groups, (0..16u32).collect::<Vec<_>>());
        }
    }
}
