//! The sharded driver: N per-core event loops behind one facade.
//!
//! # Ownership model
//!
//! A [`Driver`] spawns one worker thread per shard, each running its own
//! [`EventLoop`].  A session registered with the driver is *moved* to its
//! shard — slot, session and transport (with its sockets and multicast
//! memberships) live and die on that one thread, so no lock ever guards a
//! socket and no membership migrates between threads.  The control plane
//! (whichever thread owns the `Driver`) talks to workers exclusively through
//! three bounded [`IntentQueue`](crate::driver::queue)s per shard:
//!
//! * **commands** (control → worker): session adds, step batches, shutdown;
//! * **acks** (worker → control): step/shutdown acknowledgements carrying
//!   the shard's loop counters;
//! * **events** (workers → control, one queue shared by all shards):
//!   [`DriverEvent`]s — completions (carrying the finished session back),
//!   failed joins, failed adds.
//!
//! The queues are the PR 9 `IntentQueue`: bounded, loss-free on disconnect
//! (a worker's final flush happens-before its sender drop, so the control
//! plane's `Disconnected` implies it has seen every event).  Workers never
//! block on a full event queue mid-iteration — events buffer in a local
//! `pending` deque and flush opportunistically; the teardown handoff is the
//! model-checked path (`tests/model_check.rs` under `--cfg df_check`).
//!
//! # Token prediction
//!
//! Commands to one shard are FIFO, and an `EventLoop` assigns tokens
//! sequentially, so the control plane *predicts* each session's
//! [`Token`] at registration time and returns a [`SessionHandle`]
//! immediately — no round-trip.  When an add fails on the worker (an
//! initial join refused), the worker burns the predicted token on a vacant
//! slot to stay aligned and reports [`DriverEvent::AddFailed`].
//!
//! # Stepped vs paced workers
//!
//! In **stepped** mode ([`DriverConfig::stepped`]) workers tick only on
//! [`Driver::step`] — each shard executes the same step budget and the call
//! returns when every shard acknowledges, giving the deterministic cadence
//! the simulation experiments need.  In **paced** mode workers run their
//! loops' wall-clock pacing continuously; the control plane just drains
//! events ([`Driver::wait_complete`] / [`Driver::poll_events`]).

use crate::client::ClientSession;
use crate::driver::handle::{DriverConfig, DriverEvent, DriverReport, SessionHandle};
use crate::driver::placement::Placer;
use crate::driver::queue::{bounded, IntentReceiver, IntentSender, PopError, PushError};
use crate::driver::{EventLoop, EventLoopStats, LoopEvent, Pacing, Token};
use crate::server::{FountainServer, ServerSession};
use crate::transport::Transport;
use std::collections::{HashSet, VecDeque};
use std::io;
use std::net::UdpSocket;
use std::thread;
use std::time::{Duration, Instant};

/// Shared by all shards; sized for a large completion burst (it only ever
/// backs up if the owner stops draining, and workers buffer past it anyway).
const EVENT_QUEUE_CAP: usize = 4096;
/// Per shard; adds and step batches are control-paced, so small.
const COMMAND_QUEUE_CAP: usize = 256;
/// Per shard; the control plane keeps at most one ack outstanding.
const ACK_QUEUE_CAP: usize = 4;

/// One control-plane instruction to a shard worker.
enum ShardCommand<T> {
    AddClient {
        token: Token,
        session: Box<ClientSession>,
        transport: T,
    },
    AddServerSession {
        token: Token,
        session: Box<ServerSession>,
        transport: T,
        pacing: Pacing,
    },
    AddFountainServer {
        token: Token,
        server: Box<FountainServer>,
        transport: T,
        control: Option<UdpSocket>,
        pacing: Pacing,
    },
    /// Execute `steps` deterministic loop steps, then acknowledge.
    Step { steps: usize },
    /// Flush, acknowledge with final counters, and exit.
    Shutdown,
}

/// A worker's acknowledgement back to the control plane.
enum ShardAck {
    /// A `Step` batch finished; `stats` are the loop's lifetime counters.
    Stepped { stats: EventLoopStats },
    /// The worker tore down.  `leftover` holds events that could not be
    /// flushed through the (bounded) event queue before exit — the other
    /// half of the loss-free teardown handoff.
    Stopped {
        stats: EventLoopStats,
        leftover: Vec<DriverEvent>,
    },
}

/// Outcome of one [`flush_pending`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushState {
    /// Every pending event was pushed.
    Flushed,
    /// The queue filled; the refused event is back at the *front* of
    /// `pending` (order preserved), retry later.
    Backlogged,
    /// The consumer is gone; `pending` was dropped (nobody can ever read
    /// the events).
    Closed,
}

/// Push buffered events into a bounded sender, preserving order and losing
/// nothing on backpressure.  This is the worker-side half of the teardown
/// handoff protocol the loom suite model-checks, so it is `pub`: the model
/// test drives it directly against a concurrent consumer.
pub fn flush_pending<E>(pending: &mut VecDeque<E>, tx: &IntentSender<E>) -> FlushState {
    while let Some(event) = pending.pop_front() {
        match tx.push(event) {
            Ok(()) => {}
            Err(PushError::Full(event)) => {
                pending.push_front(event);
                return FlushState::Backlogged;
            }
            Err(PushError::Closed(_)) => {
                pending.clear();
                return FlushState::Closed;
            }
        }
    }
    FlushState::Flushed
}

/// Worker-thread state for one shard.
struct Worker<T: Transport> {
    shard: usize,
    stepped: bool,
    el: EventLoop<T>,
    /// Events observed but not yet pushed through the bounded queue.
    pending: VecDeque<DriverEvent>,
    events: IntentSender<DriverEvent>,
    acks: IntentSender<ShardAck>,
}

impl<T: Transport> Worker<T> {
    /// Apply one add command, burning the predicted token on failure so the
    /// control plane's token prediction stays aligned with the loop.
    fn apply(&mut self, cmd: ShardCommand<T>) {
        match cmd {
            ShardCommand::AddClient {
                token,
                session,
                transport,
            } => match self.el.add_client(*session, transport) {
                Ok(actual) => debug_assert_eq!(actual, token, "token prediction drifted"),
                Err(error) => self.burn(token, error),
            },
            ShardCommand::AddServerSession {
                token,
                session,
                transport,
                pacing,
            } => {
                let actual = self.el.add_server_session(*session, transport, pacing);
                debug_assert_eq!(actual, token, "token prediction drifted");
            }
            ShardCommand::AddFountainServer {
                token,
                server,
                transport,
                control,
                pacing,
            } => match self
                .el
                .add_fountain_server(*server, transport, control, pacing)
            {
                Ok(actual) => debug_assert_eq!(actual, token, "token prediction drifted"),
                Err(error) => self.burn(token, error),
            },
            ShardCommand::Step { .. } | ShardCommand::Shutdown => {
                unreachable!("handled by the worker loop")
            }
        }
    }

    fn burn(&mut self, token: Token, error: io::Error) {
        let actual = self.el.push_vacant();
        debug_assert_eq!(actual, token, "token prediction drifted");
        self.pending.push_back(DriverEvent::AddFailed {
            handle: SessionHandle::new(self.shard, token),
            error: error.to_string(),
        });
    }

    /// Move the loop's buffered events into `pending` as [`DriverEvent`]s.
    /// Completions pull the finished session out of its slot; its transport
    /// is dropped *here*, on the owning shard, closing the sockets a
    /// finished receiver no longer needs.
    fn collect_loop_events(&mut self) {
        for event in self.el.poll_events() {
            let event = match event {
                LoopEvent::Completed { token, stats } => {
                    let (session, transport) = self
                        .el
                        .take_client(token)
                        .expect("a Completed event's token holds a client slot");
                    drop(transport);
                    DriverEvent::Completed {
                        handle: SessionHandle::new(self.shard, token),
                        stats,
                        session: Box::new(session),
                    }
                }
                LoopEvent::JoinFailed { token, group } => DriverEvent::JoinFailed {
                    handle: SessionHandle::new(self.shard, token),
                    group,
                },
            };
            self.pending.push_back(event);
        }
    }

    /// Run one `Step` batch and acknowledge it.  Events are flushed *before*
    /// the ack so a control plane that has seen the ack (and keeps draining)
    /// observes every event the batch produced no later than the next
    /// [`Driver::poll_events`].
    fn run_steps(&mut self, steps: usize) {
        for _ in 0..steps {
            self.el.step();
            self.collect_loop_events();
            if flush_pending(&mut self.pending, &self.events) == FlushState::Closed {
                break;
            }
        }
        loop {
            match flush_pending(&mut self.pending, &self.events) {
                FlushState::Flushed | FlushState::Closed => break,
                // The control plane is awaiting our ack and drains events
                // while it waits, so yielding here cannot deadlock.
                FlushState::Backlogged => thread::yield_now(),
            }
        }
        let mut ack = ShardAck::Stepped {
            stats: self.el.stats(),
        };
        loop {
            match self.acks.push(ack) {
                Ok(()) => break,
                Err(PushError::Full(a)) => {
                    ack = a;
                    thread::yield_now();
                }
                Err(PushError::Closed(_)) => break,
            }
        }
    }

    /// Teardown handoff: whatever cannot be flushed rides back inside the
    /// `Stopped` ack, so no event is ever stranded (the property the loom
    /// suite proves for the queue half of this protocol).
    fn teardown(mut self) {
        self.collect_loop_events();
        let _ = flush_pending(&mut self.pending, &self.events);
        let mut ack = ShardAck::Stopped {
            stats: self.el.stats(),
            leftover: self.pending.drain(..).collect(),
        };
        // The ack ring (capacity 4, at most one outstanding ack) has room in
        // every non-pathological schedule; bounded retry, then give up — the
        // control plane is gone anyway if this fails.
        for _ in 0..64 {
            match self.acks.push(ack) {
                Ok(()) | Err(PushError::Closed(_)) => return,
                Err(PushError::Full(a)) => {
                    ack = a;
                    thread::yield_now();
                }
            }
        }
    }
}

/// Body of one shard worker thread.
fn worker_main<T: Transport>(mut worker: Worker<T>, cmds: IntentReceiver<ShardCommand<T>>) {
    loop {
        loop {
            match cmds.try_pop() {
                Ok(ShardCommand::Shutdown) | Err(PopError::Disconnected) => {
                    worker.teardown();
                    return;
                }
                Ok(ShardCommand::Step { steps }) => worker.run_steps(steps),
                Ok(cmd) => worker.apply(cmd),
                Err(PopError::Empty) => break,
            }
        }
        if worker.stepped {
            // Ticks come only from Step commands; idle briefly between them
            // (short enough that back-to-back step batches stay dense).
            thread::sleep(Duration::from_micros(20));
        } else {
            // Paced mode: run the loop's own wall-clock pacing for a slice,
            // then come back for commands.  `run` returns immediately once
            // every client completed, so back off when it does.
            let started = Instant::now();
            let _ = worker.el.run(Duration::from_millis(1));
            worker.collect_loop_events();
            if started.elapsed() < Duration::from_micros(100) {
                thread::sleep(Duration::from_micros(200));
            }
        }
        let _ = flush_pending(&mut worker.pending, &worker.events);
    }
}

/// Control-plane handle to one shard worker.
struct ShardHandle<T> {
    cmds: IntentSender<ShardCommand<T>>,
    acks: IntentReceiver<ShardAck>,
    thread: Option<thread::JoinHandle<()>>,
    /// Next token this shard's loop will assign (see "token prediction").
    next_token: usize,
}

/// The sharded driver facade: N per-core [`EventLoop`] workers behind
/// handle-based registration and a drainable event channel.  Built via
/// [`DriverConfig::build`]; see the [module docs](self) for the ownership
/// and handoff model.
pub struct Driver<T: Transport + Send + 'static> {
    shards: Vec<ShardHandle<T>>,
    events_rx: IntentReceiver<DriverEvent>,
    placer: Placer,
    /// Drained but not yet polled events.
    pending: Vec<DriverEvent>,
    /// Handles of client sessions still downloading (used to classify
    /// `AddFailed` events, which can also come from server adds).
    live_handles: HashSet<SessionHandle>,
    completed_clients: usize,
    pacing: Pacing,
    /// Latest lifetime counters per shard (refreshed by acks and shutdown).
    shard_stats: Vec<EventLoopStats>,
}

impl<T: Transport + Send + 'static> Driver<T> {
    pub(crate) fn new(cfg: DriverConfig) -> Driver<T> {
        let (events_tx, events_rx) = bounded(EVENT_QUEUE_CAP);
        let mut shards = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (cmd_tx, cmd_rx) = bounded(COMMAND_QUEUE_CAP);
            let (ack_tx, ack_rx) = bounded(ACK_QUEUE_CAP);
            let events = events_tx.clone();
            let stepped = cfg.stepped;
            let thread = thread::Builder::new()
                .name(format!("df-shard-{shard}"))
                .spawn(move || {
                    worker_main(
                        Worker {
                            shard,
                            stepped,
                            el: EventLoop::new(),
                            pending: VecDeque::new(),
                            events,
                            acks: ack_tx,
                        },
                        cmd_rx,
                    )
                })
                .expect("spawning a shard worker thread");
            shards.push(ShardHandle {
                cmds: cmd_tx,
                acks: ack_rx,
                thread: Some(thread),
                next_token: 0,
            });
        }
        // Workers hold the only event senders: `Disconnected` on the control
        // side therefore means every worker has exited *and* flushed.
        drop(events_tx);
        Driver {
            shards,
            events_rx,
            placer: Placer::new(cfg.placement, cfg.shards),
            pending: Vec::new(),
            live_handles: HashSet::new(),
            completed_clients: 0,
            pacing: cfg.pacing,
            shard_stats: vec![EventLoopStats::default(); cfg.shards],
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total registered session weight per shard (clients weigh their `k`,
    /// servers their `n`).
    pub fn shard_loads(&self) -> &[usize] {
        self.placer.loads()
    }

    /// Registered session count per shard.
    pub fn shard_counts(&self) -> &[usize] {
        self.placer.counts()
    }

    /// Register a client; the placement policy picks its shard.
    ///
    /// # Errors
    ///
    /// Fails if the owning worker has exited.  (A refused initial join
    /// surfaces asynchronously as [`DriverEvent::AddFailed`] — the add
    /// itself happens on the shard.)
    pub fn add_client(
        &mut self,
        session: ClientSession,
        transport: T,
    ) -> io::Result<SessionHandle> {
        let info = session.control_info();
        let weight = info.k.max(1);
        let shard = self.placer.place(info.base_group, weight);
        self.client_inner(shard, session, transport)
    }

    /// Register a client on an explicit shard (recorded against the
    /// placement accounting).
    ///
    /// # Errors
    ///
    /// Fails if `shard` does not exist or its worker has exited.
    pub fn add_client_on(
        &mut self,
        shard: usize,
        session: ClientSession,
        transport: T,
    ) -> io::Result<SessionHandle> {
        self.check_shard(shard)?;
        self.placer.record(shard, session.control_info().k.max(1));
        self.client_inner(shard, session, transport)
    }

    fn client_inner(
        &mut self,
        shard: usize,
        session: ClientSession,
        transport: T,
    ) -> io::Result<SessionHandle> {
        let handle = self.predict_handle(shard)?;
        self.send_cmd(
            shard,
            ShardCommand::AddClient {
                token: handle.token(),
                session: Box::new(session),
                transport,
            },
        )?;
        self.live_handles.insert(handle);
        Ok(handle)
    }

    /// Register a single carousel session paced by the *configured*
    /// aggregate pacing; the placement policy picks its shard.  To replicate
    /// one logical server across shards at an invariant aggregate rate, use
    /// [`Pacing::split`] with [`Driver::add_server_session_on`].
    ///
    /// # Errors
    ///
    /// Fails if the owning worker has exited.
    pub fn add_server_session(
        &mut self,
        session: ServerSession,
        transport: T,
    ) -> io::Result<SessionHandle> {
        let info = session.control_info();
        let weight = info.n.max(1);
        let shard = self.placer.place(info.base_group, weight);
        let pacing = self.pacing;
        self.server_inner(shard, session, transport, pacing)
    }

    /// Register a carousel session on an explicit shard with explicit
    /// pacing.
    ///
    /// # Errors
    ///
    /// Fails if `shard` does not exist or its worker has exited.
    pub fn add_server_session_on(
        &mut self,
        shard: usize,
        session: ServerSession,
        transport: T,
        pacing: Pacing,
    ) -> io::Result<SessionHandle> {
        self.check_shard(shard)?;
        self.placer.record(shard, session.control_info().n.max(1));
        self.server_inner(shard, session, transport, pacing)
    }

    fn server_inner(
        &mut self,
        shard: usize,
        session: ServerSession,
        transport: T,
        pacing: Pacing,
    ) -> io::Result<SessionHandle> {
        let handle = self.predict_handle(shard)?;
        self.send_cmd(
            shard,
            ShardCommand::AddServerSession {
                token: handle.token(),
                session: Box::new(session),
                transport,
                pacing,
            },
        )?;
        Ok(handle)
    }

    /// Register a multi-session [`FountainServer`] (optionally with its
    /// control socket) paced by the configured pacing; the placement policy
    /// picks its shard by the server's first session.
    ///
    /// # Errors
    ///
    /// Fails if the owning worker has exited.
    pub fn add_fountain_server(
        &mut self,
        server: FountainServer,
        transport: T,
        control: Option<UdpSocket>,
    ) -> io::Result<SessionHandle> {
        let weight = server
            .sessions()
            .iter()
            .map(|s| s.control_info().n)
            .sum::<usize>()
            .max(1);
        let base = server
            .sessions()
            .first()
            .map(|s| s.control_info().base_group)
            .unwrap_or(0);
        let shard = self.placer.place(base, weight);
        let pacing = self.pacing;
        self.fountain_inner(shard, server, transport, control, pacing)
    }

    /// Register a [`FountainServer`] on an explicit shard with explicit
    /// pacing.
    ///
    /// # Errors
    ///
    /// Fails if `shard` does not exist or its worker has exited.
    pub fn add_fountain_server_on(
        &mut self,
        shard: usize,
        server: FountainServer,
        transport: T,
        control: Option<UdpSocket>,
        pacing: Pacing,
    ) -> io::Result<SessionHandle> {
        self.check_shard(shard)?;
        let weight = server
            .sessions()
            .iter()
            .map(|s| s.control_info().n)
            .sum::<usize>()
            .max(1);
        self.placer.record(shard, weight);
        self.fountain_inner(shard, server, transport, control, pacing)
    }

    fn fountain_inner(
        &mut self,
        shard: usize,
        server: FountainServer,
        transport: T,
        control: Option<UdpSocket>,
        pacing: Pacing,
    ) -> io::Result<SessionHandle> {
        let handle = self.predict_handle(shard)?;
        self.send_cmd(
            shard,
            ShardCommand::AddFountainServer {
                token: handle.token(),
                server: Box::new(server),
                transport,
                control,
                pacing,
            },
        )?;
        Ok(handle)
    }

    fn check_shard(&self, shard: usize) -> io::Result<()> {
        if shard < self.shards.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("no such shard {shard} (driver has {})", self.shards.len()),
            ))
        }
    }

    fn predict_handle(&mut self, shard: usize) -> io::Result<SessionHandle> {
        self.check_shard(shard)?;
        let handle = &mut self.shards[shard];
        let token = Token(handle.next_token);
        handle.next_token += 1;
        Ok(SessionHandle::new(shard, token))
    }

    fn send_cmd(&mut self, shard: usize, cmd: ShardCommand<T>) -> io::Result<()> {
        let mut cmd = cmd;
        loop {
            match self.shards[shard].cmds.push(cmd) {
                Ok(()) => return Ok(()),
                Err(PushError::Full(c)) => {
                    cmd = c;
                    // Keep our side moving while the worker catches up so it
                    // is never blocked flushing events toward us.
                    self.drain_events();
                    thread::yield_now();
                }
                Err(PushError::Closed(_)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        format!("shard {shard} worker exited"),
                    ))
                }
            }
        }
    }

    /// Drive every shard through `steps` deterministic loop steps
    /// (stepped-mode drivers; paced workers tick themselves).  Returns when
    /// all shards acknowledge; events produced by the batch are buffered for
    /// [`Driver::poll_events`].
    ///
    /// # Errors
    ///
    /// Fails if a worker exited (its events, including teardown leftovers,
    /// are still delivered through [`Driver::poll_events`]).
    pub fn step(&mut self, steps: usize) -> io::Result<()> {
        // Send every command before awaiting any ack: the shards tick
        // concurrently.
        for shard in 0..self.shards.len() {
            self.send_cmd(shard, ShardCommand::Step { steps })?;
        }
        let mut result = Ok(());
        for shard in 0..self.shards.len() {
            if let Err(e) = self.await_ack(shard) {
                result = Err(e);
            }
        }
        result
    }

    fn await_ack(&mut self, shard: usize) -> io::Result<()> {
        loop {
            self.drain_events();
            match self.shards[shard].acks.try_pop() {
                Ok(ShardAck::Stepped { stats }) => {
                    self.shard_stats[shard] = stats;
                    return Ok(());
                }
                Ok(ShardAck::Stopped { stats, leftover }) => {
                    self.shard_stats[shard] = stats;
                    for event in leftover {
                        self.note(&event);
                        self.pending.push(event);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        format!("shard {shard} worker stopped"),
                    ));
                }
                // Yield rather than sleep: the worker is mid-batch and the
                // ack is imminent; on a loaded box the yield hands the core
                // straight to it.
                Err(PopError::Empty) => thread::yield_now(),
                Err(PopError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        format!("shard {shard} worker exited"),
                    ))
                }
            }
        }
    }

    /// Step all shards until every registered client has completed (or
    /// `max_steps` is exhausted), in chunks so slow shards and the event
    /// drain interleave.  Returns the number of steps executed per shard.
    ///
    /// # Errors
    ///
    /// Propagates worker failures from [`Driver::step`].
    pub fn step_until_complete(&mut self, max_steps: usize) -> io::Result<usize> {
        const CHUNK: usize = 64;
        let mut executed = 0;
        while executed < max_steps {
            self.drain_events();
            if self.live_handles.is_empty() && self.completed_clients > 0 {
                break;
            }
            let steps = CHUNK.min(max_steps - executed);
            self.step(steps)?;
            executed += steps;
        }
        self.drain_events();
        Ok(executed)
    }

    /// Block until every registered client has completed or `deadline`
    /// elapses (paced-mode drivers).  Returns `true` when all completed.
    pub fn wait_complete(&mut self, deadline: Duration) -> bool {
        let end = Instant::now() + deadline;
        loop {
            self.drain_events();
            if self.live_handles.is_empty() && self.completed_clients > 0 {
                return true;
            }
            if Instant::now() >= end {
                return self.live_handles.is_empty() && self.completed_clients > 0;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Drain every buffered [`DriverEvent`] in arrival order.
    pub fn poll_events(&mut self) -> Vec<DriverEvent> {
        self.drain_events();
        std::mem::take(&mut self.pending)
    }

    /// Clients registered and not yet completed (or failed to add).
    pub fn pending_clients(&self) -> usize {
        self.live_handles.len()
    }

    /// Clients whose completion events have been observed.
    pub fn completed_clients(&self) -> usize {
        self.completed_clients
    }

    /// True once every registered client has completed or failed.  Note the
    /// control plane only learns of completions through the event queue, so
    /// call [`Driver::poll_events`] / [`Driver::step`] /
    /// [`Driver::wait_complete`] to make progress first.
    pub fn all_clients_complete(&self) -> bool {
        self.live_handles.is_empty()
    }

    /// Merged lifetime counters across shards, as of the latest
    /// acknowledgement (stepped mode) or shutdown.  Paced-mode drivers see
    /// fresh counters only in the final [`DriverReport`].
    pub fn stats(&self) -> EventLoopStats {
        self.shard_stats
            .iter()
            .fold(EventLoopStats::default(), |acc, s| acc.merge(*s))
    }

    fn note(&mut self, event: &DriverEvent) {
        match event {
            DriverEvent::Completed { handle, .. } => {
                if self.live_handles.remove(handle) {
                    self.completed_clients += 1;
                }
            }
            DriverEvent::AddFailed { handle, .. } => {
                // Only client adds are tracked; a failed server add has no
                // completion accounting to correct.
                self.live_handles.remove(handle);
            }
            DriverEvent::JoinFailed { .. } => {}
        }
    }

    fn drain_events(&mut self) {
        while let Ok(event) = self.events_rx.try_pop() {
            self.note(&event);
            self.pending.push(event);
        }
    }

    /// Stop every worker, join the threads, and return the final report —
    /// per-shard counters plus every event the caller never drained
    /// (including teardown leftovers; the handoff loses nothing).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the signature reserves the right to
    /// report join panics as errors.
    pub fn shutdown(mut self) -> io::Result<DriverReport> {
        self.shutdown_inner();
        Ok(DriverReport {
            shard_stats: std::mem::take(&mut self.shard_stats),
            events: std::mem::take(&mut self.pending),
        })
    }

    fn shutdown_inner(&mut self) {
        for shard in 0..self.shards.len() {
            let _ = self.send_cmd(shard, ShardCommand::Shutdown);
        }
        for shard in 0..self.shards.len() {
            loop {
                self.drain_events();
                match self.shards[shard].acks.try_pop() {
                    Ok(ShardAck::Stopped { stats, leftover }) => {
                        self.shard_stats[shard] = stats;
                        for event in leftover {
                            self.note(&event);
                            self.pending.push(event);
                        }
                        break;
                    }
                    Ok(ShardAck::Stepped { stats }) => self.shard_stats[shard] = stats,
                    Err(PopError::Empty) => thread::sleep(Duration::from_micros(50)),
                    Err(PopError::Disconnected) => break,
                }
            }
            if let Some(thread) = self.shards[shard].thread.take() {
                let _ = thread.join();
            }
        }
        // Every worker has exited and flushed; drain the tail.  The queue's
        // disconnect protocol guarantees `Disconnected` only after the last
        // pushed event has been popped.
        while let Ok(event) = self.events_rx.try_pop() {
            self.note(&event);
            self.pending.push(event);
        }
        self.shards.clear();
    }
}

impl<T: Transport + Send + 'static> Drop for Driver<T> {
    fn drop(&mut self) {
        if !self.shards.is_empty() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Placement;
    use crate::server::SessionConfig;
    use crate::transport::SimMulticast;
    use crate::{ClientSession, SimEndpoint};

    fn patterned(len: usize, salt: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + salt) % 251) as u8).collect()
    }

    /// Tentpole shape: two shards, each owning a server replica and its
    /// clients on an isolated channel, byte-identical downloads extracted
    /// from Completed events.
    #[test]
    fn two_shards_complete_with_byte_identical_downloads() {
        let data = patterned(50_000, 1);
        let shards = 2;
        let mut driver = DriverConfig::new()
            .shards(shards)
            .stepped(true)
            .build::<SimEndpoint>();
        let pacing = Pacing::new(Duration::from_millis(1), 512).split(shards);
        let mut handles = Vec::new();
        for (shard, &shard_pacing) in pacing.iter().enumerate() {
            // Each shard gets its own sim channel and a server replica with
            // the same code seed — the same fountain, sharded.
            let net = SimMulticast::new(40 + shard as u64);
            let session = ServerSession::new(
                &data,
                SessionConfig {
                    code_seed: 7,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            let info = session.control_info().clone();
            driver
                .add_server_session_on(shard, session, net.endpoint(0.0), shard_pacing)
                .unwrap();
            for i in 0..4 {
                let loss = if i % 2 == 0 { 0.0 } else { 0.2 };
                let handle = driver
                    .add_client_on(
                        shard,
                        ClientSession::new(info.clone()).unwrap(),
                        net.endpoint(loss),
                    )
                    .unwrap();
                assert_eq!(handle.shard(), shard);
                handles.push(handle);
            }
        }
        driver.step_until_complete(20_000).unwrap();
        assert!(driver.all_clients_complete());
        assert_eq!(driver.completed_clients(), 8);
        let report = driver.shutdown().unwrap();
        assert!(report.total_stats().datagrams_sent > 0);
        let mut completed = Vec::new();
        for event in report.events {
            if let DriverEvent::Completed {
                handle, session, ..
            } = event
            {
                assert_eq!(session.file().unwrap(), &data[..]);
                completed.push(handle);
            }
        }
        completed.sort();
        handles.sort();
        assert_eq!(completed, handles);
    }

    /// Satellite regression: splitting one logical server across 1/2/4
    /// shards must not change the aggregate emission rate.
    #[test]
    fn aggregate_emission_rate_is_shard_count_invariant() {
        let data = patterned(20_000, 2);
        let steps = 200;
        let budget = 96;
        let mut totals = Vec::new();
        for shards in [1usize, 2, 4] {
            let mut driver = DriverConfig::new()
                .shards(shards)
                .stepped(true)
                .build::<SimEndpoint>();
            let pacing = Pacing::new(Duration::from_millis(1), budget).split(shards);
            for (shard, &shard_pacing) in pacing.iter().enumerate() {
                let net = SimMulticast::new(50 + shard as u64);
                let session = ServerSession::new(
                    &data,
                    SessionConfig {
                        code_seed: 3,
                        ..SessionConfig::default()
                    },
                )
                .unwrap();
                driver
                    .add_server_session_on(shard, session, net.endpoint(0.0), shard_pacing)
                    .unwrap();
            }
            driver.step(steps).unwrap();
            let sent = driver.stats().datagrams_sent;
            totals.push(sent);
            driver.shutdown().unwrap();
        }
        assert_eq!(
            totals,
            vec![(steps * budget) as u64; 3],
            "aggregate emission must be shard-count invariant"
        );
    }

    /// Satellite stress: 4 shards × 256 sim sessions under least-loaded
    /// placement — per-shard loads stay within the greedy bound and every
    /// download is byte-identical to its source.
    #[test]
    fn four_shard_least_loaded_stress_holds_the_placement_bound() {
        let shards = 4;
        let mut driver = DriverConfig::new()
            .shards(shards)
            .placement(Placement::LeastLoaded)
            .stepped(true)
            .build::<SimEndpoint>();
        let net = SimMulticast::new(77);
        // Four servers with skewed file sizes on distinct group ranges, all
        // on one shared channel.
        let mut infos = Vec::new();
        let mut files = Vec::new();
        for (i, len) in [6_000usize, 12_000, 24_000, 48_000].iter().enumerate() {
            let data = patterned(*len, i);
            let session = ServerSession::new(
                &data,
                SessionConfig {
                    code_seed: i as u64 + 1,
                    base_group: (i * 8) as u32,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            infos.push(session.control_info().clone());
            files.push(data);
            driver
                .add_server_session(session, net.endpoint(0.0))
                .unwrap();
        }
        let mut expect = std::collections::HashMap::new();
        for i in 0..256usize {
            let which = i % 4;
            let handle = driver
                .add_client(
                    ClientSession::new(infos[which].clone()).unwrap(),
                    net.endpoint(0.0),
                )
                .unwrap();
            expect.insert(handle, which);
        }
        // Greedy least-loaded bound: spread ≤ the largest single weight.
        let max_weight = infos.iter().map(|i| i.n.max(i.k)).max().unwrap();
        let loads = driver.shard_loads();
        let (min, max) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        assert!(
            max - min <= max_weight,
            "placement bound violated: loads {loads:?}, max weight {max_weight}"
        );
        assert!(
            driver.shard_counts().iter().all(|&c| c > 0),
            "every shard must own sessions: {:?}",
            driver.shard_counts()
        );
        driver.step_until_complete(40_000).unwrap();
        assert!(driver.all_clients_complete(), "stress population stalled");
        assert_eq!(driver.completed_clients(), 256);
        let report = driver.shutdown().unwrap();
        let mut seen = 0;
        for event in report.events {
            if let DriverEvent::Completed {
                handle, session, ..
            } = event
            {
                let which = expect[&handle];
                assert_eq!(session.file().unwrap(), &files[which][..]);
                seen += 1;
            }
        }
        assert_eq!(seen, 256);
    }

    /// Paced mode: workers tick on their own wall clocks; the control plane
    /// only waits and drains.
    #[test]
    fn paced_driver_completes_without_stepping() {
        let data = patterned(30_000, 3);
        let net = SimMulticast::new(60);
        let session = ServerSession::new(
            &data,
            SessionConfig {
                code_seed: 9,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let info = session.control_info().clone();
        let mut driver = DriverConfig::new()
            .shards(1)
            .pacing(Pacing::new(Duration::from_millis(1), 512))
            .build::<SimEndpoint>();
        driver
            .add_server_session(session, net.endpoint(0.0))
            .unwrap();
        for _ in 0..3 {
            driver
                .add_client(ClientSession::new(info.clone()).unwrap(), net.endpoint(0.0))
                .unwrap();
        }
        assert!(
            driver.wait_complete(Duration::from_secs(30)),
            "paced download timed out"
        );
        let events = driver.poll_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, DriverEvent::Completed { .. }))
                .count(),
            3
        );
        for event in &events {
            if let DriverEvent::Completed { session, .. } = event {
                assert_eq!(session.file().unwrap(), &data[..]);
            }
        }
        driver.shutdown().unwrap();
    }

    /// Undrained events survive shutdown: the teardown handoff delivers them
    /// in the final report instead of losing them.
    #[test]
    fn shutdown_delivers_undrained_events_in_the_report() {
        let data = patterned(15_000, 4);
        let net = SimMulticast::new(61);
        let session = ServerSession::new(&data, SessionConfig::default()).unwrap();
        let info = session.control_info().clone();
        let mut driver = DriverConfig::new()
            .shards(2)
            .stepped(true)
            .build::<SimEndpoint>();
        driver
            .add_server_session_on(
                0,
                session,
                net.endpoint(0.0),
                Pacing::new(Duration::from_millis(1), 256),
            )
            .unwrap();
        let handle = driver
            .add_client_on(1, ClientSession::new(info).unwrap(), net.endpoint(0.0))
            .unwrap();
        driver.step_until_complete(10_000).unwrap();
        // Deliberately do NOT poll_events: shutdown must hand them over.
        let report = driver.shutdown().unwrap();
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, DriverEvent::Completed { handle: h, .. } if *h == handle)));
    }

    /// A refused initial join surfaces as AddFailed (with the predicted
    /// handle) and later sessions on the same shard stay correctly
    /// addressed — token prediction survives the failure.
    #[test]
    fn failed_add_burns_its_token_and_reports() {
        /// Pass-through transport whose joins can be refused wholesale.
        struct MaybeJoin {
            inner: SimEndpoint,
            allow_join: bool,
        }
        impl Transport for MaybeJoin {
            fn send(&mut self, group: u32, datagram: bytes::Bytes) {
                self.inner.send(group, datagram);
            }
            fn recv(&mut self) -> Option<(u32, bytes::Bytes)> {
                self.inner.recv()
            }
            fn join(&mut self, group: u32) -> io::Result<()> {
                if !self.allow_join {
                    return Err(io::Error::other("join refused"));
                }
                self.inner.join(group)
            }
            fn leave(&mut self, group: u32) {
                self.inner.leave(group);
            }
            fn readiness(&self) -> crate::transport::Readiness {
                self.inner.readiness()
            }
        }
        let endpoint = |net: &SimMulticast, allow_join| MaybeJoin {
            inner: net.endpoint(0.0),
            allow_join,
        };
        let data = patterned(15_000, 5);
        let net = SimMulticast::new(62);
        let session = ServerSession::new(&data, SessionConfig::default()).unwrap();
        let info = session.control_info().clone();
        let mut driver = DriverConfig::new()
            .shards(1)
            .stepped(true)
            .build::<MaybeJoin>();
        driver
            .add_server_session_on(
                0,
                session,
                endpoint(&net, true),
                Pacing::new(Duration::from_millis(1), 256),
            )
            .unwrap();
        let bad = driver
            .add_client_on(
                0,
                ClientSession::new(info.clone()).unwrap(),
                endpoint(&net, false),
            )
            .unwrap();
        let good = driver
            .add_client_on(0, ClientSession::new(info).unwrap(), endpoint(&net, true))
            .unwrap();
        assert_ne!(bad.token(), good.token());
        driver.step_until_complete(10_000).unwrap();
        assert!(driver.all_clients_complete());
        assert_eq!(driver.completed_clients(), 1);
        let events = driver.poll_events();
        assert!(events.iter().any(
            |e| matches!(e, DriverEvent::AddFailed { handle, error } if *handle == bad && error.contains("join refused"))
        ));
        assert!(events.iter().any(
            |e| matches!(e, DriverEvent::Completed { handle, session, .. } if *handle == good && session.file().unwrap() == &data[..])
        ));
        driver.shutdown().unwrap();
    }

    #[test]
    fn flush_pending_preserves_order_under_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        let mut pending: VecDeque<u32> = (0..5).collect();
        assert_eq!(flush_pending(&mut pending, &tx), FlushState::Backlogged);
        assert_eq!(pending.front(), Some(&2), "refused event back at front");
        let mut got = vec![rx.try_pop().unwrap(), rx.try_pop().unwrap()];
        assert_eq!(flush_pending(&mut pending, &tx), FlushState::Backlogged);
        got.push(rx.try_pop().unwrap());
        got.push(rx.try_pop().unwrap());
        assert_eq!(flush_pending(&mut pending, &tx), FlushState::Flushed);
        got.push(rx.try_pop().unwrap());
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        drop(rx);
        pending.push_back(9);
        assert_eq!(flush_pending(&mut pending, &tx), FlushState::Closed);
        assert!(pending.is_empty());
    }
}
