//! Spawn-time placement of sessions onto shards.
//!
//! The sharded driver moves nothing after registration — a session's slot,
//! transport and sockets live and die on one shard (work *stealing* would
//! mean migrating live sockets and multicast memberships between threads,
//! which multicast joins make observable on the wire).  That makes the
//! placement decision at add time the whole load-balancing story, so it is a
//! first-class policy:
//!
//! * [`Placement::GroupRange`] — static partition by base multicast group,
//!   `shard = base_group % shards`.  Deterministic and stateless: every
//!   participant (and every test) can predict where a session lands, and
//!   sessions of one group family always share a shard, so layered
//!   join/leave activity for a group never crosses shards.
//! * [`Placement::LeastLoaded`] — greedy weighted balancing for skewed
//!   session sizes: each session carries a weight (its packet count `k` for
//!   clients, `n` for servers) and lands on the currently lightest shard.
//!   The classic greedy bound applies: shard loads stay within one maximal
//!   session weight of each other, which the stress test pins down.

/// Policy deciding which shard owns a newly registered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// `shard = base_group % shards` — static group-range sharding.
    #[default]
    GroupRange,
    /// Greedy weighted least-loaded: the session lands on the shard with the
    /// smallest total weight (ties go to the lowest shard index).
    LeastLoaded,
}

/// Bookkeeping half of a [`Placement`] policy: records per-shard weights and
/// session counts as the driver registers sessions.
#[derive(Debug)]
pub(crate) struct Placer {
    policy: Placement,
    loads: Vec<usize>,
    counts: Vec<usize>,
}

impl Placer {
    pub(crate) fn new(policy: Placement, shards: usize) -> Placer {
        Placer {
            policy,
            loads: vec![0; shards.max(1)],
            counts: vec![0; shards.max(1)],
        }
    }

    /// Choose a shard for a session anchored at `base_group` carrying
    /// `weight`, and record the assignment.
    pub(crate) fn place(&mut self, base_group: u32, weight: usize) -> usize {
        let shard = match self.policy {
            Placement::GroupRange => (base_group as usize) % self.loads.len(),
            Placement::LeastLoaded => {
                // min_by_key takes the first minimum, i.e. the lowest index.
                (0..self.loads.len())
                    .min_by_key(|&s| self.loads[s])
                    .unwrap_or(0)
            }
        };
        self.record(shard, weight);
        shard
    }

    /// Record an assignment the caller made explicitly (the `*_on` adds),
    /// keeping the load accounting honest for later `place` calls.
    pub(crate) fn record(&mut self, shard: usize, weight: usize) {
        if let Some(load) = self.loads.get_mut(shard) {
            *load += weight;
        }
        if let Some(count) = self.counts.get_mut(shard) {
            *count += 1;
        }
    }

    /// Total registered weight per shard.
    pub(crate) fn loads(&self) -> &[usize] {
        &self.loads
    }

    /// Registered session count per shard.
    pub(crate) fn counts(&self) -> &[usize] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_range_is_a_static_modulo_partition() {
        let mut placer = Placer::new(Placement::GroupRange, 4);
        for group in 0..32u32 {
            assert_eq!(placer.place(group, 1), (group as usize) % 4);
        }
        assert_eq!(placer.counts(), &[8, 8, 8, 8]);
    }

    #[test]
    fn least_loaded_with_equal_weights_is_round_robin() {
        let mut placer = Placer::new(Placement::LeastLoaded, 3);
        let shards: Vec<usize> = (0..9).map(|_| placer.place(0, 10)).collect();
        assert_eq!(shards, [0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(placer.loads(), &[30, 30, 30]);
    }

    #[test]
    fn least_loaded_skew_stays_within_one_max_weight() {
        // Adversarial skew: weights vary by 50x, arrivals are in a bad order
        // (heavy first).  Greedy least-loaded still bounds the spread by the
        // largest single weight.
        let weights = [500, 500, 10, 10, 10, 10, 250, 250, 10, 500, 10, 10];
        let mut placer = Placer::new(Placement::LeastLoaded, 4);
        for (i, &w) in weights.iter().enumerate() {
            placer.place(i as u32, w);
        }
        let max = *placer.loads().iter().max().unwrap();
        let min = *placer.loads().iter().min().unwrap();
        let max_weight = *weights.iter().max().unwrap();
        assert!(
            max - min <= max_weight,
            "greedy bound violated: loads {:?}, max weight {max_weight}",
            placer.loads()
        );
    }

    #[test]
    fn explicit_record_feeds_back_into_placement() {
        let mut placer = Placer::new(Placement::LeastLoaded, 2);
        // Caller pins a heavy session on shard 0; the next placements must
        // see that load and prefer shard 1.
        placer.record(0, 1_000);
        assert_eq!(placer.place(0, 10), 1);
        assert_eq!(placer.place(0, 10), 1);
    }
}
