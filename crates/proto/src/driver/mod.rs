//! The readiness-driven I/O driver layer: from one event loop to N.
//!
//! Everything below this crate's session layer is sans-I/O — the sessions
//! *produce* and *consume* datagrams but never touch a socket.  This module
//! is the other half of that bargain, at two levels:
//!
//! * [`EventLoop`] — the single-shard engine: owns the transports and
//!   multiplexes any number of [`ServerSession`]s / [`FountainServer`]s and
//!   [`ClientSession`]s over them on **one** thread, the epoll-style server
//!   shape of Section 7.1 (a stateless carousel feeding arbitrarily many
//!   heterogeneous receivers at once).
//! * [`Driver`] — the sharded facade: N per-core `EventLoop` worker threads
//!   behind a builder-style [`DriverConfig`], each owning a disjoint slice
//!   of sessions and their sockets, with session registration returning
//!   opaque [`SessionHandle`]s and completion delivered through a drainable
//!   event channel ([`Driver::poll_events`]) instead of callbacks on a loop
//!   thread.  See [`shard`] and DESIGN.md "Sharded driver".
//!
//! # Token / slot model
//!
//! Every session added to a loop occupies a **slot** identified by a
//! [`Token`] (a plain index; tokens are never reused within one loop).  A
//! slot owns its session *and* its transport — the loop never shares
//! sockets between sessions, mirroring how each multicast receiver owns its
//! own group memberships.  Poller keys are *internal dense indices* mapped
//! back to slots on each wait; tokens no longer double as poller keys (see
//! DESIGN.md for the migration note), so the fd set can be rebuilt from an
//! owned [`EventLoop::readiness_snapshot`] without borrowing every slot.
//!
//! # Readiness vs. polled transports
//!
//! Each transport reports its [`Readiness`]: socket-backed transports hand
//! over raw fds and the loop sleeps in the `polling` shim (epoll on Linux,
//! `poll(2)` elsewhere — see `DF_POLL_BACKEND`) until one turns readable;
//! in-memory transports ([`crate::SimMulticast`] endpoints) report
//! [`Readiness::Polled`] and are drained on every iteration instead.  The
//! fd set is rebuilt lazily whenever memberships change (joins and leaves
//! open and close sockets).
//!
//! # Pacing
//!
//! Server slots are rate-paced by a token bucket: every [`Pacing`] interval
//! the slot may emit up to `datagrams_per_tick` datagrams.  Missed ticks are
//! dropped rather than accumulated, so a loop that stalls (or a laptop that
//! sleeps) resumes at the configured rate instead of blasting a catch-up
//! burst.  [`EventLoop::step`] is the wall-clock-free variant — exactly one
//! tick per server plus a full drain — which is what the deterministic
//! tests and the simulation experiments drive.  When one logical server's
//! carousel is replicated across shards, [`Pacing::split`] divides the
//! per-tick budget so the *aggregate* emission rate is shard-count
//! invariant.
//!
//! # Join/Leave intent execution and completion events
//!
//! Layered [`ClientSession`]s decide subscription changes but never touch
//! sockets; their [`ClientEvent::Join`] / [`ClientEvent::Leave`] intents are
//! executed *here*, against the slot's own transport.  A failed join is
//! counted ([`EventLoopStats::join_failures`]), surfaced as
//! [`LoopEvent::JoinFailed`], and otherwise treated as loss, exactly like
//! the channel it models.  On completion a client's groups are left
//! immediately — a finished receiver stops consuming multicast bandwidth —
//! and a [`LoopEvent::Completed`] is buffered for the owner to drain via
//! [`EventLoop::poll_events`] (the callback-on-the-loop-thread contract of
//! earlier revisions is gone).

pub mod handle;
pub mod placement;
pub mod queue;
pub mod shard;

pub use handle::{DriverConfig, DriverEvent, DriverReport, SessionHandle};
pub use placement::Placement;
pub use shard::Driver;

use crate::client::{ClientEvent, ClientSession, DownloadStats};
use crate::server::{FountainServer, ServerSession};
use crate::transport::{Readiness, Transport};
use bytes::Bytes;
use polling::{Event, Poller};
use std::collections::VecDeque;
use std::io;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

/// Identifies one session slot in an [`EventLoop`].  Tokens are shard-local:
/// the sharded [`Driver`] wraps them in [`SessionHandle`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Rate pacing for a server slot: a token bucket releasing
/// `datagrams_per_tick` datagrams every `interval` of wall-clock time.
///
/// Layered sessions stay correct under any pacing — their serial → round
/// contract is about datagram *order*, which the carousel preserves across
/// tick boundaries — so the budget is denominated in datagrams, the unit the
/// outgoing link actually cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pacing {
    /// Wall-clock interval between transmit ticks.
    pub interval: Duration,
    /// Datagrams released per tick.
    pub datagrams_per_tick: usize,
}

impl Pacing {
    /// A pacing budget of `datagrams_per_tick` per `interval`.
    pub fn new(interval: Duration, datagrams_per_tick: usize) -> Pacing {
        Pacing {
            interval,
            datagrams_per_tick,
        }
    }

    /// Approximate a target datagram rate with a 5 ms tick — fine-grained
    /// enough that per-tick bursts stay well inside kernel socket buffers.
    pub fn per_second(datagrams: usize) -> Pacing {
        Pacing {
            interval: Duration::from_millis(5),
            datagrams_per_tick: (datagrams / 200).max(1),
        }
    }

    /// Divide this budget across `parts` co-owners of one logical server so
    /// the *aggregate* rate stays exactly this pacing: the per-tick budgets
    /// of the returned pacings sum to `datagrams_per_tick` (the remainder
    /// goes to the lowest-indexed parts), and every part keeps the same
    /// interval.  Token buckets are per-loop, so replicating a carousel
    /// across N shards *without* splitting would multiply the send rate by
    /// N.  A part may receive a zero budget when `parts` exceeds the total
    /// (that share of the carousel sends nothing).
    pub fn split(self, parts: usize) -> Vec<Pacing> {
        let parts = parts.max(1);
        let base = self.datagrams_per_tick / parts;
        let remainder = self.datagrams_per_tick % parts;
        (0..parts)
            .map(|i| Pacing {
                interval: self.interval,
                datagrams_per_tick: base + usize::from(i < remainder),
            })
            .collect()
    }
}

/// Aggregate counters for one [`EventLoop`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventLoopStats {
    /// Datagrams emitted by all server slots.
    pub datagrams_sent: u64,
    /// Datagrams drained from client transports (before session validation).
    pub datagrams_received: u64,
    /// Server transmit ticks executed.
    pub ticks: u64,
    /// Join intents whose `Transport::join` failed (treated as loss).
    pub join_failures: u64,
    /// Control datagrams answered.
    pub control_answered: u64,
}

impl EventLoopStats {
    /// Field-wise sum, for aggregating per-shard loop counters.
    pub fn merge(self, other: EventLoopStats) -> EventLoopStats {
        EventLoopStats {
            datagrams_sent: self.datagrams_sent + other.datagrams_sent,
            datagrams_received: self.datagrams_received + other.datagrams_received,
            ticks: self.ticks + other.ticks,
            join_failures: self.join_failures + other.join_failures,
            control_answered: self.control_answered + other.control_answered,
        }
    }
}

/// One buffered notification from an [`EventLoop`], drained by the owner via
/// [`EventLoop::poll_events`].  This replaces the completion-callback
/// contract: the loop never calls back into owner code mid-iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopEvent {
    /// A client slot finished its download.  The session (and its decoded
    /// file) stays in the slot until [`EventLoop::take_client`].
    Completed {
        /// Slot of the finished client.
        token: Token,
        /// Reception statistics at the moment of completion.
        stats: DownloadStats,
    },
    /// A client's Join intent failed at the transport ([`Transport::join`]
    /// returned an error).  The layer stays subscribed session-side and the
    /// lost datagrams read as channel loss; this event lets the owner
    /// observe the degradation.
    JoinFailed {
        /// Slot whose join failed.
        token: Token,
        /// The multicast group that could not be joined.
        group: u32,
    },
}

/// Either kind of carousel a server slot can pump.
enum Carousel {
    Session(Box<ServerSession>),
    Server(FountainServer),
}

impl Carousel {
    /// Next datagram of the never-ending carousel (rounds advance
    /// automatically), or `None` if there are no sessions at all.
    fn poll_transmit(&mut self) -> Option<(u32, Bytes)> {
        match self {
            Carousel::Session(s) => {
                if s.round_complete() {
                    s.advance_round();
                }
                s.poll_transmit()
            }
            Carousel::Server(f) => f.poll_transmit(),
        }
    }
}

struct ServerSlot<T> {
    carousel: Carousel,
    transport: T,
    /// Non-blocking control socket answered on this slot's ticks and on its
    /// readiness events ([`FountainServer`] slots only).
    control: Option<UdpSocket>,
    pacing: Pacing,
    next_tick: Instant,
}

struct ClientSlot<T> {
    session: ClientSession,
    transport: T,
    done: bool,
}

enum Slot<T> {
    Server(Box<ServerSlot<T>>),
    Client(Box<ClientSlot<T>>),
}

/// A single-threaded readiness-driven event loop multiplexing many protocol
/// sessions over their transports.  See the [module docs](self) for the
/// token/slot model, pacing and readiness semantics.
///
/// The transport type is homogeneous per loop (all
/// [`crate::UdpMulticastTransport`], or all [`crate::SimEndpoint`], …);
/// server and client slots may be mixed freely, including a server and its
/// own thousand clients in the same loop — the scale test in `df-sim` does
/// exactly that.
pub struct EventLoop<T: Transport> {
    slots: Vec<Option<Slot<T>>>,
    poller: Option<Poller>,
    /// Fd registrations must be rebuilt before the next wait (membership or
    /// slot set changed).
    registrations_dirty: bool,
    /// At least one live slot has no fds and must be drained every
    /// iteration.
    has_polled_slots: bool,
    /// Dense poller key → slot index.  Keys are assigned per registered fd
    /// at rebuild time and mean nothing outside one registration epoch;
    /// tokens are *not* poller keys.
    poll_keys: Vec<usize>,
    events_buf: Vec<Event>,
    /// Buffered [`LoopEvent`]s awaiting [`EventLoop::poll_events`].
    events: VecDeque<LoopEvent>,
    live_clients: usize,
    completed_clients: usize,
    stats: EventLoopStats,
}

impl<T: Transport> Default for EventLoop<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Transport> EventLoop<T> {
    /// An empty loop.
    pub fn new() -> EventLoop<T> {
        EventLoop {
            slots: Vec::new(),
            // On platforms without poll(2) the loop degrades to pure
            // tick-paced polling, which every code path below supports.
            poller: Poller::new().ok(),
            registrations_dirty: true,
            has_polled_slots: false,
            poll_keys: Vec::new(),
            events_buf: Vec::new(),
            events: VecDeque::new(),
            live_clients: 0,
            completed_clients: 0,
            stats: EventLoopStats::default(),
        }
    }

    fn push_slot(&mut self, slot: Slot<T>) -> Token {
        self.slots.push(Some(slot));
        self.registrations_dirty = true;
        Token(self.slots.len() - 1)
    }

    /// Burn a token on a permanently vacant slot.  The sharded driver uses
    /// this to keep its control-plane token prediction aligned with the
    /// loop when an add fails before occupying a slot.
    pub(crate) fn push_vacant(&mut self) -> Token {
        self.slots.push(None);
        Token(self.slots.len() - 1)
    }

    /// Add a single carousel session paced by `pacing`; its first tick is
    /// due immediately.
    pub fn add_server_session(
        &mut self,
        session: ServerSession,
        transport: T,
        pacing: Pacing,
    ) -> Token {
        self.push_slot(Slot::Server(Box::new(ServerSlot {
            carousel: Carousel::Session(Box::new(session)),
            transport,
            control: None,
            pacing,
            next_tick: Instant::now(),
        })))
    }

    /// Add a multi-session [`FountainServer`], optionally answering its
    /// binary control channel on `control` (made non-blocking here).
    ///
    /// # Errors
    ///
    /// Fails only if the control socket cannot be switched to non-blocking
    /// mode.
    pub fn add_fountain_server(
        &mut self,
        server: FountainServer,
        transport: T,
        control: Option<UdpSocket>,
        pacing: Pacing,
    ) -> io::Result<Token> {
        if let Some(socket) = &control {
            socket.set_nonblocking(true)?;
        }
        Ok(self.push_slot(Slot::Server(Box::new(ServerSlot {
            carousel: Carousel::Server(server),
            transport,
            control,
            pacing,
            next_tick: Instant::now(),
        }))))
    }

    /// Add a downloading client.  The session's currently subscribed groups
    /// are joined on `transport` here; afterwards the loop tracks the
    /// session's Join/Leave intents.
    ///
    /// # Errors
    ///
    /// Fails if any *initial* join fails — a client that cannot reach the
    /// base layer will never receive a datagram, so this is a setup error,
    /// not channel loss.
    pub fn add_client(&mut self, session: ClientSession, mut transport: T) -> io::Result<Token> {
        for group in session.subscribed_groups() {
            transport.join(group)?;
        }
        self.live_clients += 1;
        Ok(self.push_slot(Slot::Client(Box::new(ClientSlot {
            session,
            transport,
            done: false,
        }))))
    }

    /// Drain every buffered [`LoopEvent`] (completions, failed joins), in
    /// the order the loop observed them.  Events accumulate until drained;
    /// owners that do not care may simply never call this (the buffer is
    /// bounded by the number of clients plus their failed joins).
    pub fn poll_events(&mut self) -> Vec<LoopEvent> {
        self.events.drain(..).collect()
    }

    /// The client session in `token`'s slot, if that slot holds a live or
    /// completed client.
    pub fn client(&self, token: Token) -> Option<&ClientSession> {
        match self.slots.get(token.0)?.as_ref()? {
            Slot::Client(c) => Some(&c.session),
            Slot::Server(_) => None,
        }
    }

    /// Remove a client slot, returning the session and its transport (e.g.
    /// to extract the downloaded file and reuse the socket set).
    pub fn take_client(&mut self, token: Token) -> Option<(ClientSession, T)> {
        match self.slots.get(token.0)? {
            Some(Slot::Client(_)) => {}
            _ => return None,
        }
        let Some(Slot::Client(slot)) = self.slots[token.0].take() else {
            unreachable!("checked above");
        };
        if slot.done {
            self.completed_clients -= 1;
        } else {
            self.live_clients -= 1;
        }
        self.registrations_dirty = true;
        Some((slot.session, slot.transport))
    }

    /// Clients added and not yet complete (nor taken).
    pub fn pending_clients(&self) -> usize {
        self.live_clients
    }

    /// Clients whose downloads have completed (and are still in the loop).
    pub fn completed_clients(&self) -> usize {
        self.completed_clients
    }

    /// True once every client added to the loop has completed its download.
    pub fn all_clients_complete(&self) -> bool {
        self.live_clients == 0
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EventLoopStats {
        self.stats
    }

    /// Rounds transmitted so far by the server slot at `token` (for a
    /// [`FountainServer`] slot, the maximum across its sessions).
    pub fn server_rounds(&self, token: Token) -> Option<usize> {
        match self.slots.get(token.0)?.as_ref()? {
            Slot::Server(s) => Some(match &s.carousel {
                Carousel::Session(session) => session.rounds_sent(),
                Carousel::Server(server) => server
                    .sessions()
                    .iter()
                    .map(|s| s.rounds_sent())
                    .max()
                    .unwrap_or(0),
            }),
            Slot::Client(_) => None,
        }
    }

    /// An owned snapshot of every waitable slot's current [`Readiness`],
    /// keyed by [`Token`].  Building the poll set from this snapshot means
    /// registration never holds borrows into the slot table — the property
    /// that lets a shard rebuild its fd set while the control plane
    /// inspects it.  Completed clients are excluded (they no longer wait on
    /// anything); a server slot's entry is its control socket, since its
    /// data transport is send-only.
    pub fn readiness_snapshot(&self) -> Vec<(Token, Readiness)> {
        let mut snapshot = Vec::new();
        for (index, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            match slot {
                Slot::Server(s) => {
                    let fds: Vec<i32> = s
                        .control
                        .as_ref()
                        .and_then(control_fd)
                        .into_iter()
                        .collect();
                    snapshot.push((Token(index), Readiness::Sockets(fds)));
                }
                Slot::Client(c) => {
                    if c.done {
                        continue;
                    }
                    snapshot.push((Token(index), c.transport.readiness()));
                }
            }
        }
        snapshot
    }

    /// Rebuild the poller's fd registrations from an owned readiness
    /// snapshot.  Each fd gets a fresh *dense* key recorded in `poll_keys`;
    /// tokens are never used as poller keys (see the module docs).
    fn rebuild_registrations(&mut self) {
        self.registrations_dirty = false;
        self.has_polled_slots = false;
        self.poll_keys.clear();
        let snapshot = self.readiness_snapshot();
        let Some(poller) = &self.poller else {
            self.has_polled_slots = true;
            return;
        };
        poller.clear();
        for (token, readiness) in snapshot {
            match readiness {
                Readiness::Polled => self.has_polled_slots = true,
                Readiness::Sockets(fds) => {
                    for fd in fds {
                        let key = self.poll_keys.len();
                        poller
                            .add(fd, Event::readable(key))
                            .expect("slots own their sockets, so fds are distinct");
                        self.poll_keys.push(token.0);
                    }
                }
            }
        }
    }

    /// Execute one transmit tick on the server slot at `index`: answer any
    /// pending control requests, then emit one pacing budget of datagrams.
    fn tick_server(&mut self, index: usize) {
        let Some(Some(Slot::Server(slot))) = self.slots.get_mut(index) else {
            return;
        };
        self.stats.ticks += 1;
        self.stats.control_answered += answer_control(&mut slot.carousel, slot.control.as_ref());
        for _ in 0..slot.pacing.datagrams_per_tick {
            match slot.carousel.poll_transmit() {
                Some((group, datagram)) => {
                    slot.transport.send(group, datagram);
                    self.stats.datagrams_sent += 1;
                }
                None => break,
            }
        }
    }

    /// Drain one client slot: feed every waiting datagram to the session,
    /// executing subscription intents against the slot's transport,
    /// buffering a [`LoopEvent::Completed`] when the download finishes.
    fn drain_client(&mut self, index: usize) {
        let Some(Some(Slot::Client(slot))) = self.slots.get_mut(index) else {
            return;
        };
        if slot.done {
            // Completed clients keep their slot (the owner may still
            // `take_client`) but drop arrivals unread.
            while slot.transport.try_recv().is_some() {}
            return;
        }
        let mut membership_changed = false;
        while let Some((_group, datagram)) = slot.transport.try_recv() {
            self.stats.datagrams_received += 1;
            match slot.session.handle_datagram(datagram) {
                ClientEvent::Join { group } => {
                    membership_changed = true;
                    if slot.transport.join(group).is_err() {
                        // The layer stays subscribed session-side; every
                        // datagram it would have carried is loss, which the
                        // congestion controller will read as such.
                        self.stats.join_failures += 1;
                        self.events.push_back(LoopEvent::JoinFailed {
                            token: Token(index),
                            group,
                        });
                    }
                }
                ClientEvent::Leave { group } => {
                    membership_changed = true;
                    slot.transport.leave(group);
                }
                ClientEvent::Complete => {
                    // A finished receiver leaves the carousel immediately.
                    for group in slot.session.subscribed_groups() {
                        slot.transport.leave(group);
                    }
                    membership_changed = true;
                    slot.done = true;
                    self.events.push_back(LoopEvent::Completed {
                        token: Token(index),
                        stats: slot.session.stats().clone(),
                    });
                    self.live_clients -= 1;
                    self.completed_clients += 1;
                    break;
                }
                _ => {}
            }
        }
        if membership_changed {
            self.registrations_dirty = true;
        }
    }

    /// One deterministic iteration, free of clocks and sleeps: every server
    /// slot ticks exactly once (in token order), then every client slot is
    /// drained (in token order).  Driving the loop exclusively through
    /// `step` yields a bit-identical run for an identical transport trace —
    /// the property the determinism tests pin down — and is how the
    /// simulation experiments pump thousands of sim-backed sessions without
    /// wall-clock pacing.
    pub fn step(&mut self) {
        for index in 0..self.slots.len() {
            if matches!(self.slots[index], Some(Slot::Server(_))) {
                self.tick_server(index);
            }
        }
        for index in 0..self.slots.len() {
            if matches!(self.slots[index], Some(Slot::Client(_))) {
                self.drain_client(index);
            }
        }
    }

    /// Sleep until a registered socket is readable or `timeout` elapses,
    /// then drain whatever became (or might be) readable.  Polled slots are
    /// always drained.  Returns the number of readiness events that fired.
    ///
    /// # Errors
    ///
    /// Propagates poller failures (which on a healthy system do not occur;
    /// the sleep degrades gracefully on platforms without `poll(2)`).
    pub fn poll_io(&mut self, timeout: Duration) -> io::Result<usize> {
        if self.registrations_dirty {
            self.rebuild_registrations();
        }
        let mut fired = 0;
        let use_poller = self
            .poller
            .as_ref()
            .is_some_and(|p| !(self.has_polled_slots && p.is_empty()));
        if use_poller {
            // With polled slots in the mix the wait is bounded by the
            // caller's timeout either way; without them it is a genuine
            // readiness sleep.
            let mut events = std::mem::take(&mut self.events_buf);
            self.poller
                .as_ref()
                .expect("checked above")
                .wait(&mut events, Some(timeout))?;
            fired = events.len();
            // Dense keys map back to slots, then slots are dedup'd so one
            // slot with several hot sockets is drained once (the drain
            // empties every socket anyway).
            let mut keys: Vec<usize> = events
                .iter()
                .filter_map(|e| self.poll_keys.get(e.key).copied())
                .collect();
            keys.sort_unstable();
            keys.dedup();
            self.events_buf = events;
            for key in keys {
                match self.slots.get_mut(key) {
                    Some(Some(Slot::Client(_))) => self.drain_client(key),
                    Some(Some(Slot::Server(slot))) => {
                        // Control traffic: answer it now rather than at the
                        // next tick.
                        self.stats.control_answered +=
                            answer_control(&mut slot.carousel, slot.control.as_ref());
                    }
                    _ => {}
                }
            }
        } else if !timeout.is_zero() {
            // Pure-polled mode (or no poller): the timeout is the tick.
            std::thread::sleep(timeout);
        }
        if self.has_polled_slots {
            for index in 0..self.slots.len() {
                if matches!(self.slots[index], Some(Slot::Client(_))) {
                    self.drain_client(index);
                }
            }
        }
        Ok(fired)
    }

    /// Run the wall-clock loop: rate-paced server ticks, readiness-driven
    /// client drains, until every client completes or `deadline` passes.
    /// Returns `true` when all clients completed.
    ///
    /// A loop with no clients (a pure server) runs until the deadline —
    /// that is the deployment shape, where the carousel never ends.
    ///
    /// # Errors
    ///
    /// Propagates poller failures from [`EventLoop::poll_io`].
    pub fn run(&mut self, deadline: Duration) -> io::Result<bool> {
        let end = Instant::now() + deadline;
        // An idle cap so polled transports and late-arriving control traffic
        // are still serviced between distant server ticks.
        const IDLE_CAP: Duration = Duration::from_millis(5);
        loop {
            if self.live_clients == 0 && self.completed_clients > 0 {
                return Ok(true);
            }
            let now = Instant::now();
            if now >= end {
                return Ok(self.live_clients == 0 && self.completed_clients > 0);
            }
            let mut nearest_tick: Option<Instant> = None;
            for index in 0..self.slots.len() {
                let due = match &self.slots[index] {
                    Some(Slot::Server(s)) => {
                        nearest_tick = Some(match nearest_tick {
                            Some(t) => t.min(s.next_tick),
                            None => s.next_tick,
                        });
                        s.next_tick <= now
                    }
                    _ => false,
                };
                if due {
                    self.tick_server(index);
                    if let Some(Some(Slot::Server(s))) = self.slots.get_mut(index) {
                        s.next_tick += s.pacing.interval;
                        if s.next_tick < now {
                            // Ticks missed while we were busy are dropped,
                            // not burst out (see the module docs on pacing).
                            s.next_tick = now;
                        }
                    }
                }
            }
            let now = Instant::now();
            let until_tick = nearest_tick
                .map(|t| t.saturating_duration_since(now))
                .unwrap_or(IDLE_CAP);
            self.poll_io(
                until_tick
                    .min(IDLE_CAP)
                    .min(end.saturating_duration_since(now)),
            )?;
        }
    }
}

/// Fetch the raw fd of a control socket (readiness registration), or `None`
/// on platforms without fds.
fn control_fd(socket: &UdpSocket) -> Option<i32> {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        Some(socket.as_raw_fd())
    }
    #[cfg(not(unix))]
    {
        let _ = socket;
        None
    }
}

/// Answer every control request currently queued on `control`; returns how
/// many were answered.  Only [`FountainServer`] slots speak the control
/// protocol.
fn answer_control(carousel: &mut Carousel, control: Option<&UdpSocket>) -> u64 {
    let (Carousel::Server(server), Some(socket)) = (carousel, control) else {
        return 0;
    };
    let mut buf = [0u8; 2048];
    let mut answered = 0;
    while let Ok((len, from)) = socket.recv_from(&mut buf) {
        let reply = server.handle_control_datagram(&buf[..len]);
        let _ = socket.send_to(&reply, from);
        answered += 1;
    }
    answered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SessionConfig;
    use crate::transport::SimMulticast;
    use crate::ControlInfo;

    fn patterned(len: usize, salt: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + salt) % 251) as u8).collect()
    }

    fn sim_server(
        data: &[u8],
        config: SessionConfig,
        net: &SimMulticast,
    ) -> (ServerSession, ControlInfo) {
        let session = ServerSession::new(data, config).unwrap();
        let info = session.control_info().clone();
        let _ = net; // endpoints are created per-slot by the callers
        (session, info)
    }

    #[test]
    fn one_server_many_clients_single_thread() {
        let data = patterned(60_000, 1);
        let net = SimMulticast::new(3);
        let (session, info) = sim_server(
            &data,
            SessionConfig {
                code_seed: 5,
                ..SessionConfig::default()
            },
            &net,
        );
        let mut el: EventLoop<crate::SimEndpoint> = EventLoop::new();
        el.add_server_session(
            session,
            net.endpoint(0.0),
            Pacing::new(Duration::from_millis(1), 256),
        );
        let mut tokens = Vec::new();
        for i in 0..20 {
            let loss = if i % 2 == 0 { 0.0 } else { 0.25 };
            let client = ClientSession::new(info.clone()).unwrap();
            tokens.push(el.add_client(client, net.endpoint(loss)).unwrap());
        }
        for _ in 0..10_000 {
            el.step();
            if el.all_clients_complete() {
                break;
            }
        }
        assert!(el.all_clients_complete());
        assert_eq!(el.completed_clients(), 20);
        for token in tokens {
            let (client, _endpoint) = el.take_client(token).unwrap();
            assert_eq!(client.file().unwrap(), &data[..]);
        }
        assert_eq!(el.completed_clients(), 0);
        assert!(el.stats().datagrams_sent > 0);
    }

    #[test]
    fn completion_event_is_delivered_exactly_once_with_final_stats() {
        let data = patterned(30_000, 2);
        let net = SimMulticast::new(4);
        let (session, info) = sim_server(&data, SessionConfig::default(), &net);
        let mut el: EventLoop<crate::SimEndpoint> = EventLoop::new();
        el.add_server_session(
            session,
            net.endpoint(0.0),
            Pacing::new(Duration::from_millis(1), 512),
        );
        let client = ClientSession::new(info).unwrap();
        let token = el.add_client(client, net.endpoint(0.0)).unwrap();
        for _ in 0..5_000 {
            el.step();
            if el.all_clients_complete() {
                break;
            }
        }
        // Extra steps after completion must not buffer another event.
        for _ in 0..20 {
            el.step();
        }
        let events = el.poll_events();
        assert_eq!(events.len(), 1, "exactly one completion event: {events:?}");
        let LoopEvent::Completed {
            token: ev_token,
            stats,
        } = &events[0]
        else {
            panic!("expected Completed, got {events:?}");
        };
        assert_eq!(*ev_token, token);
        assert!(stats.distinct() > 0);
        assert!(el.client(token).unwrap().is_complete());
        // The drain consumed the buffer: a second poll is empty.
        assert!(el.poll_events().is_empty());
    }

    #[test]
    fn pacing_split_preserves_the_aggregate_budget() {
        for (budget, parts) in [(96, 4), (7, 4), (1, 3), (200, 1), (5, 8)] {
            let pacing = Pacing::new(Duration::from_millis(1), budget);
            let split = pacing.split(parts);
            assert_eq!(split.len(), parts);
            let total: usize = split.iter().map(|p| p.datagrams_per_tick).sum();
            assert_eq!(total, budget, "budget {budget} over {parts} parts");
            assert!(split.iter().all(|p| p.interval == pacing.interval));
            let (min, max) = (
                split.iter().map(|p| p.datagrams_per_tick).min().unwrap(),
                split.iter().map(|p| p.datagrams_per_tick).max().unwrap(),
            );
            assert!(max - min <= 1, "split must be even: {split:?}");
        }
    }

    #[test]
    fn readiness_snapshot_is_owned_and_skips_finished_clients() {
        let data = patterned(20_000, 5);
        let net = SimMulticast::new(12);
        let (session, info) = sim_server(&data, SessionConfig::default(), &net);
        let mut el: EventLoop<crate::SimEndpoint> = EventLoop::new();
        let server = el.add_server_session(
            session,
            net.endpoint(0.0),
            Pacing::new(Duration::from_millis(1), 256),
        );
        let client = el
            .add_client(ClientSession::new(info).unwrap(), net.endpoint(0.0))
            .unwrap();
        let snapshot = el.readiness_snapshot();
        // Both slots report: the (control-less) server with an empty fd
        // set, the sim client as Polled.  The snapshot owns its data — no
        // borrow of the loop survives it.
        assert_eq!(snapshot.len(), 2);
        assert!(snapshot
            .iter()
            .any(|(t, r)| *t == server && matches!(r, Readiness::Sockets(f) if f.is_empty())));
        assert!(snapshot
            .iter()
            .any(|(t, r)| *t == client && matches!(r, Readiness::Polled)));
        while !el.all_clients_complete() {
            el.step();
        }
        // Finished clients wait on nothing and drop out of the snapshot.
        let snapshot = el.readiness_snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].0, server);
    }

    /// Transport wrapper whose joins fail above a group threshold, to drive
    /// the JoinFailed event path.
    struct FailingJoins<T: Transport> {
        inner: T,
        max_group: u32,
    }

    impl<T: Transport> Transport for FailingJoins<T> {
        fn send(&mut self, group: u32, datagram: Bytes) {
            self.inner.send(group, datagram);
        }
        fn recv(&mut self) -> Option<(u32, Bytes)> {
            self.inner.recv()
        }
        fn join(&mut self, group: u32) -> std::io::Result<()> {
            if group > self.max_group {
                return Err(std::io::Error::other("join refused"));
            }
            self.inner.join(group)
        }
        fn leave(&mut self, group: u32) {
            self.inner.leave(group);
        }
        fn readiness(&self) -> crate::transport::Readiness {
            self.inner.readiness()
        }
    }

    #[test]
    fn failed_joins_surface_as_events_and_counters() {
        let data = patterned(120_000, 6);
        let net = SimMulticast::new(21);
        let (session, info) = sim_server(
            &data,
            SessionConfig {
                layers: 6,
                code_seed: 3,
                sp_interval: 2,
                burst_rounds: 1,
                ..SessionConfig::default()
            },
            &net,
        );
        let n = session.code().unwrap().n();
        let mut el: EventLoop<FailingJoins<crate::SimEndpoint>> = EventLoop::new();
        el.add_server_session(
            session,
            FailingJoins {
                inner: net.endpoint(0.0),
                max_group: u32::MAX,
            },
            Pacing::new(Duration::from_millis(1), 2 * n),
        );
        // The client can join only the base layer; every upgrade attempt
        // fails at the transport.
        let token = el
            .add_client(
                ClientSession::new(info).unwrap(),
                FailingJoins {
                    inner: net.endpoint(0.0),
                    max_group: 0,
                },
            )
            .unwrap();
        for _ in 0..2_000 {
            el.step();
            if el.all_clients_complete() {
                break;
            }
        }
        assert!(el.all_clients_complete(), "base layer alone must suffice");
        let events = el.poll_events();
        let failed: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                LoopEvent::JoinFailed { token: t, group } => Some((*t, *group)),
                _ => None,
            })
            .collect();
        assert_eq!(el.stats().join_failures as usize, failed.len());
        assert!(
            !failed.is_empty(),
            "an unconstrained layered client must have tried to upgrade"
        );
        assert!(failed.iter().all(|(t, g)| *t == token && *g > 0));
        assert!(events
            .iter()
            .any(|e| matches!(e, LoopEvent::Completed { token: t, .. } if *t == token)));
    }

    #[test]
    fn rateless_sessions_pump_through_the_event_loop() {
        // The loop needs no rateless-specific code: poll_transmit /
        // round_complete / handle_datagram are the same contract, only the
        // datagrams now carry seeds.  Lossy and lossless clients of both
        // modes must complete, each with perfect distinctness.
        for mode in [crate::RatelessMode::Lt, crate::RatelessMode::Raptor] {
            let data = patterned(40_000, 7);
            let net = SimMulticast::new(9);
            let (session, info) = sim_server(
                &data,
                SessionConfig {
                    rateless: mode,
                    code_seed: 13,
                    ..SessionConfig::default()
                },
                &net,
            );
            let mut el: EventLoop<crate::SimEndpoint> = EventLoop::new();
            el.add_server_session(
                session,
                net.endpoint(0.0),
                Pacing::new(Duration::from_millis(1), 128),
            );
            let mut tokens = Vec::new();
            for i in 0..4 {
                let loss = if i % 2 == 0 { 0.0 } else { 0.3 };
                let client = ClientSession::new(info.clone()).unwrap();
                tokens.push(el.add_client(client, net.endpoint(loss)).unwrap());
            }
            for _ in 0..10_000 {
                el.step();
                if el.all_clients_complete() {
                    break;
                }
            }
            assert!(el.all_clients_complete(), "mode {mode:?} stalled");
            for token in tokens {
                let (client, _endpoint) = el.take_client(token).unwrap();
                assert_eq!(client.file().unwrap(), &data[..], "mode {mode:?}");
                assert_eq!(client.stats().distinctness_efficiency(), 1.0);
            }
        }
    }

    #[test]
    fn layered_join_intents_are_executed_by_the_loop() {
        let data = patterned(200_000, 3);
        let net = SimMulticast::new(5);
        let (session, info) = sim_server(
            &data,
            SessionConfig {
                layers: 6,
                code_seed: 3,
                sp_interval: 2,
                burst_rounds: 1,
                ..SessionConfig::default()
            },
            &net,
        );
        let n = session.code().unwrap().n();
        let mut el: EventLoop<crate::SimEndpoint> = EventLoop::new();
        el.add_server_session(
            session,
            net.endpoint(0.0),
            // Whole rounds per tick keep the layered cadence dense in time.
            Pacing::new(Duration::from_millis(1), 2 * n),
        );
        let client = ClientSession::new(info).unwrap();
        assert!(client.is_layered());
        let token = el.add_client(client, net.endpoint(0.0)).unwrap();
        for _ in 0..2_000 {
            el.step();
            if el.all_clients_complete() {
                break;
            }
        }
        assert!(el.all_clients_complete());
        let client = el.client(token).unwrap();
        let level = client.subscription_level().unwrap();
        assert!(
            level >= 1,
            "an unconstrained receiver must climb at least one layer"
        );
        assert_eq!(client.file().unwrap(), &data[..]);
        assert_eq!(el.stats().join_failures, 0);
    }

    #[test]
    fn equal_pacing_keeps_server_slots_within_one_round() {
        // Fairness: N server sessions with identical pacing each advance the
        // same number of rounds (±1 for mid-round budgets) after M steps.
        let net = SimMulticast::new(6);
        let mut el: EventLoop<crate::SimEndpoint> = EventLoop::new();
        let mut tokens = Vec::new();
        for salt in 0..5 {
            let data = patterned(40_000, salt);
            let session = ServerSession::new(
                &data,
                SessionConfig {
                    code_seed: salt as u64,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            tokens.push(el.add_server_session(
                session,
                net.endpoint(0.0),
                Pacing::new(Duration::from_millis(1), 64),
            ));
        }
        for _ in 0..100 {
            el.step();
        }
        let rounds: Vec<usize> = tokens
            .iter()
            .map(|&t| el.server_rounds(t).unwrap())
            .collect();
        let (min, max) = (*rounds.iter().min().unwrap(), *rounds.iter().max().unwrap());
        assert!(
            max - min <= 1,
            "equal pacing must stay within one round: {rounds:?}"
        );
        assert!(max > 0, "premise: some rounds were transmitted");
    }

    /// One recorded I/O operation of a [`Recording`] transport.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Op {
        Send(u32, Bytes),
        Join(u32),
        Leave(u32),
    }

    /// Transport wrapper recording every send/join/leave in order, so two
    /// driver runs can be compared operation-for-operation.
    struct Recording<T: Transport> {
        inner: T,
        log: std::rc::Rc<std::cell::RefCell<Vec<Op>>>,
    }

    impl<T: Transport> Transport for Recording<T> {
        fn send(&mut self, group: u32, datagram: Bytes) {
            self.log
                .borrow_mut()
                .push(Op::Send(group, datagram.clone()));
            self.inner.send(group, datagram);
        }
        fn recv(&mut self) -> Option<(u32, Bytes)> {
            self.inner.recv()
        }
        fn join(&mut self, group: u32) -> std::io::Result<()> {
            self.log.borrow_mut().push(Op::Join(group));
            self.inner.join(group)
        }
        fn leave(&mut self, group: u32) {
            self.log.borrow_mut().push(Op::Leave(group));
            self.inner.leave(group);
        }
        fn readiness(&self) -> crate::transport::Readiness {
            self.inner.readiness()
        }
    }

    #[test]
    fn identical_readiness_trace_yields_identical_emission_order() {
        // Trace-replay determinism: the loop is driven purely by `step`, so
        // a re-run over the same seeded channel sees the same readiness
        // trace — and must therefore emit the same operations in the same
        // order (server sends, client joins/leaves) and finish in the same
        // state.  The driver has no RNG, clock or hash-order dependence to
        // diverge on.
        let run = || {
            let data = patterned(150_000, 4);
            let net = SimMulticast::new(17);
            let session = ServerSession::new(
                &data,
                SessionConfig {
                    layers: 6,
                    code_seed: 11,
                    sp_interval: 2,
                    burst_rounds: 1,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            let n = session.code().unwrap().n();
            let info = session.control_info().clone();
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let mut el: EventLoop<Recording<crate::SimEndpoint>> = EventLoop::new();
            el.add_server_session(
                session,
                Recording {
                    inner: net.endpoint(0.0),
                    log: log.clone(),
                },
                Pacing::new(Duration::from_millis(1), n),
            );
            let mut tokens = Vec::new();
            for loss in [0.0, 0.3] {
                tokens.push(
                    el.add_client(
                        ClientSession::new(info.clone()).unwrap(),
                        Recording {
                            inner: net.endpoint(loss),
                            log: log.clone(),
                        },
                    )
                    .unwrap(),
                );
            }
            for _ in 0..300 {
                el.step();
                if el.all_clients_complete() {
                    break;
                }
            }
            let states: Vec<_> = tokens
                .iter()
                .map(|&t| {
                    let c = el.client(t).unwrap();
                    (
                        c.is_complete(),
                        c.subscription_level(),
                        c.stats().received(),
                        c.stats().distinct(),
                    )
                })
                .collect();
            let ops = log.borrow().clone();
            (ops, states, el.stats())
        };
        let first = run();
        let second = run();
        assert!(
            first.0.iter().any(|op| matches!(op, Op::Join(_))),
            "premise: the layered clients must issue subscription ops"
        );
        assert_eq!(first.1, second.1, "end states must match");
        assert_eq!(first.2, second.2, "loop counters must match");
        assert_eq!(first.0, second.0, "operation order must be identical");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Fairness: however many equally paced server slots share the loop
        /// and however long it runs, their carousels stay within one round
        /// of each other — no slot can starve another.
        #[test]
        fn prop_equal_rates_stay_within_one_round(
            servers in 2usize..6,
            budget in 1usize..300,
            steps in 1usize..120,
        ) {
            let net = SimMulticast::new(8);
            let mut el: EventLoop<crate::SimEndpoint> = EventLoop::new();
            let mut tokens = Vec::new();
            for salt in 0..servers {
                let data = patterned(10_000, salt);
                let session = ServerSession::new(
                    &data,
                    SessionConfig {
                        code_seed: salt as u64,
                        ..SessionConfig::default()
                    },
                )
                .unwrap();
                tokens.push(el.add_server_session(
                    session,
                    net.endpoint(0.0),
                    Pacing::new(Duration::from_millis(1), budget),
                ));
            }
            for _ in 0..steps {
                el.step();
            }
            let rounds: Vec<usize> = tokens
                .iter()
                .map(|&t| el.server_rounds(t).unwrap())
                .collect();
            let min = *rounds.iter().min().unwrap();
            let max = *rounds.iter().max().unwrap();
            proptest::prop_assert!(
                max - min <= 1,
                "unfair pacing: rounds {:?} with budget {} over {} steps",
                rounds, budget, steps
            );
        }
    }

    #[test]
    fn tokens_survive_taking_other_slots() {
        let data = patterned(20_000, 9);
        let net = SimMulticast::new(9);
        let (session, info) = sim_server(&data, SessionConfig::default(), &net);
        let mut el: EventLoop<crate::SimEndpoint> = EventLoop::new();
        el.add_server_session(
            session,
            net.endpoint(0.0),
            Pacing::new(Duration::from_millis(1), 256),
        );
        let a = el
            .add_client(ClientSession::new(info.clone()).unwrap(), net.endpoint(0.0))
            .unwrap();
        let b = el
            .add_client(ClientSession::new(info).unwrap(), net.endpoint(0.0))
            .unwrap();
        while !el.all_clients_complete() {
            el.step();
        }
        let (client_a, _) = el.take_client(a).unwrap();
        // Token b still resolves to client b after a's slot was vacated.
        assert!(el.client(b).unwrap().is_complete());
        assert!(el.take_client(a).is_none(), "a token cannot be taken twice");
        let (client_b, _) = el.take_client(b).unwrap();
        assert_eq!(client_a.file(), client_b.file());
    }
}
