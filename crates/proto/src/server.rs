//! The prototype server: encode the file, answer control requests, and
//! carousel the encoding over the session's multicast layers using the
//! reverse-binary schedule.

use crate::transport::Transport;
use crate::wire::{DataPacket, PacketHeader};
use bytes::Bytes;
use df_core::{PacketizedFile, TornadoCode, TornadoProfile, TORNADO_A};
use df_mcast::TransmissionSchedule;
use serde::{Deserialize, Serialize};

/// The session parameters a client fetches over the control channel before
/// subscribing (the paper's "UDP unicast thread which provides various
/// control information such as multicast group information and file length").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlInfo {
    /// Original file length in bytes.
    pub file_len: usize,
    /// Payload bytes per packet.
    pub packet_size: usize,
    /// Number of source packets `k`.
    pub k: usize,
    /// Number of encoding packets `n`.
    pub n: usize,
    /// Seed from which the Tornado graph structure is rebuilt client-side.
    pub code_seed: u64,
    /// Number of multicast layers.
    pub layers: usize,
    /// Profile name ("tornado-a" / "tornado-b").
    pub profile: String,
}

/// The prototype server.
#[derive(Debug)]
pub struct Server {
    code: TornadoCode,
    encoding: Vec<Vec<u8>>,
    schedule: TransmissionSchedule,
    control: ControlInfo,
    serial: u32,
    round: usize,
}

impl Server {
    /// Encode `data` with the given packet size, profile and seed, and prepare
    /// a session over `layers` multicast layers.
    ///
    /// # Errors
    ///
    /// Propagates packetisation and encoding errors from `df-core`.
    pub fn new(
        data: &[u8],
        packet_size: usize,
        layers: usize,
        profile: TornadoProfile,
        code_seed: u64,
    ) -> df_core::Result<Self> {
        let file = PacketizedFile::split(data, packet_size)?;
        let code = TornadoCode::with_profile(file.num_packets(), profile, code_seed)?;
        let encoding = code.encode(file.packets())?;
        let schedule = TransmissionSchedule::new(layers, code.n());
        let control = ControlInfo {
            file_len: file.file_len(),
            packet_size,
            k: code.k(),
            n: code.n(),
            code_seed,
            layers,
            profile: profile.name.to_string(),
        };
        Ok(Server {
            code,
            encoding,
            schedule,
            control,
            serial: 0,
            round: 0,
        })
    }

    /// Convenience constructor using the paper's defaults: Tornado A and
    /// 500-byte payloads.
    ///
    /// # Errors
    ///
    /// See [`Server::new`].
    pub fn with_defaults(data: &[u8], layers: usize, code_seed: u64) -> df_core::Result<Self> {
        Self::new(data, 500, layers, TORNADO_A, code_seed)
    }

    /// The control information a client needs to join the session.
    pub fn control_info(&self) -> &ControlInfo {
        &self.control
    }

    /// The Tornado code in use (exposed for tests and benchmarks).
    pub fn code(&self) -> &TornadoCode {
        &self.code
    }

    /// Transmit one full round of the layered schedule over `transport`.
    ///
    /// Every layer sends its scheduled packets for the current round on its
    /// own multicast group; group numbers equal layer numbers.
    pub fn send_round<T: Transport>(&mut self, transport: &mut T) {
        for layer in 0..self.schedule.layers() {
            for idx in self.schedule.transmission(layer, self.round) {
                let pkt = DataPacket::new(
                    PacketHeader {
                        packet_index: idx as u32,
                        serial: self.serial,
                        group: layer as u32,
                    },
                    Bytes::from(self.encoding[idx].clone()),
                );
                transport.send(layer as u32, pkt.to_bytes());
                self.serial = self.serial.wrapping_add(1);
            }
        }
        self.round += 1;
    }

    /// Number of complete rounds transmitted so far.
    pub fn rounds_sent(&self) -> usize {
        self.round
    }

    /// Total data packets transmitted so far.
    pub fn packets_sent(&self) -> u32 {
        self.serial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimMulticast;

    #[test]
    fn control_info_describes_the_session() {
        let data = vec![7u8; 10_000];
        let server = Server::with_defaults(&data, 4, 99).unwrap();
        let info = server.control_info();
        assert_eq!(info.file_len, 10_000);
        assert_eq!(info.packet_size, 500);
        assert_eq!(info.k, 20);
        assert_eq!(info.n, 40);
        assert_eq!(info.layers, 4);
        assert_eq!(info.profile, "tornado-a");
        // Control info round-trips through JSON, as it would over the wire.
        let json = serde_json::to_string(info).unwrap();
        let back: ControlInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, info);
    }

    #[test]
    fn send_round_emits_one_block_worth_of_packets_per_round() {
        let data = vec![1u8; 50_000];
        let mut server = Server::with_defaults(&data, 4, 1).unwrap();
        let mut net = SimMulticast::new(0);
        let rx = net.add_receiver(0.0);
        for layer in 0..4 {
            rx.subscribe(layer);
        }
        server.send_round(&mut net);
        // One round sends the full cumulative bandwidth (= block size) per block.
        let expected = server.code().n().div_ceil(8) * 8;
        assert!(rx.pending() <= expected);
        assert!(rx.pending() > 0);
        assert_eq!(server.rounds_sent(), 1);
    }
}
