//! The server side of the prototype: pure (sans-I/O) carousel state machines.
//!
//! [`ServerSession`] encodes one file and yields the datagrams of the
//! reverse-binary layered schedule through [`ServerSession::poll_transmit`];
//! it never touches a socket.  [`FountainServer`] owns many sessions, hands
//! each a disjoint range of multicast groups, interleaves their carousels
//! fairly, and answers [`ControlRequest`]s — the whole of Section 7.1's
//! deployed server, minus the I/O, which belongs to whatever driver loop owns
//! the [`crate::Transport`].

use crate::control::{ControlInfo, ControlRequest, ControlResponse};
use crate::rateless::{seed_to_words, RatelessMode, RatelessSender};
use crate::transport::Transport;
use crate::wire::{DataPacket, PacketHeader};
use bytes::Bytes;
use df_core::{PacketizedFile, RaptorCode, TornadoCode, TornadoProfile, TORNADO_A};
use df_mcast::{LayeredSession, TransmissionSchedule};
use std::collections::VecDeque;

/// Parameters for one carousel session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Payload bytes per packet (the paper's prototype uses 500).
    pub packet_size: usize,
    /// Number of multicast layers.
    pub layers: usize,
    /// Tornado profile to encode with.
    pub profile: TornadoProfile,
    /// Seed the client rebuilds the graph structure from.
    pub code_seed: u64,
    /// First multicast group of the session (layer `l` transmits on
    /// `base_group + l`).  [`FountainServer::add_session`] overrides this
    /// with the next free group range.
    pub base_group: u32,
    /// Session identifier.  [`FountainServer::add_session`] overrides this
    /// with the next free id.
    pub session_id: u32,
    /// Rounds between synchronisation points, or `0` for a flat carousel.
    /// When nonzero the session transmits the Section 7.1 layered
    /// congestion-control schedule: every `sp_interval`-th round is a sync
    /// point (a join opportunity for receivers) and the `burst_rounds`
    /// rounds before each SP are sent at double rate so receivers can probe
    /// the next subscription level without feedback to the source.
    pub sp_interval: usize,
    /// Rounds of double-rate burst preceding each SP (only meaningful when
    /// `sp_interval > 0`; must then be `< sp_interval`).
    pub burst_rounds: usize,
    /// Data-path encoding: [`RatelessMode::Off`] (default) transmits the
    /// fixed-encoding carousel; the seed-carrying modes stream fresh LT /
    /// Raptor symbols forever instead.  Rateless sessions are single-layer
    /// and flat (`layers == 1`, `sp_interval == 0`): every symbol is already
    /// distinct, so the layered schedule's duplicate-avoidance machinery has
    /// nothing to contribute.
    pub rateless: RatelessMode,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            packet_size: 500,
            layers: 1,
            profile: TORNADO_A,
            code_seed: 0,
            base_group: 0,
            session_id: 0,
            sp_interval: 0,
            burst_rounds: 0,
            rateless: RatelessMode::Off,
        }
    }
}

/// A single carousel session as a pure state machine.
///
/// Construction encodes the file; afterwards the session only hands out
/// datagrams.  A driver loop pumps it:
///
/// ```text
/// loop {
///     while let Some((group, datagram)) = session.poll_transmit() {
///         transport.send(group, datagram);   // the driver owns the socket
///     }
///     session.advance_round();               // and the pacing
/// }
/// ```
#[derive(Debug)]
pub struct ServerSession {
    engine: Engine,
    control: ControlInfo,
    serial: u32,
    round: usize,
    /// Total datagrams emitted (all modes; the rateless seed stream can
    /// exceed `u32`, so this is not the wire serial).
    sent: u64,
}

/// The transmit machinery behind a [`ServerSession`]: either the classic
/// fixed-encoding carousel or a never-repeating rateless symbol stream.
#[derive(Debug)]
enum Engine {
    Carousel {
        code: TornadoCode,
        encoding: Vec<Vec<u8>>,
        schedule: TransmissionSchedule,
        /// SP/burst cadence of the layered congestion-control mode; `None`
        /// for a flat carousel.
        layered: Option<LayeredSession>,
        /// `(layer, encoding index)` pairs still to transmit this round.
        pending: VecDeque<(usize, usize)>,
    },
    Rateless(RatelessSender),
}

impl ServerSession {
    /// Encode `data` under `config` and prepare the carousel (or, for a
    /// rateless `config`, the endless symbol stream).
    ///
    /// # Errors
    ///
    /// Propagates packetisation and encoding errors from `df-core`, and
    /// returns [`df_core::TornadoError::InvalidParameters`] for a degenerate
    /// layered configuration (see [`df_mcast::LayeredSession::new`]) or a
    /// rateless configuration that is not single-layer and flat.
    pub fn new(data: &[u8], config: SessionConfig) -> df_core::Result<Self> {
        let file = PacketizedFile::split(data, config.packet_size)?;
        if config.rateless.is_rateless() {
            return Self::new_rateless(&file, config);
        }
        let code = TornadoCode::with_profile(file.num_packets(), config.profile, config.code_seed)?;
        let encoding = code.encode(file.packets())?;
        let layered = if config.sp_interval > 0 {
            Some(LayeredSession::new(
                config.layers,
                code.n(),
                config.sp_interval,
                config.burst_rounds,
            )?)
        } else {
            None
        };
        let schedule = TransmissionSchedule::new(config.layers, code.n());
        let control = ControlInfo {
            session_id: config.session_id,
            file_len: file.file_len(),
            packet_size: config.packet_size,
            k: code.k(),
            n: code.n(),
            code_seed: config.code_seed,
            layers: config.layers,
            base_group: config.base_group,
            sp_interval: config.sp_interval,
            burst_rounds: config.burst_rounds,
            rateless: RatelessMode::Off,
            profile: config.profile.name.to_string(),
        };
        let mut session = ServerSession {
            engine: Engine::Carousel {
                code,
                encoding,
                schedule,
                layered,
                pending: VecDeque::new(),
            },
            control,
            serial: 0,
            round: 0,
            sent: 0,
        };
        session.refill_round();
        Ok(session)
    }

    /// Build the rateless variant: no retained encoding, no schedule — just
    /// the seed-carrying symbol stream over one multicast group.
    fn new_rateless(file: &PacketizedFile, config: SessionConfig) -> df_core::Result<Self> {
        if config.layers != 1 || config.sp_interval != 0 {
            return Err(df_core::TornadoError::InvalidParameters {
                reason: format!(
                    "rateless sessions are single-layer and flat; got layers = {}, \
                     sp_interval = {} (every symbol is already distinct, so the \
                     layered schedule has nothing to add)",
                    config.layers, config.sp_interval
                ),
            });
        }
        let k = file.num_packets();
        let (sender, n) = match config.rateless {
            RatelessMode::Lt => {
                // The LT layer ranges over the k uniform source packets
                // themselves (PacketizedFile pads the last one), so the
                // advertised symbol count n is k.
                (
                    RatelessSender::for_lt(file.packets().to_vec(), config.code_seed)?,
                    k,
                )
            }
            RatelessMode::Raptor => {
                let code = RaptorCode::new(k, config.code_seed)?;
                let n = code.intermediate_count();
                (RatelessSender::for_raptor(&code, file.packets())?, n)
            }
            // Unreachable (the caller dispatched on is_rateless()), but an
            // error beats a panic in session-construction code.
            RatelessMode::Off => {
                return Err(df_core::TornadoError::InvalidParameters {
                    reason: "rateless constructor called with mode Off".to_string(),
                })
            }
        };
        let control = ControlInfo {
            session_id: config.session_id,
            file_len: file.file_len(),
            packet_size: config.packet_size,
            k,
            n,
            code_seed: config.code_seed,
            layers: 1,
            base_group: config.base_group,
            sp_interval: 0,
            burst_rounds: 0,
            rateless: config.rateless,
            profile: config.profile.name.to_string(),
        };
        Ok(ServerSession {
            engine: Engine::Rateless(sender),
            control,
            serial: 0,
            round: 0,
            sent: 0,
        })
    }

    /// Convenience constructor using the paper's defaults: Tornado A and
    /// 500-byte payloads.
    ///
    /// # Errors
    ///
    /// See [`ServerSession::new`].
    pub fn with_defaults(data: &[u8], layers: usize, code_seed: u64) -> df_core::Result<Self> {
        Self::new(
            data,
            SessionConfig {
                layers,
                code_seed,
                ..SessionConfig::default()
            },
        )
    }

    /// The control information a client needs to join the session.
    pub fn control_info(&self) -> &ControlInfo {
        &self.control
    }

    /// This session's identifier.
    pub fn session_id(&self) -> u32 {
        self.control.session_id
    }

    /// The Tornado code in use, for carousel sessions (exposed for tests and
    /// benchmarks); `None` for rateless sessions, which retain no fixed
    /// encoding at all.
    pub fn code(&self) -> Option<&TornadoCode> {
        match &self.engine {
            Engine::Carousel { code, .. } => Some(code),
            Engine::Rateless(_) => None,
        }
    }

    /// The reverse-binary transmission schedule driving the carousel;
    /// `None` for rateless sessions (an endless seed stream has no
    /// schedule).
    pub fn schedule(&self) -> Option<&TransmissionSchedule> {
        match &self.engine {
            Engine::Carousel { schedule, .. } => Some(schedule),
            Engine::Rateless(_) => None,
        }
    }

    /// Data-path encoding of this session.
    pub fn rateless_mode(&self) -> RatelessMode {
        self.control.rateless
    }

    /// True when the session transmits the layered congestion-control
    /// schedule (SPs and bursts) rather than a flat carousel.
    pub fn is_layered(&self) -> bool {
        matches!(
            &self.engine,
            Engine::Carousel {
                layered: Some(_),
                ..
            }
        )
    }

    /// True when the round currently being transmitted is part of a
    /// double-rate burst period (always false for flat and rateless
    /// sessions).
    pub fn in_burst(&self) -> bool {
        match &self.engine {
            Engine::Carousel { layered, .. } => {
                layered.as_ref().is_some_and(|l| l.is_burst(self.round))
            }
            Engine::Rateless(_) => false,
        }
    }

    /// The next datagram to transmit this round, as `(group, datagram)`, or
    /// `None` once the round's schedule is exhausted (call
    /// [`ServerSession::advance_round`] to start the next round).
    ///
    /// A carousel round walks the reverse-binary schedule over the retained
    /// encoding; a rateless round emits `k` *fresh* symbols, the header's
    /// `packet_index:serial` words carrying each symbol's 64-bit seed.
    pub fn poll_transmit(&mut self) -> Option<(u32, Bytes)> {
        let out = match &mut self.engine {
            Engine::Carousel {
                encoding, pending, ..
            } => {
                let (layer, idx) = pending.pop_front()?;
                let group = self.control.base_group + layer as u32;
                let header = PacketHeader {
                    packet_index: idx as u32,
                    serial: self.serial,
                    group,
                };
                self.serial = self.serial.wrapping_add(1);
                // Frame straight from the retained encoding: the carousel
                // re-sends every packet forever, so an extra per-datagram
                // payload copy here would be an unbounded stream of
                // redundant allocations.
                (group, DataPacket::frame(&header, &encoding[idx]))
            }
            Engine::Rateless(sender) => {
                let (seed, payload) = sender.poll()?;
                let (packet_index, serial) = seed_to_words(seed);
                let group = self.control.base_group;
                let header = PacketHeader {
                    packet_index,
                    serial,
                    group,
                };
                (group, DataPacket::frame(&header, &payload))
            }
        };
        self.sent += 1;
        Some(out)
    }

    /// True when the current round's schedule (or rateless symbol quota) has
    /// been fully polled.
    pub fn round_complete(&self) -> bool {
        match &self.engine {
            Engine::Carousel { pending, .. } => pending.is_empty(),
            Engine::Rateless(sender) => sender.round_complete(),
        }
    }

    /// Begin the next round, discarding whatever the driver chose not to
    /// transmit of the current one (for a rateless session nothing is
    /// discarded — the unsent seeds were simply never generated).
    pub fn advance_round(&mut self) {
        self.round += 1;
        self.refill_round();
    }

    fn refill_round(&mut self) {
        let round = self.round;
        match &mut self.engine {
            Engine::Carousel {
                schedule,
                layered,
                pending,
                ..
            } => {
                pending.clear();
                let burst = layered.as_ref().is_some_and(|l| l.is_burst(round));
                for layer in 0..schedule.layers() {
                    let tx = schedule.transmission(layer, round);
                    for &idx in &tx {
                        pending.push_back((layer, idx));
                    }
                    if burst {
                        // The burst repeats the layer's packets at double
                        // rate; the duplicates carry no new data, they exist
                        // to stress the receiver's bottleneck so the
                        // resulting loss (or its absence) answers the "could
                        // I sustain one more layer?" probe without any
                        // feedback channel.
                        for &idx in &tx {
                            pending.push_back((layer, idx));
                        }
                    }
                }
            }
            Engine::Rateless(sender) => sender.advance_round(),
        }
    }

    /// Drive one full round through a transport (a convenience driver on top
    /// of [`ServerSession::poll_transmit`]).
    pub fn send_round<T: Transport>(&mut self, transport: &mut T) {
        while let Some((group, datagram)) = self.poll_transmit() {
            transport.send(group, datagram);
        }
        self.advance_round();
    }

    /// Number of complete rounds transmitted so far.
    pub fn rounds_sent(&self) -> usize {
        self.round
    }

    /// Total data packets transmitted so far (`u64`: a rateless session's
    /// seed stream outlives any `u32` counter).
    pub fn packets_sent(&self) -> u64 {
        self.sent
    }
}

/// A multi-session carousel server: many files to many group sets
/// concurrently, plus the control channel that announces them.
///
/// Sessions are added with [`FountainServer::add_session`], which assigns
/// each one a fresh session id and the next free contiguous range of
/// multicast groups.  [`FountainServer::poll_transmit`] interleaves the
/// sessions' carousels round-robin, one datagram at a time, so a driver loop
/// serves every session concurrently through a single transport:
///
/// ```text
/// while running {
///     if let Some((group, datagram)) = server.poll_transmit() {
///         transport.send(group, datagram);
///     }
///     while let Some(request) = control_socket.try_recv() {
///         control_socket.reply(server.handle_control_datagram(&request));
///     }
/// }
/// ```
#[derive(Debug, Default)]
pub struct FountainServer {
    sessions: Vec<ServerSession>,
    next_group: u32,
    next_id: u32,
    cursor: usize,
}

impl FountainServer {
    /// A server with no sessions yet.
    pub fn new() -> Self {
        FountainServer::default()
    }

    /// Encode `data` and add it as a new carousel session.
    ///
    /// `config.session_id` and `config.base_group` are overridden with the
    /// next free id and group range; the returned id is what clients pass to
    /// [`ControlRequest::Describe`].
    ///
    /// # Errors
    ///
    /// See [`ServerSession::new`].
    pub fn add_session(&mut self, data: &[u8], config: SessionConfig) -> df_core::Result<u32> {
        let config = SessionConfig {
            session_id: self.next_id,
            base_group: self.next_group,
            ..config
        };
        let session = ServerSession::new(data, config)?;
        self.next_group += config.layers as u32;
        self.next_id += 1;
        let id = session.session_id();
        self.sessions.push(session);
        Ok(id)
    }

    /// The active sessions, in the order they were added.
    pub fn sessions(&self) -> &[ServerSession] {
        &self.sessions
    }

    /// Look one session up by id.
    pub fn session(&self, session_id: u32) -> Option<&ServerSession> {
        self.sessions.iter().find(|s| s.session_id() == session_id)
    }

    /// Answer one control request.
    pub fn handle_control(&self, request: &ControlRequest) -> ControlResponse {
        match *request {
            ControlRequest::ListSessions => ControlResponse::SessionList {
                session_ids: self.sessions.iter().map(|s| s.session_id()).collect(),
            },
            ControlRequest::Describe { session_id } => match self.session(session_id) {
                Some(s) => ControlResponse::Session {
                    info: s.control_info().clone(),
                },
                None => ControlResponse::UnknownSession { session_id },
            },
        }
    }

    /// Answer one raw control datagram, producing the raw response datagram —
    /// the whole wire-level control channel in one call.  Malformed requests
    /// get a [`ControlResponse::BadRequest`] rather than silence, so a
    /// misbehaving client fails fast instead of timing out.
    pub fn handle_control_datagram(&self, datagram: &[u8]) -> Bytes {
        match ControlRequest::from_bytes(datagram) {
            Some(request) => self.handle_control(&request),
            None => ControlResponse::BadRequest,
        }
        .to_bytes()
    }

    /// The next datagram to transmit across all sessions, round-robin.
    ///
    /// Rounds advance automatically — the carousel never ends — so this
    /// returns `None` only when the server has no sessions.  The driver owns
    /// the pacing: call as fast as the outgoing link (or the test) allows.
    pub fn poll_transmit(&mut self) -> Option<(u32, Bytes)> {
        let n = self.sessions.len();
        for probe in 0..n {
            let i = (self.cursor + probe) % n;
            let session = &mut self.sessions[i];
            if session.round_complete() {
                session.advance_round();
            }
            if let Some(out) = session.poll_transmit() {
                self.cursor = (i + 1) % n;
                return Some(out);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{SimMulticast, Transport};

    #[test]
    fn control_info_describes_the_session() {
        let data = vec![7u8; 10_000];
        let server = ServerSession::with_defaults(&data, 4, 99).unwrap();
        let info = server.control_info();
        assert_eq!(info.file_len, 10_000);
        assert_eq!(info.packet_size, 500);
        assert_eq!(info.k, 20);
        assert_eq!(info.n, 40);
        assert_eq!(info.layers, 4);
        assert_eq!(info.base_group, 0);
        assert_eq!(info.profile, "tornado-a");
        assert_eq!(info.groups().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Control info round-trips through the wire framing, as it would over
        // the control channel.
        let resp = ControlResponse::Session { info: info.clone() };
        let back = ControlResponse::from_bytes(&resp.to_bytes()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn send_round_emits_one_block_worth_of_packets_per_round() {
        let data = vec![1u8; 50_000];
        let mut server = ServerSession::with_defaults(&data, 4, 1).unwrap();
        let net = SimMulticast::new(0);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.0);
        for layer in 0..4 {
            rx.join(layer).unwrap();
        }
        server.send_round(&mut tx);
        // One round sends the full cumulative bandwidth (= block size) per block.
        let expected = server.code().unwrap().n().div_ceil(8) * 8;
        assert!(rx.pending() <= expected);
        assert!(rx.pending() > 0);
        assert_eq!(server.rounds_sent(), 1);
    }

    #[test]
    fn poll_transmit_equals_send_round() {
        // The convenience driver and the raw state machine emit the same
        // datagrams: sans-I/O means no simulation-only branches.
        let data = vec![3u8; 20_000];
        let mut a = ServerSession::with_defaults(&data, 2, 5).unwrap();
        let mut b = ServerSession::with_defaults(&data, 2, 5).unwrap();
        let net = SimMulticast::new(0);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.0);
        rx.join(0).unwrap();
        rx.join(1).unwrap();
        a.send_round(&mut tx);
        let mut from_polls = Vec::new();
        while let Some((group, datagram)) = b.poll_transmit() {
            from_polls.push((group, datagram));
        }
        b.advance_round();
        let mut from_send = Vec::new();
        while let Some(got) = rx.recv() {
            from_send.push(got);
        }
        assert_eq!(from_send, from_polls);
        assert_eq!(a.packets_sent(), b.packets_sent());
    }

    #[test]
    fn layered_sessions_emit_n_datagrams_per_plain_round_and_2n_per_burst() {
        // The serial → round contract the client's congestion controller
        // relies on: across all layers a round transmits every encoding
        // packet exactly once (Table 5's columns cover the block), twice
        // during a burst.
        let data = vec![4u8; 30_000];
        let mut server = ServerSession::new(
            &data,
            SessionConfig {
                layers: 4,
                code_seed: 2,
                sp_interval: 4,
                burst_rounds: 2,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let n = server.code().unwrap().n();
        for round in 0..12 {
            let mut count = 0usize;
            let mut indices = std::collections::HashMap::new();
            while let Some((_group, datagram)) = server.poll_transmit() {
                let pkt = DataPacket::from_bytes(datagram).unwrap();
                *indices.entry(pkt.header.packet_index).or_insert(0usize) += 1;
                count += 1;
            }
            let burst = round % 4 >= 2; // sp_interval 4, burst_rounds 2
            assert_eq!(server.in_burst(), burst, "round {round}");
            let per_packet = if burst { 2 } else { 1 };
            assert_eq!(count, per_packet * n, "round {round}");
            assert_eq!(indices.len(), n, "round {round} must cover the encoding");
            assert!(indices.values().all(|&c| c == per_packet));
            server.advance_round();
        }
        assert_eq!(server.packets_sent() as usize, 12 * n / 2 * 3);
    }

    #[test]
    fn degenerate_layered_config_is_a_constructor_error() {
        for (sp, burst) in [(1usize, 0usize), (4, 4), (4, 5)] {
            let result = ServerSession::new(
                &[1u8; 10_000],
                SessionConfig {
                    layers: 4,
                    sp_interval: sp,
                    burst_rounds: burst,
                    ..SessionConfig::default()
                },
            );
            assert!(
                matches!(result, Err(df_core::TornadoError::InvalidParameters { .. })),
                "sp = {sp}, burst = {burst} must be rejected"
            );
        }
    }

    #[test]
    fn sessions_get_disjoint_group_ranges_and_ids() {
        let mut server = FountainServer::new();
        let a = server
            .add_session(
                &[1u8; 30_000],
                SessionConfig {
                    layers: 4,
                    ..Default::default()
                },
            )
            .unwrap();
        let b = server
            .add_session(
                &[2u8; 10_000],
                SessionConfig {
                    layers: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!((a, b), (0, 1));
        let ia = server.session(a).unwrap().control_info();
        let ib = server.session(b).unwrap().control_info();
        assert_eq!(ia.groups().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(ib.groups().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn control_channel_answers_list_describe_and_garbage() {
        let mut server = FountainServer::new();
        let id = server
            .add_session(&[9u8; 5_000], SessionConfig::default())
            .unwrap();
        let resp = server.handle_control(&ControlRequest::ListSessions);
        assert_eq!(
            resp,
            ControlResponse::SessionList {
                session_ids: vec![id]
            }
        );

        let wire =
            server.handle_control_datagram(&ControlRequest::Describe { session_id: id }.to_bytes());
        match ControlResponse::from_bytes(&wire).unwrap() {
            ControlResponse::Session { info } => assert_eq!(info.file_len, 5_000),
            other => panic!("expected Session, got {other:?}"),
        }

        let wire =
            server.handle_control_datagram(&ControlRequest::Describe { session_id: 77 }.to_bytes());
        assert_eq!(
            ControlResponse::from_bytes(&wire).unwrap(),
            ControlResponse::UnknownSession { session_id: 77 }
        );

        let wire = server.handle_control_datagram(b"not a control datagram");
        assert_eq!(
            ControlResponse::from_bytes(&wire).unwrap(),
            ControlResponse::BadRequest
        );
    }

    #[test]
    fn poll_transmit_interleaves_sessions_fairly() {
        let mut server = FountainServer::new();
        let a = server
            .add_session(&[1u8; 40_000], SessionConfig::default())
            .unwrap();
        let b = server
            .add_session(&[2u8; 40_000], SessionConfig::default())
            .unwrap();
        let (ga, gb) = (
            server.session(a).unwrap().control_info().base_group,
            server.session(b).unwrap().control_info().base_group,
        );
        let mut counts = [0usize; 2];
        for _ in 0..1_000 {
            let (group, _) = server.poll_transmit().unwrap();
            if group == ga {
                counts[0] += 1;
            } else {
                assert_eq!(group, gb);
                counts[1] += 1;
            }
        }
        assert_eq!(counts, [500, 500], "strict alternation between sessions");
    }

    #[test]
    fn rateless_sessions_emit_fresh_seeds_forever() {
        let data = vec![5u8; 25_000]; // k = 50
        for mode in [RatelessMode::Lt, RatelessMode::Raptor] {
            let mut server = ServerSession::new(
                &data,
                SessionConfig {
                    rateless: mode,
                    code_seed: 7,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            assert!(server.code().is_none(), "no retained encoding");
            assert!(server.schedule().is_none(), "no carousel schedule");
            assert!(!server.is_layered() && !server.in_burst());
            assert_eq!(server.rateless_mode(), mode);
            let info = server.control_info();
            assert_eq!(info.rateless, mode);
            assert_eq!(info.k, 50);
            match mode {
                RatelessMode::Lt => assert_eq!(info.n, 50, "LT advertises n = k"),
                RatelessMode::Raptor => assert!(info.n > 50, "Raptor advertises L > k"),
                RatelessMode::Off => unreachable!(),
            }
            // Three rounds of k fresh symbols each; every header carries the
            // next monotonic seed and never repeats.
            let mut seeds = std::collections::HashSet::new();
            for round in 0..3u64 {
                let mut in_round = 0u64;
                while let Some((group, datagram)) = server.poll_transmit() {
                    assert_eq!(group, 0);
                    let pkt = DataPacket::from_bytes(datagram).unwrap();
                    let seed = crate::rateless::seed_from_words(
                        pkt.header.packet_index,
                        pkt.header.serial,
                    );
                    assert_eq!(seed, round * 50 + in_round, "monotonic seed stream");
                    assert!(seeds.insert(seed), "seed {seed} repeated");
                    in_round += 1;
                }
                assert_eq!(in_round, 50, "one k-symbol round");
                assert!(server.round_complete());
                server.advance_round();
            }
            assert_eq!(server.packets_sent(), 150);
        }
    }

    #[test]
    fn rateless_rejects_layered_configs() {
        for (layers, sp) in [(2usize, 0usize), (1, 4), (4, 4)] {
            let result = ServerSession::new(
                &[1u8; 10_000],
                SessionConfig {
                    rateless: RatelessMode::Lt,
                    layers,
                    sp_interval: sp,
                    burst_rounds: sp.saturating_sub(3),
                    ..SessionConfig::default()
                },
            );
            assert!(
                matches!(result, Err(df_core::TornadoError::InvalidParameters { .. })),
                "rateless with layers = {layers}, sp = {sp} must be rejected"
            );
        }
    }

    #[test]
    fn empty_server_transmits_nothing() {
        let mut server = FountainServer::new();
        assert!(server.poll_transmit().is_none());
        assert_eq!(
            server.handle_control(&ControlRequest::ListSessions),
            ControlResponse::SessionList {
                session_ids: vec![]
            }
        );
    }
}
