//! Pluggable multicast transports for the prototype.
//!
//! The paper's prototype runs over IP multicast between Berkeley, CMU and
//! Cornell; we do not have that testbed, so the default transport is
//! [`SimMulticast`], an in-memory best-effort multicast channel with
//! per-receiver loss (the substitution is documented in DESIGN.md).  The
//! server and client only speak through the [`Transport`] trait, so the same
//! code drives real UDP sockets in the `udp_fountain` example.

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// A best-effort multicast sender: datagrams are addressed to a group and
/// delivered (or not) to every subscribed receiver.
pub trait Transport {
    /// Send one datagram to `group`.
    fn send(&mut self, group: u32, datagram: Bytes);
}

/// One receiver's endpoint on a [`SimMulticast`] channel.
#[derive(Debug)]
pub struct SimReceiverHandle {
    inner: Arc<Mutex<SimInner>>,
    receiver: usize,
}

#[derive(Debug)]
struct ReceiverState {
    /// Loss probability applied to every datagram for this receiver.
    loss: f64,
    /// Groups this receiver is subscribed to.
    groups: Vec<u32>,
    /// Delivered datagrams waiting to be read.
    queue: VecDeque<(u32, Bytes)>,
}

#[derive(Debug)]
struct SimInner {
    receivers: Vec<ReceiverState>,
    rng: StdRng,
    sent: u64,
    delivered: u64,
}

/// A deterministic in-memory lossy multicast channel.
///
/// Every datagram sent to a group is independently delivered to each
/// subscribed receiver with probability `1 − loss(receiver)` — the same
/// best-effort semantics as IP multicast over a lossy path.
#[derive(Debug, Clone)]
pub struct SimMulticast {
    inner: Arc<Mutex<SimInner>>,
}

impl SimMulticast {
    /// Create a channel seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        SimMulticast {
            inner: Arc::new(Mutex::new(SimInner {
                receivers: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                sent: 0,
                delivered: 0,
            })),
        }
    }

    /// Attach a receiver with the given independent loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1)`.
    pub fn add_receiver(&self, loss: f64) -> SimReceiverHandle {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        let mut inner = self.inner.lock();
        inner.receivers.push(ReceiverState {
            loss,
            groups: Vec::new(),
            queue: VecDeque::new(),
        });
        SimReceiverHandle {
            inner: self.inner.clone(),
            receiver: inner.receivers.len() - 1,
        }
    }

    /// Total datagrams sent on the channel.
    pub fn sent(&self) -> u64 {
        self.inner.lock().sent
    }

    /// Total datagram deliveries across all receivers.
    pub fn delivered(&self) -> u64 {
        self.inner.lock().delivered
    }
}

impl Transport for SimMulticast {
    fn send(&mut self, group: u32, datagram: Bytes) {
        let mut inner = self.inner.lock();
        inner.sent += 1;
        let mut deliveries = Vec::new();
        for (i, r) in inner.receivers.iter().enumerate() {
            if !r.groups.contains(&group) {
                continue;
            }
            deliveries.push((i, r.loss));
        }
        for (i, loss) in deliveries {
            if inner.rng.gen::<f64>() < loss {
                continue;
            }
            inner.receivers[i]
                .queue
                .push_back((group, datagram.clone()));
            inner.delivered += 1;
        }
    }
}

impl SimReceiverHandle {
    /// Subscribe to a multicast group (a cumulative layered receiver calls
    /// this once per layer it joins).
    pub fn subscribe(&self, group: u32) {
        let mut inner = self.inner.lock();
        let groups = &mut inner.receivers[self.receiver].groups;
        if !groups.contains(&group) {
            groups.push(group);
        }
    }

    /// Leave a multicast group.
    pub fn unsubscribe(&self, group: u32) {
        let mut inner = self.inner.lock();
        inner.receivers[self.receiver]
            .groups
            .retain(|&g| g != group);
    }

    /// Pop the next delivered datagram, if any.
    pub fn recv(&self) -> Option<(u32, Bytes)> {
        self.inner.lock().receivers[self.receiver].queue.pop_front()
    }

    /// Number of datagrams waiting.
    pub fn pending(&self) -> usize {
        self.inner.lock().receivers[self.receiver].queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_subscription() {
        let mut net = SimMulticast::new(1);
        let rx = net.add_receiver(0.0);
        net.send(0, Bytes::from_static(b"before subscribe"));
        assert_eq!(rx.pending(), 0);
        rx.subscribe(0);
        net.send(0, Bytes::from_static(b"hello"));
        net.send(1, Bytes::from_static(b"other group"));
        assert_eq!(rx.pending(), 1);
        let (group, data) = rx.recv().unwrap();
        assert_eq!(group, 0);
        assert_eq!(&data[..], b"hello");
        assert!(rx.recv().is_none());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut net = SimMulticast::new(2);
        let rx = net.add_receiver(0.0);
        rx.subscribe(3);
        net.send(3, Bytes::from_static(b"a"));
        rx.unsubscribe(3);
        net.send(3, Bytes::from_static(b"b"));
        assert_eq!(rx.pending(), 1);
    }

    #[test]
    fn loss_rate_is_respected_statistically() {
        let mut net = SimMulticast::new(3);
        let rx = net.add_receiver(0.3);
        rx.subscribe(0);
        for _ in 0..10_000 {
            net.send(0, Bytes::from_static(b"x"));
        }
        let delivered = rx.pending() as f64;
        let rate = 1.0 - delivered / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "measured loss {rate}");
        assert_eq!(net.sent(), 10_000);
    }

    #[test]
    fn independent_loss_across_receivers() {
        let mut net = SimMulticast::new(4);
        let a = net.add_receiver(0.0);
        let b = net.add_receiver(0.5);
        a.subscribe(0);
        b.subscribe(0);
        for _ in 0..2_000 {
            net.send(0, Bytes::from_static(b"y"));
        }
        assert_eq!(a.pending(), 2_000);
        assert!(b.pending() < 1_400 && b.pending() > 600);
    }
}
