//! Pluggable multicast transports for the prototype.
//!
//! The paper's prototype runs over IP multicast between Berkeley, CMU and
//! Cornell; this crate's sessions are *sans-I/O* state machines that speak
//! only through the bidirectional [`Transport`] trait, so the same session
//! code runs over two interchangeable channels:
//!
//! * [`SimMulticast`] — a deterministic in-memory lossy multicast used by the
//!   tests, the benchmarks and the Figure 8 reproduction.  Each participant
//!   holds a [`SimEndpoint`].
//! * [`crate::UdpMulticastTransport`] — real `std::net::UdpSocket`s (IP
//!   multicast or loopback unicast), exercised by the `udp_fountain` example
//!   and the UDP integration tests.
//!
//! A transport is a *best-effort* datagram channel with group addressing —
//! the same service model as IP multicast.  Sends may silently vanish (that
//! is the loss the fountain code exists to absorb) and `recv` never blocks:
//! the I/O driver owns the socket/channel and decides when to poll.

use crate::sync::{Arc, Mutex};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// How an I/O driver can learn that a transport has datagrams waiting,
/// without spinning on [`Transport::try_recv`].
///
/// A readiness-driven driver (see [`crate::driver::EventLoop`]) collects
/// every transport's readiness once, registers the socket-backed ones with a
/// poller, and sleeps until the OS reports one readable — which is what lets
/// a single thread pump thousands of sessions.  In-memory transports have no
/// OS handle, so they report [`Readiness::Polled`] and the driver drains
/// them on its tick cadence instead.
///
/// The set of sources can change over a transport's lifetime (joining a
/// multicast group opens a socket, leaving closes it), so drivers re-collect
/// readiness after executing any join/leave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Readiness {
    /// No OS handle to wait on: the driver polls [`Transport::try_recv`] on
    /// its own cadence.
    Polled,
    /// Wait for readability of these raw socket fds (Unix file descriptors;
    /// plain `i32` so the sans-I/O crate stays portable).
    Sockets(Vec<i32>),
}

/// A bidirectional best-effort multicast endpoint: datagrams are addressed to
/// a group and delivered (or not) to every endpoint joined to it.
pub trait Transport {
    /// Send one datagram to `group`.  Best-effort: errors are indistinguishable
    /// from channel loss, exactly as with a UDP socket sending to a multicast
    /// group with no subscribers.
    fn send(&mut self, group: u32, datagram: Bytes);

    /// Pop the next delivered datagram, if any, together with the group it
    /// arrived on.  Non-blocking; drivers that want to block or sleep do so
    /// around this call.
    fn recv(&mut self) -> Option<(u32, Bytes)>;

    /// The explicitly non-blocking receive path of the readiness-driven
    /// driver: identical contract to [`Transport::recv`] (which this
    /// workspace's transports already implement without blocking), spelled
    /// separately so a future transport whose `recv` *may* block still has a
    /// name for the path that never does.
    fn try_recv(&mut self) -> Option<(u32, Bytes)> {
        self.recv()
    }

    /// What a driver can wait on to learn this transport is readable.
    /// Defaults to [`Readiness::Polled`]; socket-backed transports override
    /// it with their fds.
    fn readiness(&self) -> Readiness {
        Readiness::Polled
    }

    /// Join a multicast group (a cumulative layered receiver calls this once
    /// per layer it subscribes to).
    ///
    /// # Errors
    ///
    /// Transports backed by real sockets can fail to join (e.g. the group's
    /// port is taken); the in-memory transport never fails.
    fn join(&mut self, group: u32) -> std::io::Result<()>;

    /// Leave a multicast group.
    fn leave(&mut self, group: u32);
}

/// One participant's endpoint on a [`SimMulticast`] channel.
#[derive(Debug)]
pub struct SimEndpoint {
    inner: Arc<Mutex<SimInner>>,
    receiver: usize,
}

#[derive(Debug)]
struct ReceiverState {
    /// Loss probability applied to every datagram for this receiver.
    loss: f64,
    /// Groups this receiver is subscribed to.
    groups: Vec<u32>,
    /// Delivered datagrams waiting to be read.
    queue: VecDeque<(u32, Bytes)>,
}

#[derive(Debug)]
struct SimInner {
    receivers: Vec<ReceiverState>,
    rng: StdRng,
    sent: u64,
    delivered: u64,
}

/// A deterministic in-memory lossy multicast channel.
///
/// Every datagram sent to a group is independently delivered to each
/// subscribed endpoint with probability `1 − loss(endpoint)` — the same
/// best-effort semantics as IP multicast over a lossy path.  Like IP
/// multicast with `IP_MULTICAST_LOOP` enabled, a sender that has joined the
/// group it sends to receives its own datagrams.
#[derive(Debug, Clone)]
pub struct SimMulticast {
    inner: Arc<Mutex<SimInner>>,
}

impl SimMulticast {
    /// Create a channel seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        SimMulticast {
            inner: Arc::new(Mutex::new(SimInner {
                receivers: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                sent: 0,
                delivered: 0,
            })),
        }
    }

    /// Attach an endpoint with the given independent loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1)`.
    pub fn endpoint(&self, loss: f64) -> SimEndpoint {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        let mut inner = self.inner.lock();
        inner.receivers.push(ReceiverState {
            loss,
            groups: Vec::new(),
            queue: VecDeque::new(),
        });
        SimEndpoint {
            inner: self.inner.clone(),
            receiver: inner.receivers.len() - 1,
        }
    }

    /// Total datagrams sent on the channel.
    pub fn sent(&self) -> u64 {
        self.inner.lock().sent
    }

    /// Total datagram deliveries across all endpoints.
    pub fn delivered(&self) -> u64 {
        self.inner.lock().delivered
    }
}

impl SimEndpoint {
    /// Number of datagrams waiting in this endpoint's queue.
    pub fn pending(&self) -> usize {
        self.inner.lock().receivers[self.receiver].queue.len()
    }
}

impl Transport for SimEndpoint {
    fn send(&mut self, group: u32, datagram: Bytes) {
        let mut inner = self.inner.lock();
        inner.sent += 1;
        let mut deliveries = Vec::new();
        for (i, r) in inner.receivers.iter().enumerate() {
            if !r.groups.contains(&group) {
                continue;
            }
            deliveries.push((i, r.loss));
        }
        for (i, loss) in deliveries {
            if inner.rng.gen::<f64>() < loss {
                continue;
            }
            inner.receivers[i]
                .queue
                .push_back((group, datagram.clone()));
            inner.delivered += 1;
        }
    }

    fn recv(&mut self) -> Option<(u32, Bytes)> {
        self.inner.lock().receivers[self.receiver].queue.pop_front()
    }

    fn join(&mut self, group: u32) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        let groups = &mut inner.receivers[self.receiver].groups;
        if !groups.contains(&group) {
            groups.push(group);
        }
        Ok(())
    }

    fn leave(&mut self, group: u32) {
        let mut inner = self.inner.lock();
        inner.receivers[self.receiver]
            .groups
            .retain(|&g| g != group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_subscription() {
        let net = SimMulticast::new(1);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.0);
        tx.send(0, Bytes::from_static(b"before subscribe"));
        assert_eq!(rx.pending(), 0);
        rx.join(0).unwrap();
        tx.send(0, Bytes::from_static(b"hello"));
        tx.send(1, Bytes::from_static(b"other group"));
        assert_eq!(rx.pending(), 1);
        let (group, data) = rx.recv().unwrap();
        assert_eq!(group, 0);
        assert_eq!(&data[..], b"hello");
        assert!(rx.recv().is_none());
    }

    #[test]
    fn leave_stops_delivery() {
        let net = SimMulticast::new(2);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.0);
        rx.join(3).unwrap();
        tx.send(3, Bytes::from_static(b"a"));
        rx.leave(3);
        tx.send(3, Bytes::from_static(b"b"));
        assert_eq!(rx.pending(), 1);
    }

    #[test]
    fn sender_joined_to_its_own_group_loops_back() {
        let net = SimMulticast::new(9);
        let mut ep = net.endpoint(0.0);
        ep.join(0).unwrap();
        ep.send(0, Bytes::from_static(b"loop"));
        assert_eq!(
            ep.recv().map(|(g, d)| (g, d.to_vec())),
            Some((0, b"loop".to_vec()))
        );
    }

    #[test]
    fn loss_rate_is_respected_statistically() {
        let net = SimMulticast::new(3);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.3);
        rx.join(0).unwrap();
        for _ in 0..10_000 {
            tx.send(0, Bytes::from_static(b"x"));
        }
        let delivered = rx.pending() as f64;
        let rate = 1.0 - delivered / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "measured loss {rate}");
        assert_eq!(net.sent(), 10_000);
    }

    #[test]
    fn independent_loss_across_receivers() {
        let net = SimMulticast::new(4);
        let mut tx = net.endpoint(0.0);
        let mut a = net.endpoint(0.0);
        let mut b = net.endpoint(0.5);
        a.join(0).unwrap();
        b.join(0).unwrap();
        for _ in 0..2_000 {
            tx.send(0, Bytes::from_static(b"y"));
        }
        assert_eq!(a.pending(), 2_000);
        assert!(b.pending() < 1_400 && b.pending() > 600);
    }
}
