//! # df-proto — the prototype bulk-data distribution protocol (Section 7)
//!
//! The paper's experimental system has a server that encodes files with
//! Tornado codes, announces the session parameters over a unicast UDP control
//! channel, and then carousels each encoding over one or more multicast
//! groups; clients fetch the control information, subscribe, collect packets
//! through whatever loss their path imposes, and run the *statistical* decode
//! strategy (gather ≈ (1+ε)k packets, try to decode, fetch more on failure).
//!
//! ## Sans-I/O design
//!
//! The protocol logic is written **sans-I/O**: [`ServerSession`],
//! [`FountainServer`] and [`ClientSession`] are pure state machines that
//! never touch a socket, a clock or a thread.
//!
//! * The server side *produces* datagrams: [`FountainServer::poll_transmit`]
//!   (or [`ServerSession::poll_transmit`] for a single session) yields
//!   `(group, datagram)` pairs, and [`FountainServer::handle_control_datagram`]
//!   maps a raw control request to a raw response.
//! * The client side *consumes* datagrams: [`ClientSession::handle_datagram`]
//!   digests one datagram and reports what it did as a [`ClientEvent`].
//!
//! The **driver loop owns the I/O**: it holds a [`Transport`] (and, for a
//! real deployment, the control socket), joins the groups a session asks for
//! ([`ClientSession::groups`]), pumps `poll_transmit` output into
//! `Transport::send`, and feeds `Transport::recv` output into
//! `handle_datagram`.  Pacing, blocking, threading and async are all driver
//! decisions — which is why the same session code runs unchanged over the
//! deterministic in-memory [`SimMulticast`] in tests and over real UDP
//! sockets ([`UdpMulticastTransport`]) in the `udp_fountain` example at the
//! workspace root and the UDP integration tests, and why a future async
//! driver needs no changes to this crate.
//!
//! The 12-byte packet header (packet index, serial number, group number) and
//! the 500-byte default payload match Section 7.3's description of the
//! prototype exactly; the control channel speaks the binary
//! [`ControlRequest`]/[`ControlResponse`] framing in [`control`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod control;
pub mod server;
pub mod transport;
pub mod udp;
pub mod wire;

pub use client::{ClientEvent, ClientSession, DownloadStats};
pub use control::{ControlInfo, ControlRequest, ControlResponse};
pub use server::{FountainServer, ServerSession, SessionConfig};
pub use transport::{SimEndpoint, SimMulticast, Transport};
pub use udp::{GroupAddressing, UdpMulticastTransport};
pub use wire::{DataPacket, PacketHeader, HEADER_LEN};
