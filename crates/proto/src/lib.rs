//! # df-proto — the prototype bulk-data distribution protocol (Section 7)
//!
//! The paper's experimental system has a server that encodes a file with
//! Tornado A, announces the session parameters over a unicast UDP control
//! channel, and then carousels the encoding over one or more multicast
//! groups; clients fetch the control information, subscribe, collect packets
//! through whatever loss their path imposes, and run the *statistical* decode
//! strategy (gather ≈ (1+ε)k packets, try to decode, fetch more on failure).
//!
//! This crate reproduces that system over a pluggable [`transport::Transport`]:
//! [`transport::SimMulticast`] is a deterministic in-memory lossy multicast
//! used by the tests, the benchmarks and the Figure 8 reproduction, and the
//! same server/client code can be pointed at real UDP sockets (see the
//! `udp_fountain` example at the workspace root).
//!
//! The 12-byte packet header (packet index, serial number, group number) and
//! the 500-byte default payload match Section 7.3's description of the
//! prototype exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{Client, DownloadStats};
pub use server::{ControlInfo, Server};
pub use transport::{SimMulticast, Transport};
pub use wire::{DataPacket, PacketHeader, HEADER_LEN};
