//! # df-proto — the prototype bulk-data distribution protocol (Section 7)
//!
//! The paper's experimental system has a server that encodes files with
//! Tornado codes, announces the session parameters over a unicast UDP control
//! channel, and then carousels each encoding over one or more multicast
//! groups; clients fetch the control information, subscribe, collect packets
//! through whatever loss their path imposes, and run the *statistical* decode
//! strategy (gather ≈ (1+ε)k packets, try to decode, fetch more on failure).
//!
//! ## Sans-I/O design
//!
//! The protocol logic is written **sans-I/O**: [`ServerSession`],
//! [`FountainServer`] and [`ClientSession`] are pure state machines that
//! never touch a socket, a clock or a thread.
//!
//! * The server side *produces* datagrams: [`FountainServer::poll_transmit`]
//!   (or [`ServerSession::poll_transmit`] for a single session) yields
//!   `(group, datagram)` pairs, and [`FountainServer::handle_control_datagram`]
//!   maps a raw control request to a raw response.
//! * The client side *consumes* datagrams: [`ClientSession::handle_datagram`]
//!   digests one datagram and reports what it did as a [`ClientEvent`].
//!
//! The **driver loop owns the I/O**: it holds a [`Transport`] (and, for a
//! real deployment, the control socket), joins the groups a session asks for
//! ([`ClientSession::subscribed_groups`]), pumps `poll_transmit` output into
//! `Transport::send`, and feeds `Transport::recv` output into
//! `handle_datagram`.  Pacing, blocking, threading and async are all driver
//! decisions — which is why the same session code runs unchanged over the
//! deterministic in-memory [`SimMulticast`] in tests and over real UDP
//! sockets ([`UdpMulticastTransport`]) in the `udp_fountain` and
//! `layered_fountain` examples at the workspace root and the UDP integration
//! tests.  The production drivers live in [`driver`]:
//! [`driver::EventLoop`] is the single-shard engine — a readiness-driven
//! loop ([`Transport::try_recv`] + [`Transport::readiness`] over an
//! `epoll(7)`/`poll(2)` wrapper) that multiplexes thousands of sessions —
//! servers, clients, or both — with token-bucket pacing, its completions
//! drained as [`LoopEvent`]s; [`driver::Driver`] shards that engine across
//! per-core worker threads behind a builder-configured facade
//! ([`DriverConfig`]), handing sessions out by [`Placement`] policy,
//! addressing them as [`SessionHandle`]s and surfacing every completion as
//! a drainable [`DriverEvent`] — all without changing a line of session
//! code.
//!
//! ## Layered congestion control
//!
//! A session configured with a nonzero [`SessionConfig::sp_interval`]
//! transmits the Section 7.1 **layered** schedule: each layer on its own
//! multicast group at geometrically increasing rates, synchronisation
//! points every `sp_interval` rounds and double-rate bursts in the
//! `burst_rounds` before each SP.  The cadence is advertised on the control
//! channel ([`ControlInfo::sp_interval`] / [`ControlInfo::burst_rounds`])
//! and the client runs the paper's receiver-driven join/leave logic: track
//! loss between SPs and during bursts, add a layer at an SP only after a
//! clean burst, shed the top layer on sustained loss.  Decisions surface as
//! [`ClientEvent::Join`] / [`ClientEvent::Leave`] *intents* — the driver
//! performs the actual [`Transport::join`] / [`Transport::leave`], so the
//! sans-I/O split holds for congestion control too.
//!
//! The 12-byte packet header (packet index, serial number, group number) and
//! the 500-byte default payload match Section 7.3's description of the
//! prototype exactly; the control channel speaks the binary
//! [`ControlRequest`]/[`ControlResponse`] framing in [`control`].
//!
//! ## Rateless mode
//!
//! A session configured with [`SessionConfig::rateless`] set to
//! [`RatelessMode::Lt`] or [`RatelessMode::Raptor`] is a *true* digital
//! fountain: instead of carouselling a fixed encoding it streams fresh LT /
//! Raptor symbols forever, the unchanged 12-byte header's
//! `packet_index:serial` words carrying each symbol's 64-bit seed.  Every
//! received symbol is new no matter when a receiver tunes in — the
//! distinctness-efficiency loss late joiners pay under the carousel
//! (→ ≈ 0.64 as duplicates accumulate) disappears entirely.  The mode is
//! announced on the control channel (`CONTROL_VERSION` 3) and the client
//! routes datagrams into a streaming decoder behind hard memory caps; see
//! DESIGN.md "Rateless mode".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod control;
pub mod driver;
mod layered;
pub mod rateless;
pub mod server;
pub(crate) mod sync;
pub mod transport;
pub mod udp;
pub mod wire;

pub use client::{ClientEvent, ClientSession, DownloadStats};
pub use control::{ControlInfo, ControlRequest, ControlResponse};
pub use driver::{
    Driver, DriverConfig, DriverEvent, DriverReport, EventLoop, EventLoopStats, LoopEvent, Pacing,
    Placement, SessionHandle, Token,
};
pub use rateless::{
    seed_from_words, seed_to_words, RatelessMode, RatelessReceiver, RatelessSender,
};
pub use server::{FountainServer, ServerSession, SessionConfig};
pub use transport::{Readiness, SimEndpoint, SimMulticast, Transport};
pub use udp::{GroupAddressing, UdpMulticastTransport};
pub use wire::{DataPacket, PacketHeader, HEADER_LEN};
