//! Rateless ("true fountain") session plumbing: the wire-level mode flag,
//! the seed ↔ header-word packing, and the sender/receiver state machines
//! the sessions delegate to.
//!
//! A carousel session retransmits a *fixed* encoding, so its 12-byte header
//! names a packet by index.  A rateless session never repeats itself: every
//! datagram is a fresh LT symbol fully described by a 64-bit seed, and the
//! header's `packet_index:serial` words carry that seed (high:low) instead.
//! Nothing about the framing changes — only the interpretation, which the
//! control channel announces up front via [`RatelessMode`]
//! (`CONTROL_VERSION` 3).
//!
//! This module is wire-facing: everything here handles attacker-controlled
//! seeds and payloads, so it must never panic and must hold bounded memory
//! no matter what arrives (see [`RatelessReceiver`]).

use df_core::{AddOutcome, LtDecoder, LtEncoder, RaptorCode, RaptorDecoder};
use df_core::{LT_DEFAULT_C, LT_DEFAULT_DELTA};

/// How a session's data datagrams are encoded, as announced on the control
/// channel.  One byte on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RatelessMode {
    /// Fixed-encoding carousel (the classic Section 7 prototype): the header
    /// carries `(packet_index, serial)` and duplicates accumulate.
    #[default]
    Off,
    /// Plain LT code over the `k` source packets: the header carries a
    /// 64-bit symbol seed and every datagram is distinct.
    Lt,
    /// Raptor code (Tornado precode + LT layer over its `n` intermediates):
    /// seed-carrying like [`RatelessMode::Lt`], with the control channel's
    /// `n` advertising the intermediate count.
    Raptor,
}

impl RatelessMode {
    /// Wire encoding of the mode byte.
    pub fn to_wire(self) -> u8 {
        match self {
            RatelessMode::Off => 0,
            RatelessMode::Lt => 1,
            RatelessMode::Raptor => 2,
        }
    }

    /// Decode the mode byte; `None` for bytes no known mode uses (the
    /// control channel is untrusted input, so unknown modes are a parse
    /// error, not a default).
    pub fn from_wire(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(RatelessMode::Off),
            1 => Some(RatelessMode::Lt),
            2 => Some(RatelessMode::Raptor),
            _ => None,
        }
    }

    /// True for the seed-carrying modes.
    pub fn is_rateless(self) -> bool {
        !matches!(self, RatelessMode::Off)
    }
}

/// Pack a rateless symbol seed into the header's `(packet_index, serial)`
/// words: the seed's high 32 bits ride in `packet_index`, the low 32 in
/// `serial`.  Serials therefore stay monotonic for a monotonic seed stream —
/// receivers can still eyeball datagram order — while the full 64-bit space
/// keeps seed reuse out of reach of any session lifetime.
pub fn seed_to_words(seed: u64) -> (u32, u32) {
    ((seed >> 32) as u32, seed as u32)
}

/// Recover a symbol seed from the header's `(packet_index, serial)` words
/// (inverse of [`seed_to_words`]).
pub fn seed_from_words(packet_index: u32, serial: u32) -> u64 {
    ((packet_index as u64) << 32) | serial as u64
}

/// The transmit side of a rateless session: an endless, never-repeating
/// stream of `(seed, payload)` symbols, metered into rounds of `k` symbols
/// so the driver's round-based pacing keeps working unchanged.
#[derive(Debug)]
pub struct RatelessSender {
    /// Seed → (degree, neighbors) derivation layer.  For plain LT this
    /// ranges over the `k` source packets; for Raptor it is the code's LT
    /// layer over the `n` precode intermediates.
    lt: LtEncoder,
    /// The symbols the LT layer XORs over (source packets or intermediates),
    /// all of one uniform length.
    symbols: Vec<Vec<u8>>,
    /// Next seed to issue; monotonic, never wraps in any feasible session.
    next_seed: u64,
    /// Symbols per round (= `k`, matching one carousel round's bandwidth).
    quota: usize,
    issued_this_round: usize,
}

impl RatelessSender {
    /// Plain-LT sender over `k` uniform source packets.
    ///
    /// # Errors
    ///
    /// Propagates [`LtEncoder::new`] parameter errors (`source` empty).
    pub fn for_lt(source: Vec<Vec<u8>>, stream_seed: u64) -> df_core::Result<Self> {
        let quota = source.len();
        let lt = LtEncoder::new(source.len(), LT_DEFAULT_C, LT_DEFAULT_DELTA, stream_seed)?;
        Ok(RatelessSender {
            lt,
            symbols: source,
            next_seed: 0,
            quota,
            issued_this_round: 0,
        })
    }

    /// Raptor sender: precodes `source` into the intermediates and streams
    /// LT symbols over them.
    ///
    /// # Errors
    ///
    /// Propagates precode encoding errors (wrong packet count / lengths).
    pub fn for_raptor(code: &RaptorCode, source: &[Vec<u8>]) -> df_core::Result<Self> {
        let symbols = code.precode_symbols(source)?;
        Ok(RatelessSender {
            lt: code.lt().clone(),
            symbols,
            next_seed: 0,
            quota: code.k(),
            issued_this_round: 0,
        })
    }

    /// Payload bytes of every emitted symbol.
    pub fn symbol_len(&self) -> usize {
        self.symbols.first().map(|s| s.len()).unwrap_or(0)
    }

    /// Seeds issued so far (= symbols ever emitted).
    pub fn seeds_issued(&self) -> u64 {
        self.next_seed
    }

    /// True once this round's quota of fresh symbols has been issued.
    pub fn round_complete(&self) -> bool {
        self.issued_this_round >= self.quota
    }

    /// Reset the round quota (the driver's `advance_round`).
    pub fn advance_round(&mut self) {
        self.issued_this_round = 0;
    }

    /// Emit the next `(seed, payload)` symbol, or `None` once the round's
    /// quota is exhausted.
    pub fn poll(&mut self) -> Option<(u64, Vec<u8>)> {
        if self.round_complete() {
            return None;
        }
        let seed = self.next_seed;
        // The encoder only errors on a symbol-count mismatch, which this
        // sender's construction rules out; treat it as quota exhaustion
        // rather than panicking in transmit-path code.
        let payload = self.lt.encode_symbol(seed, &self.symbols).ok()?;
        self.next_seed += 1;
        self.issued_this_round += 1;
        Some((seed, payload))
    }
}

/// The receive side of a rateless session: routes `(seed, payload)` symbols
/// into the LT or Raptor streaming decoder behind hard memory caps.
///
/// The decoders themselves accept unboundedly many distinct symbols — that
/// is the point of a rateless code — so *this* wrapper is where the
/// bounded-memory contract lives: once [`RatelessReceiver::at_capacity`]
/// (more buffered equations or equation edges than any honest decode needs),
/// new symbols are refused before they can grow decoder state.  A forged
/// flood can stall one session's download; it cannot balloon the process.
#[derive(Debug)]
pub struct RatelessReceiver {
    inner: Inner,
    /// Most undecoded equations the decoder may buffer.
    max_equations: usize,
    /// Most unknown-symbol references across buffered equations.
    max_edges: usize,
    /// Uniform payload length of every valid symbol.
    payload_len: usize,
    /// Payload length recovered source packets are truncated back to
    /// (Raptor intermediates carry up to two bytes of GF(2^16) padding).
    packet_size: usize,
}

#[derive(Debug)]
enum Inner {
    Lt(LtDecoder<Vec<u8>>),
    Raptor(RaptorDecoder<Vec<u8>>),
}

impl RatelessReceiver {
    /// Plain-LT receiver over `k` packets of `packet_size` bytes, matching a
    /// [`RatelessSender::for_lt`] stream seeded with `stream_seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`LtEncoder::new`] parameter errors (`k == 0`).
    pub fn for_lt(k: usize, packet_size: usize, stream_seed: u64) -> df_core::Result<Self> {
        let enc = LtEncoder::new(k, LT_DEFAULT_C, LT_DEFAULT_DELTA, stream_seed)?;
        Ok(RatelessReceiver {
            inner: Inner::Lt(LtDecoder::new(enc)),
            max_equations: Self::equation_cap(k),
            max_edges: Self::equation_cap(k) * Self::EDGES_PER_EQUATION,
            payload_len: packet_size,
            packet_size,
        })
    }

    /// Raptor receiver matching a [`RatelessSender::for_raptor`] stream.
    pub fn for_raptor(code: &RaptorCode, packet_size: usize) -> Self {
        let k = code.k();
        RatelessReceiver {
            payload_len: code.symbol_len(packet_size),
            inner: Inner::Raptor(code.decoder()),
            max_equations: Self::equation_cap(k),
            max_edges: Self::equation_cap(k) * Self::EDGES_PER_EQUATION,
            packet_size,
        }
    }

    /// Equation cap for a `k`-packet session: the same `1.5k + 64` envelope
    /// the carousel client uses as its buffer cap — comfortably above the
    /// ≈`1.11k` (LT) / ≈`1.06k` (Raptor) symbols an honest decode needs, and
    /// each pending equation is dropped as peeling consumes it, so an honest
    /// session never comes near it.
    fn equation_cap(k: usize) -> usize {
        k + k / 2 + 64
    }

    /// Edge budget per buffered equation.  The robust soliton's *average*
    /// degree is `O(ln k)`; 16 edges per equation of slack covers every
    /// feasible honest workload, while a flood of maximum-degree forged
    /// seeds hits this wall long before the equation cap.
    const EDGES_PER_EQUATION: usize = 16;

    /// Uniform payload length every valid symbol must carry (XOR demands one
    /// length; the session drops mismatches before they reach the decoder).
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Most undecoded equations this receiver will buffer.
    pub fn max_equations(&self) -> usize {
        self.max_equations
    }

    /// Most unknown-symbol references this receiver will buffer.
    pub fn max_edges(&self) -> usize {
        self.max_edges
    }

    /// Equations currently buffered (undecoded).
    pub fn pending_equations(&self) -> usize {
        match &self.inner {
            Inner::Lt(d) => d.pending_equations(),
            Inner::Raptor(d) => d.pending_equations(),
        }
    }

    /// Unknown-symbol references across buffered equations.
    pub fn pending_edges(&self) -> usize {
        match &self.inner {
            Inner::Lt(d) => d.pending_edges(),
            Inner::Raptor(d) => d.pending_edges(),
        }
    }

    /// Symbols accepted so far, duplicates included.
    pub fn received_total(&self) -> u64 {
        match &self.inner {
            Inner::Lt(d) => d.received_total(),
            Inner::Raptor(d) => d.received_total(),
        }
    }

    /// Symbols accepted so far whose seed was new.
    pub fn received_distinct(&self) -> u64 {
        match &self.inner {
            Inner::Lt(d) => d.received_distinct(),
            Inner::Raptor(d) => d.received_distinct(),
        }
    }

    /// True once either memory cap is reached: the next new symbol would be
    /// refused.  Unreachable from an honest symbol stream.
    pub fn at_capacity(&self) -> bool {
        self.pending_equations() >= self.max_equations || self.pending_edges() >= self.max_edges
    }

    /// True once every source packet is recovered.
    pub fn is_complete(&self) -> bool {
        match &self.inner {
            Inner::Lt(d) => d.is_complete(),
            Inner::Raptor(d) => d.is_complete(),
        }
    }

    /// Accept one `(seed, payload)` symbol.  The caller has already
    /// length-checked `payload` against [`RatelessReceiver::payload_len`]
    /// and checked [`RatelessReceiver::at_capacity`]; a decoder-level error
    /// (none is reachable for length-checked input) reports as `Duplicate`
    /// so hostile traffic can never panic the session.
    pub fn add(&mut self, seed: u64, payload: Vec<u8>) -> AddOutcome {
        match &mut self.inner {
            Inner::Lt(d) => d.add_symbol(seed, payload),
            Inner::Raptor(d) => d.add_symbol(seed, payload).unwrap_or(AddOutcome::Duplicate),
        }
    }

    /// The recovered source packets once complete, each truncated back to
    /// the session packet size (Raptor intermediates may carry GF(2^16)
    /// padding bytes that must not reach the reassembled file).
    pub fn source_packets(&self) -> Option<Vec<Vec<u8>>> {
        let mut packets = match &self.inner {
            Inner::Lt(d) => d.source()?,
            Inner::Raptor(d) => d.source()?,
        };
        for p in &mut packets {
            p.truncate(self.packet_size);
        }
        Some(packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_bytes_roundtrip_and_reject_unknowns() {
        for mode in [RatelessMode::Off, RatelessMode::Lt, RatelessMode::Raptor] {
            assert_eq!(RatelessMode::from_wire(mode.to_wire()), Some(mode));
        }
        for byte in 3..=u8::MAX {
            assert_eq!(RatelessMode::from_wire(byte), None);
        }
        assert!(!RatelessMode::Off.is_rateless());
        assert!(RatelessMode::Lt.is_rateless());
        assert!(RatelessMode::Raptor.is_rateless());
        assert_eq!(RatelessMode::default(), RatelessMode::Off);
    }

    #[test]
    fn seed_packing_roundtrips() {
        for seed in [
            0u64,
            1,
            u32::MAX as u64,
            1 << 32,
            u64::MAX,
            0xDEAD_BEEF_0BAD_F00D,
        ] {
            let (hi, lo) = seed_to_words(seed);
            assert_eq!(seed_from_words(hi, lo), seed);
        }
        // Monotonic seeds keep the low word (the wire serial) monotonic
        // within each 2^32 block — the property the header doc promises.
        assert_eq!(seed_to_words(7), (0, 7));
        assert_eq!(seed_to_words((1 << 32) + 7), (1, 7));
    }

    fn packets(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 251 + j * 31) % 255) as u8).collect())
            .collect()
    }

    #[test]
    fn lt_sender_stream_decodes_at_the_receiver() {
        let source = packets(60, 32);
        let mut tx = RatelessSender::for_lt(source.clone(), 0xFEED).unwrap();
        let mut rx = RatelessReceiver::for_lt(60, 32, 0xFEED).unwrap();
        assert_eq!(rx.payload_len(), 32);
        let mut rounds = 0;
        while !rx.is_complete() {
            while let Some((seed, payload)) = tx.poll() {
                assert_eq!(payload.len(), rx.payload_len());
                if rx.is_complete() {
                    break;
                }
                rx.add(seed, payload);
            }
            tx.advance_round();
            rounds += 1;
            assert!(rounds < 50, "LT stream failed to converge");
        }
        assert_eq!(rx.source_packets().unwrap(), source);
    }

    #[test]
    fn raptor_sender_stream_decodes_at_the_receiver() {
        let source = packets(80, 33);
        let code = RaptorCode::new(80, 0x5EED).unwrap();
        let mut tx = RatelessSender::for_raptor(&code, &source).unwrap();
        let mut rx = RatelessReceiver::for_raptor(&code, 33);
        assert_eq!(rx.payload_len(), code.symbol_len(33));
        assert_eq!(tx.symbol_len(), rx.payload_len());
        let mut rounds = 0;
        while !rx.is_complete() {
            while let Some((seed, payload)) = tx.poll() {
                if rx.is_complete() {
                    break;
                }
                rx.add(seed, payload);
            }
            tx.advance_round();
            rounds += 1;
            assert!(rounds < 50, "Raptor stream failed to converge");
        }
        // Intermediates carry padding at odd sizes; the receiver must hand
        // back exactly the original source packets regardless.
        assert_eq!(rx.source_packets().unwrap(), source);
    }

    #[test]
    fn sender_rounds_meter_exactly_k_fresh_symbols() {
        let mut tx = RatelessSender::for_lt(packets(25, 8), 1).unwrap();
        for round in 0..3u64 {
            let mut seeds = Vec::new();
            while let Some((seed, _)) = tx.poll() {
                seeds.push(seed);
            }
            assert_eq!(seeds.len(), 25, "round quota is k");
            assert_eq!(seeds.first().copied(), Some(round * 25));
            assert!(tx.round_complete());
            assert!(tx.poll().is_none(), "quota is enforced");
            tx.advance_round();
        }
        assert_eq!(tx.seeds_issued(), 75);
    }

    #[test]
    fn caps_scale_with_k_and_start_unsaturated() {
        let rx = RatelessReceiver::for_lt(1000, 16, 9).unwrap();
        assert_eq!(rx.max_equations(), 1564);
        assert_eq!(rx.max_edges(), 1564 * 16);
        assert!(!rx.at_capacity());
        assert_eq!((rx.pending_equations(), rx.pending_edges()), (0, 0));
    }
}
