//! The prototype client: rebuild the code from the control information,
//! collect data packets from however many layers the receiver is subscribed
//! to, and reconstruct the file with the *statistical* decode strategy chosen
//! in Section 7.2 — wait until roughly `(1 + ε)k` packets have arrived, try to
//! decode, and go back to collecting if that was not yet enough.

use crate::server::ControlInfo;
use crate::wire::DataPacket;
use bytes::Bytes;
use df_core::{
    reassemble_file, AddOutcome, FinalCode, PayloadDecoder, TornadoCode, TORNADO_A, TORNADO_B,
};
use serde::Serialize;

/// Reception statistics for one download, mirroring Section 7.3's efficiency
/// definitions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct DownloadStats {
    /// Packets received (after network loss), including duplicates.
    pub received: usize,
    /// Distinct encoding packets received.
    pub distinct: usize,
    /// Number of source packets in the file.
    pub k: usize,
    /// Number of decode attempts the statistical strategy made.
    pub decode_attempts: usize,
}

impl DownloadStats {
    /// Reception efficiency `η = k / received`.
    pub fn reception_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.k as f64 / self.received as f64
        }
    }

    /// Coding efficiency `η_c = k / distinct`.
    pub fn coding_efficiency(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.k as f64 / self.distinct as f64
        }
    }

    /// Distinctness efficiency `η_d = distinct / received`.
    pub fn distinctness_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.distinct as f64 / self.received as f64
        }
    }
}

/// A downloading client for one session.
#[derive(Debug)]
pub struct Client {
    control: ControlInfo,
    code: TornadoCode,
    buffered: Vec<(usize, Vec<u8>)>,
    seen: Vec<bool>,
    stats: DownloadStats,
    /// Overhead margin the statistical strategy waits for before its first
    /// decode attempt.
    attempt_margin: f64,
    file: Option<Vec<u8>>,
}

impl Client {
    /// Join a session described by `control` (obtained from the server's
    /// control channel).
    ///
    /// # Errors
    ///
    /// Propagates code-construction errors (e.g. nonsensical control data).
    pub fn new(control: ControlInfo) -> df_core::Result<Self> {
        let profile = if control.profile == "tornado-b" {
            TORNADO_B
        } else {
            TORNADO_A
        };
        let code = TornadoCode::with_profile(control.k, profile, control.code_seed)?;
        let seen = vec![false; code.n()];
        Ok(Client {
            stats: DownloadStats {
                k: control.k,
                ..DownloadStats::default()
            },
            control,
            code,
            buffered: Vec::new(),
            seen,
            attempt_margin: 0.06,
            file: None,
        })
    }

    /// The session parameters this client joined with.
    pub fn control_info(&self) -> &ControlInfo {
        &self.control
    }

    /// Reception statistics so far.
    pub fn stats(&self) -> &DownloadStats {
        &self.stats
    }

    /// The reconstructed file, once the download has completed.
    pub fn file(&self) -> Option<&[u8]> {
        self.file.as_deref()
    }

    /// True once the file has been reconstructed.
    pub fn is_complete(&self) -> bool {
        self.file.is_some()
    }

    /// Feed one received datagram to the client.  Returns `true` once the
    /// file has been fully reconstructed.
    pub fn handle_datagram(&mut self, datagram: Bytes) -> bool {
        if self.file.is_some() {
            return true;
        }
        let Some(pkt) = DataPacket::from_bytes(datagram) else {
            return false;
        };
        let idx = pkt.header.packet_index as usize;
        if idx >= self.code.n() {
            // Corrupted or foreign packet; the channel is best-effort, drop it.
            return false;
        }
        // For odd packet sizes a GF(2^16) final code pads its check packets by
        // two bytes (see `df_core::FinalCode`); every other packet carries
        // exactly `packet_size` bytes.
        let expected = if self.control.packet_size % 2 == 1
            && idx >= self.code.cascade().rs_offset()
            && matches!(self.code.cascade().final_code(), FinalCode::Large(_))
        {
            self.control.packet_size + 2
        } else {
            self.control.packet_size
        };
        if pkt.payload.len() != expected {
            return false;
        }
        self.stats.received += 1;
        if !self.seen[idx] {
            self.seen[idx] = true;
            self.stats.distinct += 1;
            self.buffered.push((idx, pkt.payload.to_vec()));
        }
        // Statistical strategy: only attempt a decode once enough distinct
        // packets have accumulated; after a failed attempt, wait for another
        // 2 % of k before trying again.
        let threshold = (self.control.k as f64 * (1.0 + self.attempt_margin)).ceil() as usize;
        if self.stats.distinct >= threshold {
            self.stats.decode_attempts += 1;
            let mut decoder: PayloadDecoder<'_> = self.code.decoder();
            let mut complete = false;
            for (i, payload) in &self.buffered {
                // By reference: the buffer keeps ownership, so a failed
                // statistical attempt only clones the packets that advanced
                // the peeling, not the whole buffer.
                match decoder.add_packet_ref(*i, payload) {
                    Ok(AddOutcome::Complete) => {
                        complete = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(_) => return false,
                }
            }
            if complete {
                let source = decoder.source().expect("decoder reported completion");
                self.file = Some(reassemble_file(&source, self.control.file_len));
                return true;
            }
            self.attempt_margin += 0.02;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::transport::SimMulticast;

    fn run_download(loss: f64, layers: usize, data_len: usize) -> (Client, Vec<u8>) {
        let data: Vec<u8> = (0..data_len).map(|i| (i * 131 % 251) as u8).collect();
        let mut server = Server::with_defaults(&data, layers, 7).unwrap();
        let mut net = SimMulticast::new(11);
        let rx = net.add_receiver(loss);
        for layer in 0..layers as u32 {
            rx.subscribe(layer);
        }
        let mut client = Client::new(server.control_info().clone()).unwrap();
        'outer: for _ in 0..10_000 {
            server.send_round(&mut net);
            while let Some((_group, datagram)) = rx.recv() {
                if client.handle_datagram(datagram) {
                    break 'outer;
                }
            }
        }
        (client, data)
    }

    #[test]
    fn lossless_download_reconstructs_the_file() {
        let (client, data) = run_download(0.0, 4, 60_000);
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
        let stats = client.stats();
        assert!(stats.distinctness_efficiency() > 0.99);
        assert!(stats.decode_attempts >= 1);
    }

    #[test]
    fn lossy_download_still_reconstructs() {
        let (client, data) = run_download(0.3, 4, 40_000);
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
        assert!(client.stats().reception_efficiency() > 0.4);
    }

    #[test]
    fn corrupted_and_foreign_datagrams_are_ignored() {
        let data = vec![9u8; 20_000];
        let server = Server::with_defaults(&data, 1, 3).unwrap();
        let mut client = Client::new(server.control_info().clone()).unwrap();
        assert!(!client.handle_datagram(Bytes::from_static(b"short")));
        // Well-formed header but index out of range.
        let bogus = DataPacket::new(
            crate::wire::PacketHeader {
                packet_index: 1_000_000,
                serial: 0,
                group: 0,
            },
            Bytes::from(vec![0u8; 500]),
        );
        assert!(!client.handle_datagram(bogus.to_bytes()));
        assert_eq!(client.stats().received, 0);
    }

    #[test]
    fn odd_packet_size_with_gf16_final_block_downloads() {
        // An odd packet size with Tornado B yields a pure GF(2^16) MDS block
        // whose check packets carry two padding bytes (501 bytes here); the
        // client must accept them and still reconstruct the file exactly.
        let data: Vec<u8> = (0..99_800).map(|i| (i * 37 % 251) as u8).collect();
        let mut server = Server::new(&data, 499, 1, df_core::TORNADO_B, 9).unwrap();
        assert!(matches!(
            server.code().cascade().final_code(),
            FinalCode::Large(_)
        ));
        let mut net = SimMulticast::new(21);
        let rx = net.add_receiver(0.1);
        rx.subscribe(0);
        let mut client = Client::new(server.control_info().clone()).unwrap();
        'outer: for _ in 0..10_000 {
            server.send_round(&mut net);
            while let Some((_group, datagram)) = rx.recv() {
                if client.handle_datagram(datagram) {
                    break 'outer;
                }
            }
        }
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
    }

    #[test]
    fn download_stats_relation_holds() {
        let (client, _) = run_download(0.1, 1, 30_000);
        let s = client.stats();
        let eta = s.reception_efficiency();
        assert!((eta - s.coding_efficiency() * s.distinctness_efficiency()).abs() < 1e-12);
    }
}
