//! The client side of the prototype: a pure (sans-I/O) download state
//! machine.
//!
//! [`ClientSession`] rebuilds the code from the [`ControlInfo`] fetched over
//! the control channel and consumes datagrams one at a time through
//! [`ClientSession::handle_datagram`], which reports what each datagram did
//! as a [`ClientEvent`].  The session never touches a socket: a driver loop
//! joins the groups in [`ClientSession::groups`] on its transport, pulls
//! datagrams, and feeds them in.
//!
//! Decoding uses the *statistical* strategy chosen in Section 7.2 — wait
//! until roughly `(1 + ε)k` distinct packets have arrived, try to decode, and
//! go back to collecting if that was not yet enough.  The decoder is a
//! persistent [`df_core::OwnedPayloadDecoder`]: every distinct packet is fed
//! to it exactly once, and a failed attempt simply leaves the peeling state
//! in place for the next batch, instead of re-feeding the whole buffer into
//! a fresh decoder per attempt (which made the old API O(attempts · n)).

use crate::control::ControlInfo;
use crate::layered::LayerController;
use crate::rateless::{seed_from_words, RatelessMode, RatelessReceiver};
use crate::wire::DataPacket;
use bytes::Bytes;
use df_core::{
    reassemble_file, OwnedPayloadDecoder, RaptorCode, ReceptionCounter, TornadoCode, TornadoError,
    TornadoProfile,
};
use df_mcast::LayeredSession;

/// How a download's receptions are tallied.  A carousel session counts
/// distinct *encoding indices* out of a known universe of `n`
/// ([`df_core::ReceptionCounter`], exactly the accounting the reception
/// simulations use); a rateless session receives an unbounded stream of
/// 64-bit seeds with no index universe to bound a bitmap by, so it keeps
/// plain totals — the decoder itself is the authority on seed novelty.
#[derive(Debug, Clone, PartialEq)]
enum Tally {
    Indexed(ReceptionCounter),
    Streaming { total: u64, distinct: u64 },
}

impl Default for Tally {
    fn default() -> Self {
        Tally::Streaming {
            total: 0,
            distinct: 0,
        }
    }
}

/// Reception statistics for one download.  The three Section 7.3 efficiency
/// definitions are computed in exactly one place for both session kinds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DownloadStats {
    tally: Tally,
    k: usize,
    decode_attempts: usize,
    rejected: u64,
}

impl DownloadStats {
    fn new(n: usize, k: usize) -> Self {
        DownloadStats {
            tally: Tally::Indexed(ReceptionCounter::new(n)),
            k,
            decode_attempts: 0,
            rejected: 0,
        }
    }

    fn new_streaming(k: usize) -> Self {
        DownloadStats {
            tally: Tally::default(),
            k,
            decode_attempts: 0,
            rejected: 0,
        }
    }

    /// Record the reception of encoding packet `index`; true if it was new.
    /// Carousel sessions only (the rateless path has no index).
    fn record(&mut self, index: usize) -> bool {
        match &mut self.tally {
            Tally::Indexed(counter) => counter.record(index),
            Tally::Streaming { .. } => false,
        }
    }

    /// Record one rateless symbol reception, `new` per the decoder's seed
    /// bookkeeping.
    fn record_streaming(&mut self, new: bool) {
        if let Tally::Streaming { total, distinct } = &mut self.tally {
            *total += 1;
            if new {
                *distinct += 1;
            }
        }
    }

    fn note_attempt(&mut self) {
        self.decode_attempts += 1;
    }

    fn note_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Packets received (after network loss), including duplicates.
    pub fn received(&self) -> usize {
        match &self.tally {
            Tally::Indexed(counter) => counter.total(),
            Tally::Streaming { total, .. } => *total as usize,
        }
    }

    /// Distinct packets received: distinct encoding indices for a carousel,
    /// distinct symbol seeds for a rateless session.
    pub fn distinct(&self) -> usize {
        match &self.tally {
            Tally::Indexed(counter) => counter.distinct(),
            Tally::Streaming { distinct, .. } => *distinct as usize,
        }
    }

    /// Number of source packets in the file.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of decode attempts the statistical strategy made.
    pub fn decode_attempts(&self) -> usize {
        self.decode_attempts
    }

    /// Valid-looking packets refused because the session's buffer cap
    /// ([`ClientSession::buffer_cap`]) was already reached — the
    /// bounded-memory contract's visible counter.  Always `0` for an honest
    /// carousel: the cap sits well above the worst-case decode threshold.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Reception efficiency `η = k / received`.
    pub fn reception_efficiency(&self) -> f64 {
        match &self.tally {
            Tally::Indexed(counter) => counter.reception_efficiency(self.k),
            Tally::Streaming { total, .. } if *total > 0 => self.k as f64 / *total as f64,
            Tally::Streaming { .. } => 0.0,
        }
    }

    /// Coding efficiency `η_c = k / distinct`.
    pub fn coding_efficiency(&self) -> f64 {
        match &self.tally {
            Tally::Indexed(counter) => counter.coding_efficiency(self.k),
            Tally::Streaming { distinct, .. } if *distinct > 0 => self.k as f64 / *distinct as f64,
            Tally::Streaming { .. } => 0.0,
        }
    }

    /// Distinctness efficiency `η_d = distinct / received`.  For an honest
    /// rateless stream this is exactly `1.0` — every seed is fresh — which
    /// is the whole point of the mode; a carousel's late joiners decay
    /// toward the ≈ 0.64 distinctness of uniform sampling with replacement.
    pub fn distinctness_efficiency(&self) -> f64 {
        match &self.tally {
            Tally::Indexed(counter) => counter.distinctness_efficiency(),
            Tally::Streaming { total, distinct } if *total > 0 => *distinct as f64 / *total as f64,
            Tally::Streaming { .. } => 0.0,
        }
    }
}

/// What one datagram did to the session state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEvent {
    /// The datagram was malformed, foreign, or carried an unexpected payload
    /// length; the best-effort channel delivered noise and it was dropped.
    Ignored,
    /// A duplicate of an already-received packet (counted, not buffered).
    Duplicate,
    /// A new, well-formed packet was refused because the session already
    /// buffers [`ClientSession::buffer_cap`] undecoded packets — the
    /// bounded-memory backstop against a flood of forged-but-valid-looking
    /// datagrams.  Counted in [`DownloadStats::rejected`]; an honest
    /// carousel never triggers it (the cap exceeds every reachable decode
    /// threshold).
    Rejected,
    /// A new packet was buffered; not enough have accumulated yet for the
    /// statistical strategy to attempt a decode.
    Buffered,
    /// A new packet triggered a decode attempt that did not yet complete;
    /// the strategy will wait for ~2 % of `k` more packets before retrying.
    AttemptFailed,
    /// The layered congestion-control logic decided to add the next layer
    /// at a synchronisation point: the I/O driver should now call
    /// [`crate::Transport::join`] for `group`.  The session has already
    /// updated its subscription state — the event is the driver's cue, not
    /// a request for permission (sans-I/O: the session decides, the driver
    /// owns the socket).
    Join {
        /// Multicast group of the newly subscribed layer.
        group: u32,
    },
    /// The layered congestion-control logic shed the top layer after
    /// sustained loss: the I/O driver should now call
    /// [`crate::Transport::leave`] for `group`.
    Leave {
        /// Multicast group of the dropped layer.
        group: u32,
    },
    /// The file is fully reconstructed (also returned for every datagram fed
    /// after completion).
    Complete,
}

/// Most layers any announced session may use.  The reverse-binary schedule's
/// block size is `2^(layers−1)`, so real deployments use a handful; the cap
/// exists to bound what a malicious control channel can make a driver do
/// (each advertised group costs the driver a `join`, i.e. a socket).
pub const MAX_LAYERS: usize = 32;

/// Most source packets any announced session may claim.  2²⁴ packets is an
/// ~8 GB file at the paper's 500-byte payloads — far beyond the benchmarks —
/// while keeping the cost of rebuilding a hostile session's cascade bounded
/// (code construction is `O(k)` memory and must not run on unvalidated
/// wire-sourced sizes).
pub const MAX_K: usize = 1 << 24;

/// Most layers a *layered* (adaptive congestion-control) session may use —
/// [`df_mcast::LayeredSession::new`] enforces it for servers and clients
/// alike.  Flat sessions may go up to [`MAX_LAYERS`].
pub const MAX_SCHEDULED_LAYERS: usize = df_mcast::MAX_LAYERS;

/// Longest SP interval a layered session may announce, also enforced by
/// [`df_mcast::LayeredSession::new`] on both sides.  Bounds the per-round
/// accounting a hostile control channel can make a client keep (the loss
/// tracker holds O(`sp_interval`) round counters).
pub const MAX_SP_INTERVAL: usize = df_mcast::MAX_SP_INTERVAL;

/// Largest payload a data packet can carry over UDP: the 65 507-byte UDP
/// maximum minus the 12-byte header, minus the 2-byte pad a GF(2^16) final
/// code adds to check packets (and rateless Raptor symbols) at odd sizes.
const MAX_PACKET_SIZE: usize = 65_507 - crate::wire::HEADER_LEN - 2;

/// The decode machinery behind one [`ClientSession`]: the index-addressed
/// carousel pipeline (staged batch → persistent Tornado peeling decoder) or
/// the seed-addressed streaming [`RatelessReceiver`].
#[derive(Debug)]
enum Backend {
    Carousel {
        code: TornadoCode,
        decoder: OwnedPayloadDecoder,
        /// Distinct packets received but not yet fed to the decoder (the
        /// statistical strategy feeds them in batches).
        staged: Vec<(usize, Vec<u8>)>,
    },
    Rateless(RatelessReceiver),
}

/// A downloading client session for one announced session.
#[derive(Debug)]
pub struct ClientSession {
    control: ControlInfo,
    backend: Backend,
    stats: DownloadStats,
    /// Overhead margin the statistical strategy waits for before its next
    /// decode attempt.  Grows by 2 % of `k` per failed attempt, capped at
    /// [`Self::MAX_ATTEMPT_MARGIN`] so the decode threshold always stays
    /// below the buffer cap (otherwise a pathological run could starve the
    /// decoder behind its own memory bound).  Unused by rateless sessions,
    /// whose decoder is incremental rather than batch-attempted.
    attempt_margin: f64,
    /// Most undecoded packets (staged plus inside the decoder) a carousel
    /// session will hold; see [`Self::buffer_cap`].  Rateless sessions
    /// enforce the equivalent bound inside [`RatelessReceiver`] instead.
    buffer_cap: usize,
    /// The receiver-driven join/leave state machine of the layered
    /// congestion-control mode; `None` for flat sessions.
    controller: Option<LayerController>,
    file: Option<Vec<u8>>,
}

impl ClientSession {
    /// Join a session described by `control` (obtained from the server's
    /// control channel).
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::MalformedInput`] for an unknown profile name
    /// or control parameters inconsistent with the rebuilt code, and
    /// propagates code-construction errors.  The control channel is
    /// untrusted input, so every cheap structural check — profile name,
    /// layer count, group-range overflow, packet size, and a bound on `k` —
    /// runs *before* the `O(k)` code construction; a hostile announcement
    /// cannot make a client allocate an unbounded cascade.
    pub fn new(control: ControlInfo) -> df_core::Result<Self> {
        let malformed = |reason: String| TornadoError::MalformedInput { reason };
        if control.rateless.is_rateless() {
            // The profile name is not consulted in rateless mode (there is
            // no negotiated Tornado code to rebuild), so it is deliberately
            // not validated either.
            return Self::new_rateless(control);
        }
        let profile = TornadoProfile::by_name(&control.profile)
            .ok_or_else(|| malformed(format!("unknown Tornado profile {:?}", control.profile)))?;
        if control.layers == 0 || control.layers > MAX_LAYERS {
            return Err(malformed(format!(
                "control info advertises {} layers (expected 1..={MAX_LAYERS})",
                control.layers
            )));
        }
        if control
            .base_group
            .checked_add(control.layers as u32 - 1)
            .is_none()
        {
            return Err(malformed(format!(
                "group range {} + {} layers overflows the group space",
                control.base_group, control.layers
            )));
        }
        if control.packet_size == 0 || control.packet_size > MAX_PACKET_SIZE {
            return Err(malformed(format!(
                "packet size {} cannot be framed into a UDP datagram \
                 (expected 1..={MAX_PACKET_SIZE})",
                control.packet_size
            )));
        }
        if control.k == 0 || control.k > MAX_K {
            return Err(malformed(format!(
                "control info advertises k = {} (expected 1..={MAX_K})",
                control.k
            )));
        }
        // Layered congestion-control mode: the announced cadence must pass
        // the *same* validating constructor the server transmits from, so a
        // well-formed server can never announce a session its own clients
        // reject.  This is cheap and runs before the O(k) code build.
        let layered = if control.sp_interval > 0 {
            Some(
                LayeredSession::new(
                    control.layers,
                    control.n,
                    control.sp_interval,
                    control.burst_rounds,
                )
                .map_err(|e| malformed(format!("layered cadence rejected: {e}")))?,
            )
        } else {
            None
        };
        if control.file_len.div_ceil(control.packet_size) != control.k {
            return Err(malformed(format!(
                "file length {} at packet size {} yields {} packets, not k = {}",
                control.file_len,
                control.packet_size,
                control.file_len.div_ceil(control.packet_size),
                control.k
            )));
        }
        let code = TornadoCode::with_profile(control.k, profile, control.code_seed)?;
        if code.n() != control.n {
            return Err(malformed(format!(
                "control info advertises n = {} but profile {:?} at k = {} yields n = {}",
                control.n,
                control.profile,
                control.k,
                code.n()
            )));
        }
        let decoder = code.owned_decoder();
        let controller = layered.map(|session| LayerController::new(session, control.base_group));
        Ok(ClientSession {
            stats: DownloadStats::new(code.n(), code.k()),
            // 1.5k + 64 packets: comfortably above the highest reachable
            // decode threshold ((1 + MAX_ATTEMPT_MARGIN)·k) and the ~1.06k
            // a Tornado decode actually needs, yet far below the `n` a
            // hostile flood of distinct valid-looking indices could
            // otherwise force the session to hold.
            buffer_cap: code.k() + code.k() / 2 + 64,
            control,
            backend: Backend::Carousel {
                code,
                decoder,
                staged: Vec::new(),
            },
            attempt_margin: 0.06,
            controller,
            file: None,
        })
    }

    /// Join a seed-carrying rateless session.  Same untrusted-input posture
    /// as the carousel path: every cheap structural check runs before the
    /// `O(k)` decoder construction.
    fn new_rateless(control: ControlInfo) -> df_core::Result<Self> {
        let malformed = |reason: String| TornadoError::MalformedInput { reason };
        // Rateless sessions are single-layer and flat by protocol (the
        // server enforces the same); a hostile announcement mixing the modes
        // is rejected rather than guessed about.
        if control.layers != 1 || control.sp_interval != 0 || control.burst_rounds != 0 {
            return Err(malformed(format!(
                "rateless sessions are single-layer and flat; control claims layers = {}, \
                 sp_interval = {}, burst_rounds = {}",
                control.layers, control.sp_interval, control.burst_rounds
            )));
        }
        if control.packet_size == 0 || control.packet_size > MAX_PACKET_SIZE {
            return Err(malformed(format!(
                "packet size {} cannot be framed into a UDP datagram \
                 (expected 1..={MAX_PACKET_SIZE})",
                control.packet_size
            )));
        }
        if control.k == 0 || control.k > MAX_K {
            return Err(malformed(format!(
                "control info advertises k = {} (expected 1..={MAX_K})",
                control.k
            )));
        }
        if control.file_len.div_ceil(control.packet_size) != control.k {
            return Err(malformed(format!(
                "file length {} at packet size {} yields {} packets, not k = {}",
                control.file_len,
                control.packet_size,
                control.file_len.div_ceil(control.packet_size),
                control.k
            )));
        }
        let receiver = match control.rateless {
            RatelessMode::Lt => {
                // The LT symbol range is the k source packets themselves.
                if control.n != control.k {
                    return Err(malformed(format!(
                        "LT rateless control must advertise n = k, got n = {} for k = {}",
                        control.n, control.k
                    )));
                }
                RatelessReceiver::for_lt(control.k, control.packet_size, control.code_seed)?
            }
            RatelessMode::Raptor => {
                let code = RaptorCode::new(control.k, control.code_seed)?;
                if code.intermediate_count() != control.n {
                    return Err(malformed(format!(
                        "control info advertises n = {} but the Raptor precode at k = {} \
                         yields {} intermediates",
                        control.n,
                        control.k,
                        code.intermediate_count()
                    )));
                }
                RatelessReceiver::for_raptor(&code, control.packet_size)
            }
            RatelessMode::Off => {
                return Err(malformed(
                    "rateless constructor called with mode Off".to_string(),
                ))
            }
        };
        Ok(ClientSession {
            stats: DownloadStats::new_streaming(control.k),
            buffer_cap: receiver.max_equations(),
            control,
            backend: Backend::Rateless(receiver),
            attempt_margin: 0.06,
            controller: None,
            file: None,
        })
    }

    /// Cap on the statistical strategy's failure-driven overhead margin;
    /// `(1 + this)·k` stays strictly below [`Self::buffer_cap`].
    const MAX_ATTEMPT_MARGIN: f64 = 0.40;

    /// The session parameters this client joined with.
    pub fn control_info(&self) -> &ControlInfo {
        &self.control
    }

    /// The multicast groups the session transmits on (all of them,
    /// regardless of subscription); see [`ClientSession::subscribed_groups`]
    /// for what the driver should actually join.
    pub fn groups(&self) -> impl Iterator<Item = u32> + '_ {
        self.control.groups()
    }

    /// The groups the I/O driver should currently be joined to.  For a flat
    /// session this is every session group; for a layered session it is the
    /// cumulative prefix up to the current subscription level — the driver
    /// joins these at start-up and afterwards tracks the
    /// [`ClientEvent::Join`] / [`ClientEvent::Leave`] events.
    pub fn subscribed_groups(&self) -> Vec<u32> {
        match &self.controller {
            Some(c) => c.subscribed_groups().collect(),
            None => self.control.groups().collect(),
        }
    }

    /// True when the session runs the receiver-driven layered
    /// congestion-control protocol (the server announced an SP cadence).
    pub fn is_layered(&self) -> bool {
        self.controller.is_some()
    }

    /// Data-path encoding of this session.
    pub fn rateless_mode(&self) -> RatelessMode {
        self.control.rateless
    }

    /// Current cumulative subscription level of a layered session (`0` =
    /// base layer only); `None` for flat sessions.
    pub fn subscription_level(&self) -> Option<usize> {
        self.controller.as_ref().map(|c| c.level())
    }

    /// Reception statistics so far.
    pub fn stats(&self) -> &DownloadStats {
        &self.stats
    }

    /// The reconstructed file, once the download has completed.
    pub fn file(&self) -> Option<&[u8]> {
        self.file.as_deref()
    }

    /// True once the file has been reconstructed.
    pub fn is_complete(&self) -> bool {
        self.file.is_some()
    }

    /// Total packets fed to the decode machinery so far: for a carousel, at
    /// most one per distinct received packet however many decode attempts
    /// were needed (the invariant the owned-decoder redesign exists for);
    /// for a rateless session, the distinct symbols accepted.
    pub fn decoder_packets_fed(&self) -> usize {
        match &self.backend {
            Backend::Carousel { decoder, .. } => decoder.received_total(),
            Backend::Rateless(receiver) => receiver.received_distinct() as usize,
        }
    }

    /// Distinct packets held but not yet decoded: staged for the next batch
    /// attempt (carousel) or buffered as undecoded equations (rateless).
    pub fn buffered_packets(&self) -> usize {
        match &self.backend {
            Backend::Carousel { staged, .. } => staged.len(),
            Backend::Rateless(receiver) => receiver.pending_equations(),
        }
    }

    /// Most undecoded packets this session will ever hold (staged plus fed
    /// to the decoder).  A new packet arriving past the cap is refused with
    /// [`ClientEvent::Rejected`] and counted in [`DownloadStats::rejected`],
    /// bounding client memory under a forged-datagram flood.  A rateless
    /// session bounds *equations* by this number (plus an edge budget, see
    /// [`RatelessReceiver::max_edges`]) inside its receiver.
    pub fn buffer_cap(&self) -> usize {
        self.buffer_cap
    }

    /// Feed one received datagram to the session.
    ///
    /// Besides the decode-progress events, a layered session may answer with
    /// [`ClientEvent::Join`] or [`ClientEvent::Leave`] when the datagram's
    /// header pushed the congestion-control logic across a synchronisation
    /// point; the driver applies the change on its transport.  A
    /// subscription event takes priority over `Buffered`/`Duplicate`/
    /// `AttemptFailed` for the same datagram (the decode bookkeeping still
    /// happens; only the report favours the actionable event), while
    /// `Complete` always wins — a finished download needs no subscription.
    pub fn handle_datagram(&mut self, datagram: Bytes) -> ClientEvent {
        let event = self.digest_datagram(datagram);
        if event == ClientEvent::Complete {
            // A datagram can cross an SP *and* finish the decode; the driver
            // will only ever see `Complete`, so any subscription change it
            // was never told about must be unwound or `subscribed_groups`
            // would disagree with the transport's actual memberships.
            if let Some(controller) = &mut self.controller {
                controller.rollback_undelivered();
            }
            return event;
        }
        if event == ClientEvent::Ignored {
            return event;
        }
        match self.controller.as_mut().and_then(|c| c.pop_decision()) {
            Some(decision) => decision,
            None => event,
        }
    }

    fn digest_datagram(&mut self, datagram: Bytes) -> ClientEvent {
        if self.file.is_some() {
            return ClientEvent::Complete;
        }
        let Some(pkt) = DataPacket::from_bytes(datagram) else {
            return ClientEvent::Ignored;
        };
        let group = pkt.header.group as u64;
        let base = self.control.base_group as u64;
        if group < base || group >= base + self.control.layers as u64 {
            // A cross-session spoof or forged group tag: not this session's
            // traffic, so neither the decoder nor the congestion accounting
            // may see it.  (Stragglers from a just-left layer still pass —
            // the range covers every layer, not just the subscribed ones.)
            return ClientEvent::Ignored;
        }
        match &mut self.backend {
            Backend::Carousel {
                code,
                decoder,
                staged,
            } => {
                let idx = pkt.header.packet_index as usize;
                if idx >= code.n() {
                    // Corrupted or foreign packet; the channel is
                    // best-effort, drop it.
                    return ClientEvent::Ignored;
                }
                if pkt.payload.len() != code.expected_payload_len(idx, self.control.packet_size) {
                    return ClientEvent::Ignored;
                }
                if let Some(controller) = &mut self.controller {
                    // Every valid reception feeds the loss tracker —
                    // duplicates included, since the congestion signal is
                    // about datagrams arriving, not about their novelty.
                    controller.observe(pkt.header.serial, pkt.header.group);
                }
                if !self.stats.record(idx) {
                    return ClientEvent::Duplicate;
                }
                if staged.len() + decoder.received_total() >= self.buffer_cap {
                    // Bounded memory: past the cap a new packet is refused
                    // rather than buffered.  Unreachable from an honest
                    // carousel — the decode threshold that drains `staged`
                    // sits below the cap.
                    self.stats.note_rejected();
                    return ClientEvent::Rejected;
                }
                staged.push((idx, pkt.payload.to_vec()));
                // Statistical strategy: only attempt a decode once enough
                // distinct packets have accumulated; after a failed attempt,
                // wait for another 2 % of k before trying again.
                let threshold =
                    (self.control.k as f64 * (1.0 + self.attempt_margin)).ceil() as usize;
                if self.stats.distinct() < threshold {
                    return ClientEvent::Buffered;
                }
                self.stats.note_attempt();
                for (i, payload) in staged.drain(..) {
                    // The staged packets are deduplicated and validated, so
                    // the decoder can take ownership outright; an error here
                    // would mean the validation above let something
                    // malformed through, so drop the packet like any other
                    // channel noise.
                    match decoder.add_packet(i, payload) {
                        Ok(df_core::AddOutcome::Complete) => break,
                        Ok(_) => {}
                        Err(_) => continue,
                    }
                }
                if decoder.is_complete() {
                    // `source()` is Some whenever the decoder reports
                    // completion; if that invariant ever broke, degrade to a
                    // failed attempt rather than panicking while processing
                    // untrusted traffic.
                    if let Some(source) = decoder.source() {
                        self.file = Some(reassemble_file(&source, self.control.file_len));
                        return ClientEvent::Complete;
                    }
                }
                self.attempt_margin = (self.attempt_margin + 0.02).min(Self::MAX_ATTEMPT_MARGIN);
                ClientEvent::AttemptFailed
            }
            Backend::Rateless(receiver) => {
                // Rateless symbols share one uniform length; anything else
                // is noise (and would poison the XOR reduction if let in).
                if pkt.payload.len() != receiver.payload_len() {
                    return ClientEvent::Ignored;
                }
                let seed = seed_from_words(pkt.header.packet_index, pkt.header.serial);
                if receiver.at_capacity() {
                    // The bounded-memory backstop: a flood of forged seeds
                    // (absurd degrees, colliding neighbor sets) can fill the
                    // equation buffer, but it cannot grow it past the caps —
                    // new symbols are refused before the decoder sees them.
                    self.stats.record_streaming(false);
                    self.stats.note_rejected();
                    return ClientEvent::Rejected;
                }
                match receiver.add(seed, pkt.payload.to_vec()) {
                    df_core::AddOutcome::Duplicate => {
                        self.stats.record_streaming(false);
                        ClientEvent::Duplicate
                    }
                    df_core::AddOutcome::Accepted => {
                        self.stats.record_streaming(true);
                        ClientEvent::Buffered
                    }
                    df_core::AddOutcome::Complete => {
                        self.stats.record_streaming(true);
                        match receiver.source_packets() {
                            Some(source) => {
                                self.file = Some(reassemble_file(&source, self.control.file_len));
                                ClientEvent::Complete
                            }
                            // Completion without source() would be a decoder
                            // invariant break; degrade instead of panicking
                            // on untrusted traffic.
                            None => ClientEvent::Buffered,
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerSession, SessionConfig};
    use crate::transport::{SimMulticast, Transport};
    use df_core::{FinalCode, TORNADO_B};

    fn run_download(loss: f64, layers: usize, data_len: usize) -> (ClientSession, Vec<u8>) {
        let data: Vec<u8> = (0..data_len).map(|i| (i * 131 % 251) as u8).collect();
        let mut server = ServerSession::with_defaults(&data, layers, 7).unwrap();
        let net = SimMulticast::new(11);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(loss);
        let mut client = ClientSession::new(server.control_info().clone()).unwrap();
        for group in client.groups() {
            rx.join(group).unwrap();
        }
        'outer: for _ in 0..10_000 {
            server.send_round(&mut tx);
            while let Some((_group, datagram)) = rx.recv() {
                if client.handle_datagram(datagram) == ClientEvent::Complete {
                    break 'outer;
                }
            }
        }
        (client, data)
    }

    #[test]
    fn lossless_download_reconstructs_the_file() {
        let (client, data) = run_download(0.0, 4, 60_000);
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
        let stats = client.stats();
        assert!(stats.distinctness_efficiency() > 0.99);
        assert!(stats.decode_attempts() >= 1);
    }

    #[test]
    fn lossy_download_still_reconstructs() {
        let (client, data) = run_download(0.3, 4, 40_000);
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
        assert!(client.stats().reception_efficiency() > 0.4);
    }

    #[test]
    fn corrupted_and_foreign_datagrams_are_ignored() {
        let data = vec![9u8; 20_000];
        let server = ServerSession::with_defaults(&data, 1, 3).unwrap();
        let mut client = ClientSession::new(server.control_info().clone()).unwrap();
        assert_eq!(
            client.handle_datagram(Bytes::from_static(b"short")),
            ClientEvent::Ignored
        );
        // Well-formed header but index out of range.
        let bogus = DataPacket::new(
            crate::wire::PacketHeader {
                packet_index: 1_000_000,
                serial: 0,
                group: 0,
            },
            Bytes::from(vec![0u8; 500]),
        );
        assert_eq!(
            client.handle_datagram(bogus.to_bytes()),
            ClientEvent::Ignored
        );
        // Right index, wrong payload length.
        let short = DataPacket::new(
            crate::wire::PacketHeader {
                packet_index: 0,
                serial: 0,
                group: 0,
            },
            Bytes::from(vec![0u8; 499]),
        );
        assert_eq!(
            client.handle_datagram(short.to_bytes()),
            ClientEvent::Ignored
        );
        assert_eq!(client.stats().received(), 0);
    }

    #[test]
    fn unknown_profile_name_is_a_malformed_input_error() {
        let server = ServerSession::with_defaults(&[1u8; 10_000], 1, 5).unwrap();
        let mut control = server.control_info().clone();
        control.profile = "tornado-c".to_string(); // a typo, not a default
        match ClientSession::new(control) {
            Err(TornadoError::MalformedInput { reason }) => {
                assert!(reason.contains("tornado-c"), "unhelpful reason: {reason}")
            }
            other => panic!("expected MalformedInput, got {other:?}"),
        }
    }

    #[test]
    fn hostile_layer_and_group_ranges_are_rejected() {
        let server = ServerSession::with_defaults(&[1u8; 10_000], 1, 5).unwrap();
        let base = server.control_info().clone();
        for (layers, base_group) in [
            (0usize, 0u32),
            (MAX_LAYERS + 1, 0),
            (4_000_000_000, 0),
            (2, u32::MAX),
            (MAX_LAYERS, u32::MAX - 3),
        ] {
            let mut control = base.clone();
            control.layers = layers;
            control.base_group = base_group;
            assert!(
                matches!(
                    ClientSession::new(control),
                    Err(TornadoError::MalformedInput { .. })
                ),
                "layers = {layers}, base_group = {base_group} must be rejected"
            );
        }
        // The boundary itself is fine.
        let mut control = base.clone();
        control.base_group = u32::MAX;
        control.layers = 1;
        assert!(ClientSession::new(control).is_ok());
    }

    #[test]
    fn hostile_sizes_are_rejected_before_code_construction() {
        let server = ServerSession::with_defaults(&[1u8; 10_000], 1, 5).unwrap();
        let base = server.control_info().clone();
        // (file_len, packet_size, k) triples a hostile control channel might
        // claim; each must fail fast — cheap validation, no O(k) cascade.
        for (file_len, packet_size, k) in [
            (u32::MAX as usize * 500, 500, u32::MAX as usize), // giant k
            (10_000, 500, MAX_K + 1),                          // above the cap
            (10_000, 500, 0),                                  // zero k
            (10_000, 0, 20),                                   // zero packet size
            (10_000, 1 << 20, 20),                             // impossible UDP payload
            (10_000, 65_500, 1), // framed datagram would exceed the UDP maximum
            (10_000, 500, 21),   // k inconsistent with file_len
            (0, 500, 20),        // empty file, nonzero k
        ] {
            let mut control = base.clone();
            control.file_len = file_len;
            control.packet_size = packet_size;
            control.k = k;
            let t0 = std::time::Instant::now();
            assert!(
                matches!(
                    ClientSession::new(control),
                    Err(TornadoError::MalformedInput { .. })
                ),
                "file_len = {file_len}, packet_size = {packet_size}, k = {k} must be rejected"
            );
            assert!(
                t0.elapsed() < std::time::Duration::from_millis(100),
                "rejection of k = {k} was not cheap"
            );
        }
    }

    #[test]
    fn inconsistent_control_n_is_rejected() {
        let server = ServerSession::with_defaults(&[1u8; 10_000], 1, 5).unwrap();
        let mut control = server.control_info().clone();
        control.n += 1;
        assert!(matches!(
            ClientSession::new(control),
            Err(TornadoError::MalformedInput { .. })
        ));
    }

    #[test]
    fn odd_packet_size_with_gf16_final_block_downloads() {
        // An odd packet size with Tornado B yields a pure GF(2^16) MDS block
        // whose check packets carry two padding bytes (501 bytes here); the
        // client learns that through `TornadoCode::expected_payload_len` and
        // still reconstructs the file exactly.
        let data: Vec<u8> = (0..99_800).map(|i| (i * 37 % 251) as u8).collect();
        let mut server = ServerSession::new(
            &data,
            SessionConfig {
                packet_size: 499,
                profile: TORNADO_B,
                code_seed: 9,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            server.code().unwrap().cascade().final_code(),
            FinalCode::Large(_)
        ));
        let net = SimMulticast::new(21);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.1);
        rx.join(0).unwrap();
        let mut client = ClientSession::new(server.control_info().clone()).unwrap();
        'outer: for _ in 0..10_000 {
            server.send_round(&mut tx);
            while let Some((_group, datagram)) = rx.recv() {
                if client.handle_datagram(datagram) == ClientEvent::Complete {
                    break 'outer;
                }
            }
        }
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
    }

    #[test]
    fn layered_control_parameters_are_validated() {
        let server = ServerSession::with_defaults(&[1u8; 10_000], 1, 5).unwrap();
        let base = server.control_info().clone();
        for (layers, sp, burst) in [
            (1usize, 1usize, 0usize),         // every round an SP
            (1, 8, 8),                        // burst as long as the interval
            (1, 8, 9),                        // burst longer than the interval
            (1, MAX_SP_INTERVAL + 1, 0),      // unbounded accounting
            (MAX_SCHEDULED_LAYERS + 1, 8, 1), // block size 2^16: schedule cap
        ] {
            let mut control = base.clone();
            control.layers = layers;
            control.sp_interval = sp;
            control.burst_rounds = burst;
            assert!(
                matches!(
                    ClientSession::new(control),
                    Err(TornadoError::MalformedInput { .. })
                ),
                "layers = {layers}, sp = {sp}, burst = {burst} must be rejected"
            );
        }
        // The same layer count is fine for a flat session…
        let mut control = base.clone();
        control.layers = MAX_SCHEDULED_LAYERS + 1;
        assert!(ClientSession::new(control).is_ok());
        // …and the minimal layered cadence is fine too.
        let mut control = base.clone();
        control.sp_interval = 2;
        control.burst_rounds = 1;
        let client = ClientSession::new(control).unwrap();
        assert!(client.is_layered());
        assert_eq!(client.subscription_level(), Some(0));
    }

    /// Drive one layered client over `SimMulticast` the way any driver must:
    /// join `subscribed_groups()` up front, then obey Join/Leave events.
    fn run_layered_download(
        server: &mut ServerSession,
        net: &SimMulticast,
        max_rounds: usize,
    ) -> (ClientSession, Vec<ClientEvent>) {
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.0);
        let mut client = ClientSession::new(server.control_info().clone()).unwrap();
        for group in client.subscribed_groups() {
            rx.join(group).unwrap();
        }
        let mut subscription_events = Vec::new();
        'outer: for _ in 0..max_rounds {
            server.send_round(&mut tx);
            while let Some((_group, datagram)) = rx.recv() {
                match client.handle_datagram(datagram) {
                    ClientEvent::Join { group } => {
                        rx.join(group).unwrap();
                        subscription_events.push(ClientEvent::Join { group });
                    }
                    ClientEvent::Leave { group } => {
                        rx.leave(group);
                        subscription_events.push(ClientEvent::Leave { group });
                    }
                    ClientEvent::Complete => break 'outer,
                    _ => {}
                }
            }
        }
        (client, subscription_events)
    }

    #[test]
    fn layered_download_climbs_while_lossless_and_reconstructs() {
        let data: Vec<u8> = (0..400_000).map(|i| (i * 31 % 251) as u8).collect();
        let mut server = ServerSession::new(
            &data,
            SessionConfig {
                layers: 6,
                code_seed: 3,
                sp_interval: 2,
                burst_rounds: 1,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        assert!(server.is_layered());
        let net = SimMulticast::new(5);
        let (client, events) = run_layered_download(&mut server, &net, 200);
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
        // With no bottleneck every burst is clean: the receiver only ever
        // joins, one layer per evaluated SP, starting from the base layer.
        assert!(
            events.iter().all(|e| matches!(e, ClientEvent::Join { .. })),
            "lossless path must never shed a layer: {events:?}"
        );
        let level = client.subscription_level().unwrap();
        assert!(level >= 2, "client stuck at level {level}");
        assert_eq!(events.len(), level, "one join per level climbed");
        assert_eq!(
            client.subscribed_groups(),
            (0..=level as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn join_leave_decisions_are_deterministic_for_a_datagram_trace() {
        // Record the full datagram trace of a layered carousel, then replay
        // it twice through the subscription-filtering a real driver performs.
        // The sans-I/O split means the event sequence must be identical —
        // the state machine has no clock, RNG or socket to diverge on.
        let data = vec![7u8; 150_000];
        let config = SessionConfig {
            layers: 6,
            code_seed: 11,
            sp_interval: 2,
            burst_rounds: 1,
            ..SessionConfig::default()
        };
        let mut server = ServerSession::new(&data, config).unwrap();
        let mut trace: Vec<(u32, Bytes)> = Vec::new();
        for _ in 0..40 {
            while let Some(out) = server.poll_transmit() {
                trace.push(out);
            }
            server.advance_round();
        }
        let replay = || {
            let mut client = ClientSession::new(server.control_info().clone()).unwrap();
            let mut joined: Vec<u32> = client.subscribed_groups();
            let mut events = Vec::new();
            for (group, datagram) in &trace {
                if !joined.contains(group) {
                    continue; // not subscribed: the datagram never arrives
                }
                match client.handle_datagram(datagram.clone()) {
                    ClientEvent::Join { group } => {
                        joined.push(group);
                        events.push(ClientEvent::Join { group });
                    }
                    ClientEvent::Leave { group } => {
                        joined.retain(|&g| g != group);
                        events.push(ClientEvent::Leave { group });
                    }
                    ClientEvent::Complete => break,
                    _ => {}
                }
            }
            (events, client.subscription_level(), client.is_complete())
        };
        let first = replay();
        let second = replay();
        assert_eq!(first, second, "identical trace must yield identical run");
        assert!(!first.0.is_empty(), "premise: the trace spans several SPs");
    }

    fn run_rateless_download(
        mode: RatelessMode,
        loss: f64,
        data_len: usize,
        packet_size: usize,
        skip_rounds: usize,
    ) -> (ClientSession, Vec<u8>) {
        let data: Vec<u8> = (0..data_len).map(|i| (i * 131 % 251) as u8).collect();
        let mut server = ServerSession::new(
            &data,
            SessionConfig {
                rateless: mode,
                packet_size,
                code_seed: 7,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let net = SimMulticast::new(11);
        let mut tx = net.endpoint(0.0);
        // A "late joiner": rounds transmitted before the client tunes in are
        // simply never seen, exactly as on a real multicast group.
        for _ in 0..skip_rounds {
            server.send_round(&mut tx);
        }
        let mut rx = net.endpoint(loss);
        let mut client = ClientSession::new(server.control_info().clone()).unwrap();
        assert_eq!(client.rateless_mode(), mode);
        for group in client.groups() {
            rx.join(group).unwrap();
        }
        while rx.recv().is_some() {} // drop anything queued pre-join
        'outer: for _ in 0..10_000 {
            server.send_round(&mut tx);
            while let Some((_group, datagram)) = rx.recv() {
                if client.handle_datagram(datagram) == ClientEvent::Complete {
                    break 'outer;
                }
            }
        }
        (client, data)
    }

    #[test]
    fn rateless_lt_download_reconstructs_under_loss() {
        let (client, data) = run_rateless_download(RatelessMode::Lt, 0.3, 30_000, 500, 0);
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
        let stats = client.stats();
        // Every rateless symbol is fresh: distinctness is exactly 1.
        assert_eq!(stats.distinctness_efficiency(), 1.0);
        assert_eq!(stats.rejected(), 0);
        assert_eq!(stats.received(), stats.distinct());
    }

    #[test]
    fn rateless_raptor_download_reconstructs_at_odd_packet_size() {
        // 499-byte packets force the GF(2^16) two-byte intermediate padding
        // through the whole wire path: symbols are 501 bytes, yet the
        // reassembled file must be byte-exact.
        let (client, data) = run_rateless_download(RatelessMode::Raptor, 0.2, 49_900, 499, 0);
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
        assert_eq!(client.stats().distinctness_efficiency(), 1.0);
    }

    #[test]
    fn rateless_late_joiner_pays_no_distinctness_penalty() {
        // Join 20 rounds late: a carousel client would start swallowing
        // duplicates, a rateless client sees only fresh seeds and completes
        // from the same ≈1.1k symbols as an on-time joiner.
        let (client, data) = run_rateless_download(RatelessMode::Lt, 0.0, 25_000, 500, 20);
        assert!(client.is_complete());
        assert_eq!(client.file().unwrap(), &data[..]);
        let stats = client.stats();
        assert_eq!(stats.distinctness_efficiency(), 1.0);
        assert!(
            stats.received() < 2 * stats.k(),
            "late join cost duplicates: {} received for k = {}",
            stats.received(),
            stats.k()
        );
    }

    #[test]
    fn hostile_rateless_control_is_rejected() {
        let data = vec![1u8; 25_000];
        let server = ServerSession::new(
            &data,
            SessionConfig {
                rateless: RatelessMode::Lt,
                code_seed: 3,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let base = server.control_info().clone();
        // LT must advertise n = k.
        let mut control = base.clone();
        control.n += 7;
        assert!(matches!(
            ClientSession::new(control),
            Err(TornadoError::MalformedInput { .. })
        ));
        // Rateless plus layered flags is a protocol violation.
        for (layers, sp, burst) in [(2usize, 0usize, 0usize), (1, 4, 1), (1, 0, 1)] {
            let mut control = base.clone();
            control.layers = layers;
            control.sp_interval = sp;
            control.burst_rounds = burst;
            assert!(
                matches!(
                    ClientSession::new(control),
                    Err(TornadoError::MalformedInput { .. })
                ),
                "rateless with layers = {layers}, sp = {sp}, burst = {burst} must be rejected"
            );
        }
        // Raptor validates n against the rebuilt precode's intermediate
        // count.
        let raptor = ServerSession::new(
            &data,
            SessionConfig {
                rateless: RatelessMode::Raptor,
                code_seed: 3,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let mut control = raptor.control_info().clone();
        control.n -= 1;
        assert!(matches!(
            ClientSession::new(control),
            Err(TornadoError::MalformedInput { .. })
        ));
        // An unknown profile name is irrelevant to a rateless session (no
        // Tornado code is negotiated), so it must NOT be rejected.
        let mut control = base.clone();
        control.profile = "not-a-profile".to_string();
        assert!(ClientSession::new(control).is_ok());
    }

    #[test]
    fn download_stats_relation_holds() {
        let (client, _) = run_download(0.1, 1, 30_000);
        let s = client.stats();
        let eta = s.reception_efficiency();
        assert!((eta - s.coding_efficiency() * s.distinctness_efficiency()).abs() < 1e-12);
    }

    #[test]
    fn statistical_attempts_feed_the_persistent_decoder_at_most_once_per_packet() {
        // A file large enough that the needed reception overhead exceeds the
        // initial 6 % margin forces several failed statistical attempts; the
        // owned decoder must still see every distinct packet exactly once in
        // total (the old API re-fed the entire buffer on every attempt).
        let (client, _) = run_download(0.4, 1, 1_000_000);
        assert!(client.is_complete());
        let stats = client.stats();
        assert!(
            stats.decode_attempts() >= 2,
            "premise: need multiple attempts, got {}",
            stats.decode_attempts()
        );
        assert!(
            client.decoder_packets_fed() <= stats.distinct(),
            "decoder saw {} packets for only {} distinct receptions — \
             packets were re-fed across attempts",
            client.decoder_packets_fed(),
            stats.distinct()
        );
    }

    #[test]
    fn duplicates_never_reach_the_decoder() {
        let data = vec![8u8; 40_000];
        let mut server = ServerSession::with_defaults(&data, 1, 17).unwrap();
        let mut client = ClientSession::new(server.control_info().clone()).unwrap();
        let (_, datagram) = server.poll_transmit().unwrap();
        assert_eq!(
            client.handle_datagram(datagram.clone()),
            ClientEvent::Buffered
        );
        assert_eq!(client.handle_datagram(datagram), ClientEvent::Duplicate);
        let stats = client.stats();
        assert_eq!((stats.received(), stats.distinct()), (2, 1));
        // Below the statistical threshold nothing is fed yet, and the
        // duplicate never will be.
        assert_eq!(client.decoder_packets_fed(), 0);
    }

    #[test]
    fn buffer_cap_rejects_the_overflow_and_bounds_memory() {
        let data = vec![3u8; 100_000];
        let mut server = ServerSession::with_defaults(&data, 1, 23).unwrap();
        let mut client = ClientSession::new(server.control_info().clone()).unwrap();
        // A real flood needs ~1.5k distinct packets to bite; shrinking the
        // cap (a unit test can) exercises the identical rejection path in
        // miniature.
        client.buffer_cap = 40;
        let mut datagrams = Vec::new();
        while datagrams.len() < 60 {
            if let Some((_g, d)) = server.poll_transmit() {
                datagrams.push(d);
            } else {
                server.advance_round();
            }
        }
        for (i, d) in datagrams.iter().enumerate() {
            let event = client.handle_datagram(d.clone());
            if i < 40 {
                assert_eq!(event, ClientEvent::Buffered, "packet {i} fits the cap");
            } else {
                assert_eq!(event, ClientEvent::Rejected, "packet {i} exceeds the cap");
            }
            assert!(
                client.buffered_packets() + client.decoder_packets_fed() <= client.buffer_cap(),
                "memory bound violated at packet {i}"
            );
        }
        assert_eq!(client.stats().rejected(), 20);
        // A duplicate of a buffered packet still reports Duplicate, not
        // Rejected: the cap only refuses *new* buffering.
        assert_eq!(
            client.handle_datagram(datagrams[0].clone()),
            ClientEvent::Duplicate
        );
        assert_eq!(client.stats().rejected(), 20);
    }

    #[test]
    fn the_decode_threshold_stays_below_the_buffer_cap() {
        // Liveness: however many attempts fail, the statistical strategy's
        // threshold must remain reachable inside the buffer cap, or the cap
        // would starve the decoder of the packets it still needs.
        let server = ServerSession::with_defaults(&[1u8; 200_000], 1, 3).unwrap();
        let client = ClientSession::new(server.control_info().clone()).unwrap();
        let k = client.stats().k() as f64;
        let worst_threshold = (k * (1.0 + ClientSession::MAX_ATTEMPT_MARGIN)).ceil() as usize;
        assert!(
            worst_threshold < client.buffer_cap(),
            "threshold {worst_threshold} must stay below cap {}",
            client.buffer_cap()
        );
    }

    #[test]
    fn events_progress_buffered_to_complete() {
        let data = vec![5u8; 30_000];
        let mut server = ServerSession::with_defaults(&data, 1, 13).unwrap();
        let net = SimMulticast::new(2);
        let mut tx = net.endpoint(0.0);
        let mut rx = net.endpoint(0.0);
        rx.join(0).unwrap();
        let mut client = ClientSession::new(server.control_info().clone()).unwrap();
        let mut saw_buffered = false;
        'outer: loop {
            server.send_round(&mut tx);
            while let Some((_g, datagram)) = rx.recv() {
                match client.handle_datagram(datagram.clone()) {
                    ClientEvent::Buffered => saw_buffered = true,
                    ClientEvent::Complete => {
                        // Feeding after completion is idempotent.
                        assert_eq!(client.handle_datagram(datagram), ClientEvent::Complete);
                        break 'outer;
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_buffered && client.is_complete());
        // Once complete, every further datagram just reports Complete.
        server.send_round(&mut tx);
        let mut fed_after_completion = 0;
        while let Some((_g, d)) = rx.recv() {
            assert_eq!(client.handle_datagram(d), ClientEvent::Complete);
            fed_after_completion += 1;
        }
        assert!(fed_after_completion > 0);
    }
}
