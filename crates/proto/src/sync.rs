//! Sync-primitive indirection for model checking.
//!
//! Normal builds use the real types (`std::sync::Arc`, `parking_lot::Mutex`,
//! `std::sync::atomic`); under `RUSTFLAGS=--cfg df_check` the same names
//! resolve to the `loom` shim so the model-check suite
//! (`tests/model_check.rs`) can exhaustively explore interleavings of
//! [`crate::SimMulticast`] and [`crate::driver::queue::IntentQueue`] without
//! touching call sites.  Keep every concurrent structure in this crate
//! importing its primitives from here.

#[cfg(df_check)]
pub(crate) use loom::sync::{atomic, Arc, Mutex};

#[cfg(not(df_check))]
pub(crate) use parking_lot::Mutex;
#[cfg(not(df_check))]
pub(crate) use std::sync::{atomic, Arc};
