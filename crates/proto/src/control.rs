//! The session control channel: wire-level framing for the paper's "UDP
//! unicast thread which provides various control information such as
//! multicast group information and file length" (Section 7.1).
//!
//! A client sends a [`ControlRequest`] datagram to the server's control
//! address and receives a [`ControlResponse`].  The payload of a successful
//! [`ControlRequest::Describe`] is a [`ControlInfo`] — everything a client
//! needs to rebuild the Tornado code deterministically and join the session's
//! multicast groups.  Framing is a fixed binary layout (magic, version, type
//! byte, big-endian fields) rather than a serialised Rust struct, so
//! non-Rust clients can speak it and the format is pinned by tests instead
//! of by `derive` internals.

use crate::rateless::RatelessMode;
use bytes::{BufMut, Bytes, BytesMut};

/// First byte of every control datagram.
pub const CONTROL_MAGIC: u8 = 0xDF;
/// Wire-format version.  Version 2 added the layered congestion-control
/// parameters (`sp_interval`, `burst_rounds`) to [`ControlInfo`]; version 3
/// added the [`RatelessMode`] flag announcing seed-carrying sessions.
pub const CONTROL_VERSION: u8 = 0x03;

/// The session parameters a client fetches over the control channel before
/// subscribing.
///
/// `session_id` identifies the session on a multi-session server and
/// `base_group` is the first of its `layers` consecutive multicast groups:
/// layer `l` of session `s` is carried on group `s.base_group + l`.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlInfo {
    /// Identifier of this session on the serving [`crate::FountainServer`].
    pub session_id: u32,
    /// Original file length in bytes.
    pub file_len: usize,
    /// Payload bytes per packet.
    pub packet_size: usize,
    /// Number of source packets `k`.
    pub k: usize,
    /// Number of encoding packets `n`.
    pub n: usize,
    /// Seed from which the Tornado graph structure is rebuilt client-side.
    pub code_seed: u64,
    /// Number of multicast layers.
    pub layers: usize,
    /// First multicast group of the session; layer `l` uses group
    /// `base_group + l`.
    pub base_group: u32,
    /// Rounds between synchronisation points of the layered
    /// congestion-control schedule, or `0` for a flat (single-rate) carousel
    /// with no receiver-driven adaptation.
    pub sp_interval: usize,
    /// Rounds of double-rate burst preceding each synchronisation point
    /// (meaningful only when `sp_interval > 0`).
    pub burst_rounds: usize,
    /// How the data datagrams are encoded: [`RatelessMode::Off`] for the
    /// fixed-encoding carousel, or a seed-carrying rateless mode in which
    /// the header's `packet_index:serial` words hold a 64-bit symbol seed
    /// and `n` advertises the seed range's symbol count (`k` for LT, the
    /// intermediate count for Raptor).
    pub rateless: RatelessMode,
    /// Profile name ("tornado-a" / "tornado-b").  Ignored by rateless
    /// sessions (LT uses no Tornado code; Raptor's precode profile is fixed
    /// by the protocol, not negotiated).
    pub profile: String,
}

impl ControlInfo {
    /// Multicast groups this session transmits on, lowest layer first.
    ///
    /// `ControlInfo` may come straight off the wire, so the iteration is
    /// overflow-safe: layers whose group number would exceed `u32::MAX` are
    /// omitted rather than wrapped onto a foreign session's groups.
    /// (`crate::ClientSession::new` rejects such ranges outright; this
    /// guards callers that inspect an announcement before validating it.)
    pub fn groups(&self) -> impl Iterator<Item = u32> + '_ {
        let base = self.base_group as u64;
        (0..self.layers as u64).map_while(move |l| u32::try_from(base + l).ok())
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.session_id.to_be_bytes());
        buf.put_slice(&(self.file_len as u64).to_be_bytes());
        buf.put_slice(&(self.packet_size as u32).to_be_bytes());
        buf.put_slice(&(self.k as u32).to_be_bytes());
        buf.put_slice(&(self.n as u32).to_be_bytes());
        buf.put_slice(&self.code_seed.to_be_bytes());
        buf.put_slice(&(self.layers as u32).to_be_bytes());
        buf.put_slice(&self.base_group.to_be_bytes());
        // Sessions validate the cadence long before it reaches the wire
        // (df_mcast::MAX_SP_INTERVAL is far below u32::MAX); guard
        // hand-built infos against a silently truncating cast anyway.
        debug_assert!(self.sp_interval <= u32::MAX as usize);
        debug_assert!(self.burst_rounds <= u32::MAX as usize);
        buf.put_slice(&(self.sp_interval as u32).to_be_bytes());
        buf.put_slice(&(self.burst_rounds as u32).to_be_bytes());
        buf.put_u8(self.rateless.to_wire());
        let name = self.profile.as_bytes();
        debug_assert!(name.len() <= u16::MAX as usize);
        buf.put_slice(&(name.len() as u16).to_be_bytes());
        buf.put_slice(name);
    }

    fn decode_from(r: &mut Reader<'_>) -> Option<Self> {
        let session_id = r.u32()?;
        let file_len = r.u64()? as usize;
        let packet_size = r.u32()? as usize;
        let k = r.u32()? as usize;
        let n = r.u32()? as usize;
        let code_seed = r.u64()?;
        let layers = r.u32()? as usize;
        let base_group = r.u32()?;
        let sp_interval = r.u32()? as usize;
        let burst_rounds = r.u32()? as usize;
        let rateless = RatelessMode::from_wire(r.u8()?)?;
        let name_len = r.u16()? as usize;
        let name = r.take(name_len)?;
        Some(ControlInfo {
            session_id,
            file_len,
            packet_size,
            k,
            n,
            code_seed,
            layers,
            base_group,
            sp_interval,
            burst_rounds,
            rateless,
            profile: String::from_utf8(name.to_vec()).ok()?,
        })
    }
}

/// A request datagram on the control channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlRequest {
    /// Ask for the identifiers of every session the server is carouselling.
    ListSessions,
    /// Ask for the parameters of one session.
    Describe {
        /// Session to describe.
        session_id: u32,
    },
}

const REQ_LIST: u8 = 0x01;
const REQ_DESCRIBE: u8 = 0x02;

impl ControlRequest {
    /// Serialise the request into one datagram.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(CONTROL_MAGIC);
        buf.put_u8(CONTROL_VERSION);
        match self {
            ControlRequest::ListSessions => buf.put_u8(REQ_LIST),
            ControlRequest::Describe { session_id } => {
                buf.put_u8(REQ_DESCRIBE);
                buf.put_slice(&session_id.to_be_bytes());
            }
        }
        buf.freeze()
    }

    /// Parse a request datagram.  Returns `None` for anything malformed —
    /// wrong magic, wrong version, unknown type, truncated or oversized body.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut r = Reader::with_header(data)?;
        let req = match r.u8()? {
            REQ_LIST => ControlRequest::ListSessions,
            REQ_DESCRIBE => ControlRequest::Describe {
                session_id: r.u32()?,
            },
            _ => return None,
        };
        r.finish()?;
        Some(req)
    }
}

/// A response datagram on the control channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlResponse {
    /// The identifiers of every active session.
    SessionList {
        /// Active session identifiers, in announcement order.
        session_ids: Vec<u32>,
    },
    /// The parameters of one session.
    Session {
        /// The described session.
        info: ControlInfo,
    },
    /// The requested session does not exist.
    UnknownSession {
        /// The identifier that was asked about.
        session_id: u32,
    },
    /// The request datagram could not be parsed.
    BadRequest,
}

const RESP_LIST: u8 = 0x81;
const RESP_SESSION: u8 = 0x82;
const RESP_UNKNOWN: u8 = 0x83;
const RESP_BAD_REQUEST: u8 = 0x84;

impl ControlResponse {
    /// Serialise the response into one datagram.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(CONTROL_MAGIC);
        buf.put_u8(CONTROL_VERSION);
        match self {
            ControlResponse::SessionList { session_ids } => {
                buf.put_u8(RESP_LIST);
                debug_assert!(session_ids.len() <= u32::MAX as usize);
                buf.put_slice(&(session_ids.len() as u32).to_be_bytes());
                for id in session_ids {
                    buf.put_slice(&id.to_be_bytes());
                }
            }
            ControlResponse::Session { info } => {
                buf.put_u8(RESP_SESSION);
                info.encode_into(&mut buf);
            }
            ControlResponse::UnknownSession { session_id } => {
                buf.put_u8(RESP_UNKNOWN);
                buf.put_slice(&session_id.to_be_bytes());
            }
            ControlResponse::BadRequest => buf.put_u8(RESP_BAD_REQUEST),
        }
        buf.freeze()
    }

    /// Parse a response datagram.  Returns `None` for anything malformed.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut r = Reader::with_header(data)?;
        let resp = match r.u8()? {
            RESP_LIST => {
                let count = r.u32()? as usize;
                // A datagram holds 4 bytes per id; reject absurd counts
                // before allocating.
                if count > data.len() / 4 {
                    return None;
                }
                let mut session_ids = Vec::with_capacity(count);
                for _ in 0..count {
                    session_ids.push(r.u32()?);
                }
                ControlResponse::SessionList { session_ids }
            }
            RESP_SESSION => ControlResponse::Session {
                info: ControlInfo::decode_from(&mut r)?,
            },
            RESP_UNKNOWN => ControlResponse::UnknownSession {
                session_id: r.u32()?,
            },
            RESP_BAD_REQUEST => ControlResponse::BadRequest,
            _ => return None,
        };
        r.finish()?;
        Some(resp)
    }
}

/// A bounds-checked big-endian reader over a received datagram.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading after validating the magic and version header.
    fn with_header(data: &'a [u8]) -> Option<Self> {
        let mut r = Reader { data, pos: 0 };
        if r.u8()? != CONTROL_MAGIC || r.u8()? != CONTROL_VERSION {
            return None;
        }
        Some(r)
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        if end > self.data.len() {
            return None;
        }
        // bounds: `pos <= end <= data.len()` established just above.
        let out = &self.data[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        // bounds: take(1) returned a slice of exactly one byte.
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_be_bytes(b.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_be_bytes(b.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_be_bytes(b.try_into().ok()?))
    }

    /// Require that the datagram has been consumed exactly.
    fn finish(self) -> Option<()> {
        (self.pos == self.data.len()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_info(
        session_id: u32,
        sizes: (u32, u32, u32),
        code_seed: u64,
        layers: u8,
        base_group: u32,
        name_bytes: &[u8],
    ) -> ControlInfo {
        ControlInfo {
            session_id,
            file_len: sizes.0 as usize,
            packet_size: sizes.1 as usize,
            k: sizes.2 as usize,
            // The wire format carries `n` as a u32, so keep the doubled value
            // representable.
            n: (sizes.2 as usize).min(u32::MAX as usize / 2) * 2,
            code_seed,
            layers: layers as usize,
            base_group,
            // Derive layered congestion-control parameters that also cover
            // the flat (0, 0) case.
            sp_interval: (session_id % 5) as usize * 4,
            burst_rounds: (session_id % 3) as usize,
            // Cycle through every mode byte, Off included.
            rateless: match code_seed % 3 {
                0 => RatelessMode::Off,
                1 => RatelessMode::Lt,
                _ => RatelessMode::Raptor,
            },
            // Arbitrary printable-ASCII profile name.
            profile: name_bytes.iter().map(|b| (b % 94 + 33) as char).collect(),
        }
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            ControlRequest::ListSessions,
            ControlRequest::Describe { session_id: 0 },
            ControlRequest::Describe {
                session_id: u32::MAX,
            },
        ] {
            let wire = req.to_bytes();
            assert_eq!(ControlRequest::from_bytes(&wire), Some(req));
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert_eq!(ControlRequest::from_bytes(&[]), None);
        assert_eq!(ControlRequest::from_bytes(&[CONTROL_MAGIC]), None);
        // Wrong magic.
        assert_eq!(ControlRequest::from_bytes(&[0x00, 0x01, 0x01]), None);
        // Wrong version.
        assert_eq!(
            ControlRequest::from_bytes(&[CONTROL_MAGIC, 0x7f, 0x01]),
            None
        );
        // Unknown type.
        assert_eq!(
            ControlRequest::from_bytes(&[CONTROL_MAGIC, CONTROL_VERSION, 0x7f]),
            None
        );
        // Truncated Describe.
        assert_eq!(
            ControlRequest::from_bytes(&[CONTROL_MAGIC, CONTROL_VERSION, 0x02, 0, 0]),
            None
        );
        // Trailing garbage.
        let mut long = ControlRequest::ListSessions.to_bytes().to_vec();
        long.push(0);
        assert_eq!(ControlRequest::from_bytes(&long), None);
    }

    #[test]
    fn response_roundtrip() {
        let info = arb_info(3, (1_000_000, 500, 2_000), 42, 4, 16, b"tornado-a");
        for resp in [
            ControlResponse::SessionList {
                session_ids: vec![],
            },
            ControlResponse::SessionList {
                session_ids: vec![0, 1, u32::MAX],
            },
            ControlResponse::Session { info },
            ControlResponse::UnknownSession { session_id: 9 },
            ControlResponse::BadRequest,
        ] {
            let wire = resp.to_bytes();
            assert_eq!(ControlResponse::from_bytes(&wire), Some(resp));
        }
    }

    #[test]
    fn truncated_responses_are_rejected() {
        let info = arb_info(1, (10_000, 500, 20), 7, 1, 0, b"tornado-b");
        let wire = ControlResponse::Session { info }.to_bytes();
        for cut in 0..wire.len() {
            assert_eq!(
                ControlResponse::from_bytes(&wire[..cut]),
                None,
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn rateless_mode_byte_sits_after_the_cadence_and_rejects_unknowns() {
        let mut info = arb_info(1, (10_000, 500, 20), 7, 1, 0, b"tornado-a");
        info.rateless = RatelessMode::Raptor;
        let wire = ControlResponse::Session { info }.to_bytes();
        // Fixed layout: 3 header bytes, then 48 bytes of numeric fields
        // (u32 id, u64 len, five u32s, u64 seed, two u32 cadence words)
        // put the mode byte at offset 51 — pin it so the format cannot
        // silently drift.
        const MODE_OFFSET: usize = 51;
        assert_eq!(wire[MODE_OFFSET], RatelessMode::Raptor.to_wire());
        let mut forged = wire.to_vec();
        forged[MODE_OFFSET] = 0x7f;
        assert_eq!(
            ControlResponse::from_bytes(&forged),
            None,
            "unknown mode bytes must fail the parse, not default"
        );
    }

    #[test]
    fn session_list_count_is_validated_against_datagram_size() {
        // A count field claiming 2^31 ids must be rejected without allocating.
        let mut wire = vec![CONTROL_MAGIC, CONTROL_VERSION, RESP_LIST];
        wire.extend_from_slice(&0x8000_0000u32.to_be_bytes());
        assert_eq!(ControlResponse::from_bytes(&wire), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_request_roundtrip(session_id: u32, pick: bool) {
            let req = if pick {
                ControlRequest::ListSessions
            } else {
                ControlRequest::Describe { session_id }
            };
            prop_assert_eq!(ControlRequest::from_bytes(&req.to_bytes()), Some(req));
        }

        #[test]
        fn prop_session_list_roundtrip(ids in proptest::collection::vec(any::<u32>(), 0..50)) {
            let resp = ControlResponse::SessionList { session_ids: ids };
            prop_assert_eq!(ControlResponse::from_bytes(&resp.to_bytes()), Some(resp.clone()));
        }

        #[test]
        fn prop_session_info_roundtrip(
            session_id: u32,
            file_len: u32,
            packet_size: u32,
            k: u32,
            code_seed: u64,
            layers: u8,
            base_group: u32,
            name in proptest::collection::vec(any::<u8>(), 0..40),
        ) {
            let info = arb_info(
                session_id,
                (file_len, packet_size, k),
                code_seed,
                layers,
                base_group,
                &name,
            );
            let resp = ControlResponse::Session { info };
            prop_assert_eq!(ControlResponse::from_bytes(&resp.to_bytes()), Some(resp.clone()));
        }

        #[test]
        fn prop_noise_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Whatever arrives on the control port, parsing must return
            // cleanly (the fuzz half of the framing contract).
            let _ = ControlRequest::from_bytes(&noise);
            let _ = ControlResponse::from_bytes(&noise);
        }
    }
}
