//! Receiver-driven layered congestion control (Section 7.1), client side.
//!
//! A layered session spreads its encoding across `g` multicast groups with
//! geometric rates; each receiver subscribes to a *cumulative* prefix of the
//! layers and finds its own rate with no feedback to the source: it may add
//! a layer only at a synchronisation point (SP), it drops a layer on loss
//! between SPs, and the double-rate burst the server transmits just before
//! each SP probes whether the next level would fit through the receiver's
//! bottleneck — loss during the burst cancels the upcoming join without
//! costing a subscription change.
//!
//! [`LayerController`] is that receiver logic as a pure state machine, in
//! keeping with the crate's sans-I/O design: it observes the headers of the
//! data packets a [`crate::ClientSession`] digests, detects loss by
//! comparing per-round reception counts against the deterministic
//! reverse-binary schedule, and emits [`crate::ClientEvent::Join`] /
//! [`crate::ClientEvent::Leave`] *intents*.  The I/O driver owns the actual
//! [`crate::Transport::join`] / [`crate::Transport::leave`] calls — exactly
//! as the session layer never touches a socket, the controller never touches
//! a group membership.
//!
//! ## How rounds are recovered from serial numbers
//!
//! The wire header carries no round number (the paper's 12-byte header is
//! packet index, serial, group).  It does not need to: a layered server
//! transmits every layer every round, and across all layers one round sends
//! each of the `n` encoding packets exactly once (Table 5's columns sum to
//! the whole block), so a non-burst round is exactly `n` datagrams and a
//! burst round exactly `2n`.  Serial numbers therefore map to rounds in
//! closed form, and a receiver subscribed to *any* prefix of the layers can
//! recover the round (and burst phase) of every packet it sees — which is
//! also why layered mode requires the driver to transmit rounds in full
//! (`FountainServer::poll_transmit` and `ServerSession::send_round` both
//! do).

use crate::client::ClientEvent;
use df_mcast::{LayeredSession, TransmissionSchedule};
use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::VecDeque;

/// The receiver-side join/leave state machine for one layered session.
///
/// The SP/burst cadence lives in the embedded [`LayeredSession`] — the same
/// type the server transmits from — so the two sides cannot drift apart on
/// what a burst round is.
#[derive(Debug)]
pub(crate) struct LayerController {
    session: LayeredSession,
    base_group: u32,
    /// Current cumulative subscription level (layers `0..=level`).
    level: usize,
    /// Highest unwrapped serial seen, for 32-bit wrap recovery.
    max_serial: Option<u64>,
    /// Highest round any observed packet belonged to.
    max_round: usize,
    /// Valid data packets counted per round (only layers `0..=level`).
    counts: HashMap<usize, usize>,
    /// Serials already counted in the live accounting window.  A duplicated
    /// (or attacker-replayed) datagram is not evidence its round arrived
    /// intact, so each serial feeds `counts` at most once; the set is pruned
    /// to the live window at every SP evaluation and cleared on re-anchor,
    /// so it stays O(window), not O(session).
    seen: HashSet<u64>,
    /// Consecutive evaluated windows without inter-SP loss.
    clean_streak: usize,
    /// Clean windows required before the next join.  Starts at 1 (a clean
    /// burst is enough, as in the paper) and doubles at every leave, so a
    /// receiver that keeps overshooting backs off its probing instead of
    /// oscillating with the channel's burst process.
    join_caution: usize,
    /// Lossy windows still absorbed without shedding another layer, after a
    /// leave.  The leave itself needs driver rounds to take effect, and a
    /// loss burst that triggered it will usually smear into the next window;
    /// reacting again immediately would cascade straight to the base layer.
    leave_cooldown: usize,
    /// Rounds before this one are never evaluated for loss: the window in
    /// which the receiver joined mid-round, or in which a subscription
    /// change was still propagating through the driver, would read as
    /// spurious loss.
    eval_from: usize,
    /// The next SP round whose preceding window is still to be evaluated.
    next_sp: usize,
    started: bool,
    /// Join/leave intents awaiting pickup by the session.
    decisions: VecDeque<ClientEvent>,
}

impl LayerController {
    /// `session` must mirror the server's announced cadence (`layers` and
    /// `n` from the control info, validated by `ClientSession::new` through
    /// [`LayeredSession::new`]).
    pub(crate) fn new(session: LayeredSession, base_group: u32) -> Self {
        let next_sp = session.sp_interval();
        LayerController {
            session,
            base_group,
            level: 0,
            max_serial: None,
            max_round: 0,
            counts: HashMap::new(),
            seen: HashSet::new(),
            clean_streak: 0,
            join_caution: 1,
            leave_cooldown: 0,
            eval_from: 0,
            next_sp,
            started: false,
            decisions: VecDeque::new(),
        }
    }

    /// Current cumulative subscription level.
    pub(crate) fn level(&self) -> usize {
        self.level
    }

    /// Groups of the current subscription, lowest layer first.
    pub(crate) fn subscribed_groups(&self) -> impl Iterator<Item = u32> + '_ {
        (0..=self.level as u32).map(move |l| self.base_group + l)
    }

    /// Next join/leave intent for the driver, if any.
    pub(crate) fn pop_decision(&mut self) -> Option<ClientEvent> {
        self.decisions.pop_front()
    }

    /// Undo subscription changes whose intents the driver never saw.  Called
    /// when the download completes on the very datagram that crossed an SP:
    /// `handle_datagram` reports `Complete` (nothing further will be polled),
    /// so the level must fall back to what the driver actually joined or
    /// [`crate::ClientSession::subscribed_groups`] would lie about the
    /// transport's memberships.
    pub(crate) fn rollback_undelivered(&mut self) {
        while let Some(decision) = self.decisions.pop_back() {
            match decision {
                ClientEvent::Join { .. } => self.level -= 1,
                ClientEvent::Leave { .. } => self.level += 1,
                _ => {}
            }
        }
    }

    fn schedule(&self) -> &TransmissionSchedule {
        self.session.schedule()
    }

    fn sp_interval(&self) -> usize {
        self.session.sp_interval()
    }

    fn is_burst(&self, round: usize) -> bool {
        self.session.is_burst(round)
    }

    /// Datagrams one full SP period transmits (`sp_interval − burst_rounds`
    /// rounds of `n` plus `burst_rounds` rounds of `2n`).
    fn period_serials(&self) -> u64 {
        self.schedule().n() as u64
            * (self.session.sp_interval() + self.session.burst_rounds()) as u64
    }

    /// Closed-form serial → round mapping (see the module docs).
    fn round_of_serial(&self, serial: u64) -> usize {
        let n = self.schedule().n() as u64;
        let period = self.period_serials();
        let plain_rounds = (self.session.sp_interval() - self.session.burst_rounds()) as u64;
        let p = serial / period;
        let rem = serial % period;
        // Each period starts at an SP: first the plain rounds, then the
        // double-rate burst rounds leading into the next SP.
        let phase = if rem < plain_rounds * n {
            rem / n
        } else {
            plain_rounds + (rem - plain_rounds * n) / (2 * n)
        };
        (p * self.sp_interval() as u64 + phase) as usize
    }

    /// Inverse of [`Self::round_of_serial`]: the serial of `round`'s first
    /// datagram.  Used to prune [`Self::seen`] once a window is evaluated.
    fn first_serial_of_round(&self, round: usize) -> u64 {
        let n = self.schedule().n() as u64;
        let sp = self.sp_interval() as u64;
        let plain = (self.session.sp_interval() - self.session.burst_rounds()) as u64;
        let p = round as u64 / sp;
        let phase = round as u64 % sp;
        let base = p * self.period_serials();
        if phase <= plain {
            base + phase * n
        } else {
            base + plain * n + (phase - plain) * 2 * n
        }
    }

    /// Packets a level-`level` subscriber should see in `round` if nothing
    /// is lost.
    fn expected_at_level(&self, round: usize) -> usize {
        let per_round: usize = (0..=self.level)
            .map(|layer| self.schedule().transmission_len(layer, round))
            .sum();
        if self.is_burst(round) {
            2 * per_round
        } else {
            per_round
        }
    }

    /// Recover the unwrapped serial from the 32-bit wire field, assuming
    /// packets arrive within half the serial space of the newest one.
    fn unwrap_serial(&mut self, wire: u32) -> u64 {
        let serial = match self.max_serial {
            None => wire as u64,
            Some(max) => {
                let max_low = max as u32;
                let mut hi = max >> 32;
                if wire < max_low && max_low - wire > u32::MAX / 2 {
                    hi += 1; // wrapped forward past 2^32
                } else if wire > max_low && wire - max_low > u32::MAX / 2 {
                    hi = hi.saturating_sub(1); // straggler from before a wrap
                }
                (hi << 32) | wire as u64
            }
        };
        self.max_serial = Some(self.max_serial.map_or(serial, |m| m.max(serial)));
        serial
    }

    /// Round gaps beyond this many SP intervals re-anchor the tracker
    /// instead of evaluating every skipped window.  A real stall that long
    /// means the loss history is meaningless anyway, and the bound keeps one
    /// datagram with a forged far-future serial (the data channel is as
    /// unauthenticated as any multicast) from driving millions of window
    /// evaluations — or a cascade of spurious Leaves — inside a single
    /// `handle_datagram` call.
    const MAX_CATCHUP_SPS: usize = 2;

    /// Digest the header of one valid data packet.  Returns nothing; any
    /// resulting join/leave intent is queued for [`Self::pop_decision`].
    pub(crate) fn observe(&mut self, serial: u32, group: u32) {
        let Some(layer) = group.checked_sub(self.base_group) else {
            return;
        };
        if layer as usize >= self.schedule().layers() {
            return;
        }
        let serial = self.unwrap_serial(serial);
        let round = self.round_of_serial(serial);
        if !self.started {
            self.started = true;
            self.anchor(round);
        } else if round > self.max_round + Self::MAX_CATCHUP_SPS * self.sp_interval() {
            self.anchor(round);
            return;
        }
        self.max_round = self.max_round.max(round);
        // Rounds whose window has already been evaluated can never be looked
        // at again, so their serials are dead for accounting; ignoring them
        // outright keeps a replay flood of historic serials from growing
        // `counts` or `seen` beyond the live window.
        if round < self.next_sp.saturating_sub(self.sp_interval()) {
            return;
        }
        // Dedupe by serial: a duplicated or replayed datagram is not
        // evidence that its round arrived intact, so each serial counts
        // once however many copies the channel (or an attacker) delivers.
        if !self.seen.insert(serial) {
            return;
        }
        if layer as usize <= self.level {
            *self.counts.entry(round).or_insert(0) += 1;
        }
        // Evaluate every SP whose window is fully in the past (one round of
        // guard so late packets of the window's last round — reordered
        // across the driver's group sockets — still land in `counts`).
        while self.max_round > self.next_sp {
            let sp = self.next_sp;
            self.next_sp += self.sp_interval();
            self.evaluate_window(sp);
        }
    }

    /// (Re-)start loss accounting at `round`: the round itself is partial
    /// from the receiver's point of view (it joined, or resurfaced, mid
    /// round), so evaluation begins with the next one.
    fn anchor(&mut self, round: usize) {
        self.eval_from = round + 1;
        self.next_sp = (round / self.sp_interval() + 1) * self.sp_interval();
        self.max_round = round;
        self.counts.clear();
        self.seen.clear();
    }

    /// Evaluate the window `[sp − sp_interval, sp)` and queue at most one
    /// subscription change, as the paper's receiver does at each SP.
    fn evaluate_window(&mut self, sp: usize) {
        let mut inter_sp_loss = false;
        let mut burst_loss = false;
        let mut burst_seen = false;
        let mut evaluated_any = false;
        for round in sp.saturating_sub(self.sp_interval())..sp {
            if round < self.eval_from {
                continue;
            }
            evaluated_any = true;
            let got = self.counts.get(&round).copied().unwrap_or(0);
            let lost = got < self.expected_at_level(round);
            if self.is_burst(round) {
                burst_seen = true;
                burst_loss |= lost;
            } else {
                inter_sp_loss |= lost;
            }
        }
        self.counts.retain(|&round, _| round >= sp);
        let cutoff = self.first_serial_of_round(sp);
        self.seen.retain(|&serial| serial >= cutoff);
        if !evaluated_any {
            // Every round of the window fell inside a subscription-change
            // guard: no evidence either way, so neither the clean streak
            // nor the loss reaction may move.
            return;
        }
        if inter_sp_loss {
            self.clean_streak = 0;
            if self.leave_cooldown > 0 {
                // A layer was just shed: the change is still propagating
                // through the driver and the burst that forced it smears
                // into this window, so absorb the loss instead of cascading
                // another level down.
                self.leave_cooldown -= 1;
            } else if self.level > 0 {
                // Sustained loss: shed the top layer.
                self.decisions.push_back(ClientEvent::Leave {
                    group: self.base_group + self.level as u32,
                });
                self.level -= 1;
                self.leave_cooldown = Self::LEAVE_COOLDOWN_SPS;
                // Back off the next probe: each shed layer doubles the
                // clean evidence required before re-joining, so a bursty
                // channel cannot make the receiver oscillate at the burst
                // frequency.
                self.join_caution = (self.join_caution * 2).min(Self::MAX_JOIN_CAUTION);
                self.reset_after_change();
            }
        } else {
            self.clean_streak += 1;
            self.leave_cooldown = self.leave_cooldown.saturating_sub(1);
            if burst_seen
                && !burst_loss
                && self.level + 1 < self.schedule().layers()
                && self.clean_streak >= self.join_caution
            {
                // A clean burst is the all-clear to add a layer at the SP —
                // once enough consecutive clean windows back it up.
                self.level += 1;
                self.decisions.push_back(ClientEvent::Join {
                    group: self.base_group + self.level as u32,
                });
                self.reset_after_change();
            }
        }
    }

    /// Lossy windows absorbed after a leave before another layer may be
    /// shed.
    const LEAVE_COOLDOWN_SPS: usize = 1;

    /// Cap on [`Self::join_caution`]: even a receiver that shed many layers
    /// re-probes within a bounded number of clean windows.
    const MAX_JOIN_CAUTION: usize = 8;

    /// After a subscription change, skip the rounds during which the driver
    /// is still acting on it (the change propagates to the transport while
    /// the current round — and possibly the next — is already in flight).
    fn reset_after_change(&mut self) {
        self.eval_from = self.max_round + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(layers: usize, n: usize, sp: usize, burst: usize) -> LayerController {
        LayerController::new(LayeredSession::new(layers, n, sp, burst).unwrap(), 10)
    }

    /// Feed one server round to the controller the way a real driver would:
    /// serials advance for *every* transmitted packet, only packets of
    /// subscribed layers reach the receiver, and of those at most `budget`
    /// make it through the access link per round (tail drop).
    fn feed_round(c: &mut LayerController, round: usize, serial: &mut u64, budget: usize) {
        let schedule = c.schedule().clone();
        let mult = if c.is_burst(round) { 2 } else { 1 };
        let mut delivered = 0usize;
        for layer in 0..schedule.layers() {
            for _ in 0..mult * schedule.transmission_len(layer, round) {
                let s = *serial;
                *serial += 1;
                if layer <= c.level() {
                    delivered += 1;
                    if delivered <= budget {
                        c.observe(s as u32, 10 + layer as u32);
                    }
                }
            }
        }
    }

    #[test]
    fn serial_round_mapping_matches_the_emission_pattern() {
        let c = controller(3, 100, 4, 1);
        // Period: 3 plain rounds of 100 + 1 burst round of 200 = 500.
        assert_eq!(c.round_of_serial(0), 0);
        assert_eq!(c.round_of_serial(99), 0);
        assert_eq!(c.round_of_serial(100), 1);
        assert_eq!(c.round_of_serial(299), 2);
        assert_eq!(c.round_of_serial(300), 3); // burst round, 200 serials
        assert_eq!(c.round_of_serial(499), 3);
        assert_eq!(c.round_of_serial(500), 4);
        assert_eq!(c.round_of_serial(5 * 500), 20);
        assert!(c.is_burst(3) && !c.is_burst(4));
    }

    #[test]
    fn clean_bursts_climb_one_layer_at_a_time() {
        let mut c = controller(4, 64, 2, 1);
        let mut serial = 0u64;
        let mut joins = Vec::new();
        for round in 0..32 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            while let Some(d) = c.pop_decision() {
                match d {
                    ClientEvent::Join { group } => joins.push(group),
                    other => panic!("lossless trace must never leave, got {other:?}"),
                }
            }
        }
        // Base group is 10; cumulative joins climb to the top level and stop.
        assert_eq!(joins, vec![11, 12, 13]);
        assert_eq!(c.level(), 3);
        assert_eq!(
            c.subscribed_groups().collect::<Vec<_>>(),
            vec![10, 11, 12, 13]
        );
    }

    #[test]
    fn burst_loss_blocks_the_join_without_forcing_a_drop() {
        // Access link fits the base layer exactly (8 packets/round at g=4,
        // n=64): plain rounds arrive whole, every burst overflows, so the
        // probe always fails and the receiver pins at level 0 without a
        // single Leave.
        let mut c = controller(4, 64, 2, 1);
        let mut serial = 0u64;
        for round in 0..40 {
            feed_round(&mut c, round, &mut serial, 8);
            assert!(c.pop_decision().is_none(), "round {round} must not decide");
        }
        assert_eq!(c.level(), 0, "every burst was lossy: never join");
    }

    #[test]
    fn inter_sp_loss_sheds_the_top_layer() {
        let mut c = controller(4, 64, 4, 1);
        let mut serial = 0u64;
        // Climb cleanly for a while…
        let mut round = 0;
        while c.level() < 2 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            while c.pop_decision().is_some() {}
            round += 1;
            assert!(round < 64, "climb stalled");
        }
        // …then the path congests: plain rounds at level 2 (32 packets) no
        // longer fit through a 29-packet bottleneck, and a Leave fires.
        let mut left = None;
        for _ in 0..8 * c.sp_interval() {
            feed_round(&mut c, round, &mut serial, 29);
            round += 1;
            if let Some(d) = c.pop_decision() {
                left = Some(d);
                break;
            }
        }
        assert_eq!(left, Some(ClientEvent::Leave { group: 12 }));
        assert_eq!(c.level(), 1);
    }

    #[test]
    fn joining_mid_carousel_does_not_misread_the_partial_round_as_loss() {
        let mut c = controller(4, 64, 2, 1);
        // The first observed packet lands deep inside round 7 (rounds 0..7
        // hold 4 plain rounds of 64 serials and 3 burst rounds of 128); the
        // controller must anchor there, not at round 0, and must not count
        // the partial round as loss.
        let mut serial: u64 = 4 * 64 + 3 * 128 + 40;
        assert_eq!(c.round_of_serial(serial), 7);
        c.observe(serial as u32, 10);
        // Resume at the round-8 boundary and run cleanly from there.
        serial = 4 * 64 + 4 * 128;
        for round in 8..32 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            while c.pop_decision().is_some() {}
        }
        assert!(c.level() > 0, "a late joiner still climbs");
    }

    #[test]
    fn serial_wrap_is_transparent() {
        let mut c = controller(2, 10, 2, 1);
        let lo = u32::MAX - 7;
        c.observe(lo, 10);
        c.observe(3, 10); // 12 serials later, wrapped
        let wrapped = c.max_serial.unwrap();
        assert_eq!(wrapped, u32::MAX as u64 + 1 + 3);
        // A straggler from before the wrap still resolves below it.
        c.observe(u32::MAX - 2, 10);
        assert_eq!(c.max_serial.unwrap(), wrapped);
    }

    #[test]
    fn a_forged_far_future_serial_reanchors_instead_of_evaluating_every_window() {
        let mut c = controller(4, 64, 2, 1);
        let mut serial = 0u64;
        for round in 0..4 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            while c.pop_decision().is_some() {}
        }
        let level_before = c.level();
        // One datagram claiming a serial ~11 million rounds ahead: the
        // tracker must jump there (bounded work), not walk every window —
        // and must not manufacture a Leave out of the phantom gap.
        c.observe(u32::MAX / 2, 10);
        assert!(c.pop_decision().is_none(), "phantom gap must not decide");
        assert_eq!(c.level(), level_before);
        let far_round = c.max_round;
        assert!(
            far_round > 1_000_000,
            "tracker re-anchored at the far round"
        );
        assert!(
            c.eval_from > far_round && c.next_sp > far_round,
            "accounting restarts past the anchor"
        );
    }

    /// Like [`feed_round`], but every delivered packet is observed `copies`
    /// times — a duplicating channel in front of the controller.
    fn feed_round_dup(
        c: &mut LayerController,
        round: usize,
        serial: &mut u64,
        budget: usize,
        copies: usize,
    ) {
        let schedule = c.schedule().clone();
        let mult = if c.is_burst(round) { 2 } else { 1 };
        let mut delivered = 0usize;
        for layer in 0..schedule.layers() {
            for _ in 0..mult * schedule.transmission_len(layer, round) {
                let s = *serial;
                *serial += 1;
                if layer <= c.level() {
                    delivered += 1;
                    if delivered <= budget {
                        for _ in 0..copies {
                            c.observe(s as u32, 10 + layer as u32);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn duplicates_do_not_mask_loss() {
        // A duplicating channel delivers every surviving packet twice, but
        // only half the base-layer packets survive: the reception *count*
        // equals the expected count, yet half the round is missing.  Serial
        // dedupe must see through the duplicates and still shed the layer.
        let mut c = controller(4, 64, 4, 1);
        let mut serial = 0u64;
        let mut round = 0;
        while c.level() < 1 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            while c.pop_decision().is_some() {}
            round += 1;
            assert!(round < 64, "climb stalled");
        }
        // Level 1 expects 16 packets per plain round; 8 arrive, twice each.
        let mut decision = None;
        for _ in 0..8 * c.sp_interval() {
            feed_round_dup(&mut c, round, &mut serial, 8, 2);
            round += 1;
            if let Some(d) = c.pop_decision() {
                decision = Some(d);
                break;
            }
        }
        assert_eq!(decision, Some(ClientEvent::Leave { group: 11 }));
    }

    #[test]
    fn duplicated_and_reordered_arrivals_count_once_near_the_serial_wrap() {
        // Serials spanning the 32-bit wrap arrive out of order and twice
        // each; the accounting must unwrap them, count each exactly once,
        // and produce no spurious decision.
        let mut c = controller(2, 10, 2, 1);
        // Anchor just before the wrap: serial u32::MAX - 4 sits in some
        // round r; the next rounds' serials cross 2^32.
        let base = u32::MAX as u64 - 4;
        c.observe(base as u32, 10);
        let anchor_round = c.max_round;
        // The serials of the two rounds after the anchor round, reordered
        // and duplicated.
        let start = c.first_serial_of_round(anchor_round + 1);
        let end = c.first_serial_of_round(anchor_round + 3);
        let serials: Vec<u64> = (start..end).collect();
        // Deterministic shuffle: split and interleave from both ends.
        let mid = serials.len() / 2;
        let (front, back) = serials.split_at(mid);
        let mixed: Vec<u64> = back.iter().chain(front.iter()).copied().collect();
        for &s in &mixed {
            c.observe(s as u32, 10);
            c.observe(s as u32, 10); // duplicate
        }
        assert!(
            c.max_serial.unwrap() >= u32::MAX as u64,
            "serials unwrapped"
        );
        for r in anchor_round + 1..anchor_round + 3 {
            if let Some(&got) = c.counts.get(&r) {
                let expected =
                    (c.first_serial_of_round(r + 1) - c.first_serial_of_round(r)) as usize;
                assert_eq!(got, expected, "round {r} must count each serial once");
            }
        }
        assert!(
            c.pop_decision().is_none(),
            "no spurious decision at the wrap"
        );
    }

    #[test]
    fn replayed_historic_serials_cannot_inflate_memory_or_decisions() {
        let mut c = controller(2, 64, 2, 1);
        let mut serial = 0u64;
        for round in 0..8 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            while c.pop_decision().is_some() {}
        }
        let seen_before = c.seen.len();
        let counts_before = c.counts.clone();
        let level_before = c.level();
        // A flood of serials from rounds whose windows were already
        // evaluated: every one must be ignored outright.
        for _ in 0..50 {
            for s in 0..c.first_serial_of_round(4) {
                c.observe(s as u32, 10);
            }
        }
        assert_eq!(
            c.seen.len(),
            seen_before,
            "historic serials must not grow `seen`"
        );
        assert_eq!(c.counts, counts_before, "historic serials must not count");
        assert_eq!(c.level(), level_before);
        assert!(c.pop_decision().is_none());
        // And the live-window state itself is bounded by the schedule, not
        // by how much traffic the flood delivered.
        let n = c.schedule().n();
        let bound = 3 * c.sp_interval() * 2 * n;
        assert!(
            c.seen.len() <= bound,
            "seen {} > bound {bound}",
            c.seen.len()
        );
    }

    #[test]
    fn a_leave_doubles_the_clean_evidence_needed_to_rejoin() {
        let mut c = controller(4, 64, 2, 1);
        let mut serial = 0u64;
        let mut round = 0;
        // First join: one clean window suffices.
        let mut windows_to_first_join = 0;
        while c.level() < 1 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            round += 1;
            windows_to_first_join += 1;
            assert!(round < 64, "climb stalled");
        }
        while c.pop_decision().is_some() {}
        // Congest until the layer is shed again.
        while c.level() > 0 {
            feed_round(&mut c, round, &mut serial, 10);
            round += 1;
            while c.pop_decision().is_some() {}
            assert!(round < 128, "leave never fired");
        }
        // Clean again: the rejoin must now take strictly more rounds than
        // the first join did — the caution doubled.
        let mut windows_to_rejoin = 0;
        while c.level() < 1 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            round += 1;
            windows_to_rejoin += 1;
            assert!(round < 256, "rejoin never fired");
        }
        assert!(
            windows_to_rejoin > windows_to_first_join,
            "rejoin after {windows_to_rejoin} rounds, first join after \
             {windows_to_first_join}: hysteresis must slow the re-probe"
        );
    }

    #[test]
    fn persistent_congestion_still_sheds_every_layer_despite_the_cooldown() {
        let mut c = controller(4, 64, 2, 1);
        let mut serial = 0u64;
        let mut round = 0;
        while c.level() < 2 {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            while c.pop_decision().is_some() {}
            round += 1;
            assert!(round < 64, "climb stalled");
        }
        // The path collapses below even the base rate: the receiver must
        // still walk all the way down (the cooldown delays, never blocks),
        // and shed each layer exactly once.
        let mut leaves = Vec::new();
        for _ in 0..32 * c.sp_interval() {
            feed_round(&mut c, round, &mut serial, 4);
            round += 1;
            while let Some(d) = c.pop_decision() {
                leaves.push(d);
            }
        }
        assert_eq!(
            leaves,
            vec![
                ClientEvent::Leave { group: 12 },
                ClientEvent::Leave { group: 11 },
            ],
            "exactly one leave per subscribed layer, no oscillation"
        );
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn rollback_undelivered_restores_the_driver_visible_level() {
        let mut c = controller(4, 64, 2, 1);
        let mut serial = 0u64;
        // Climb until a Join intent sits in the queue, undelivered.
        let mut round = 0;
        while c.decisions.is_empty() {
            feed_round(&mut c, round, &mut serial, usize::MAX);
            round += 1;
            assert!(round < 64, "no decision ever queued");
        }
        assert_eq!(c.level(), 1, "the queued Join already moved the level");
        c.rollback_undelivered();
        assert_eq!(c.level(), 0, "undelivered Join rolled back");
        assert!(c.pop_decision().is_none());
        assert_eq!(c.subscribed_groups().collect::<Vec<_>>(), vec![10]);
    }
}
