//! A [`Transport`] over real `std::net::UdpSocket`s.
//!
//! Session group numbers are mapped onto socket addresses by a
//! [`GroupAddressing`] scheme:
//!
//! * [`GroupAddressing::Multicast`] — group `g` is the IPv4 multicast address
//!   `base_addr` at UDP port `base_port + g`.  Joining binds a socket to the
//!   group's port and issues an `IP_ADD_MEMBERSHIP`; anything the kernel's
//!   multicast loop (or the network) delivers to that port is received.  This
//!   is the paper's deployment shape.
//! * [`GroupAddressing::LoopbackUnicast`] — group `g` is UDP port
//!   `base_port + g` on `127.0.0.1`.  Sends are plain unicast datagrams;
//!   joining binds the group's port.  This keeps the tests runnable in sandboxes whose
//!   network namespace has no multicast route, while still exercising real
//!   sockets, real datagram framing and real kernel buffers (including
//!   genuine loss when a receiver falls behind).
//!
//! Either way the *session* code is identical — the sans-I/O split means the
//! transport is the only layer that knows sockets exist.  All receive sockets
//! are non-blocking, matching the [`Transport::recv`] polling contract; a
//! driver loop that has nothing to read decides for itself whether to spin,
//! sleep or select.

use crate::transport::{Readiness, Transport};
use bytes::Bytes;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::time::{Duration, Instant};

/// Maximum datagram this transport will receive.  The prototype's packets are
/// 512 bytes; 64 KiB is the UDP maximum.
const MAX_DATAGRAM: usize = 65_536;

/// How session group numbers map onto socket addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupAddressing {
    /// Real IPv4 multicast: group `g` ⇒ `(base_addr, base_port + g)`.
    Multicast {
        /// Multicast group address (must be in `224.0.0.0/4`; pick from the
        /// administratively-scoped `239.0.0.0/8` range for local use).
        base_addr: Ipv4Addr,
        /// UDP port of group 0; group `g` uses `base_port + g`.
        base_port: u16,
    },
    /// Loopback unicast emulation: group `g` ⇒ `127.0.0.1:base_port + g`.
    LoopbackUnicast {
        /// UDP port of group 0; group `g` uses `base_port + g`.
        base_port: u16,
    },
}

impl GroupAddressing {
    /// The socket address datagrams for `group` are sent to, or `None` when
    /// `group` does not fit the port space — `base_port + group` must not
    /// truncate or wrap, otherwise two distinct groups would silently alias
    /// onto one socket and a receiver could be fed a foreign session's
    /// packets.
    pub fn group_addr(&self, group: u32) -> Option<SocketAddrV4> {
        let offset = u16::try_from(group).ok()?;
        match *self {
            GroupAddressing::Multicast {
                base_addr,
                base_port,
            } => Some(SocketAddrV4::new(base_addr, base_port.checked_add(offset)?)),
            GroupAddressing::LoopbackUnicast { base_port } => Some(SocketAddrV4::new(
                Ipv4Addr::LOCALHOST,
                base_port.checked_add(offset)?,
            )),
        }
    }
}

/// A bidirectional UDP transport: one send socket plus one non-blocking
/// receive socket per joined group.
#[derive(Debug)]
pub struct UdpMulticastTransport {
    addressing: GroupAddressing,
    tx: UdpSocket,
    joined: Vec<(u32, UdpSocket)>,
    /// Round-robin cursor so one busy group cannot starve the others.
    next: usize,
    buf: Vec<u8>,
}

impl UdpMulticastTransport {
    /// Create a transport with the given addressing scheme.
    ///
    /// # Errors
    ///
    /// Fails if the (unbound) send socket cannot be created.
    pub fn new(addressing: GroupAddressing) -> io::Result<Self> {
        let tx = UdpSocket::bind((Ipv4Addr::UNSPECIFIED, 0))?;
        if matches!(addressing, GroupAddressing::Multicast { .. }) {
            // Deliver to local members too (the loop is what makes one-host
            // tests and examples possible) and keep the scope host/link local.
            tx.set_multicast_loop_v4(true)?;
            tx.set_multicast_ttl_v4(1)?;
        }
        Ok(UdpMulticastTransport {
            addressing,
            tx,
            joined: Vec::new(),
            next: 0,
            buf: vec![0u8; MAX_DATAGRAM],
        })
    }

    /// Convenience constructor for real multicast addressing.
    ///
    /// # Errors
    ///
    /// See [`UdpMulticastTransport::new`].
    pub fn multicast(base_addr: Ipv4Addr, base_port: u16) -> io::Result<Self> {
        Self::new(GroupAddressing::Multicast {
            base_addr,
            base_port,
        })
    }

    /// Convenience constructor for loopback-unicast addressing.
    ///
    /// # Errors
    ///
    /// See [`UdpMulticastTransport::new`].
    pub fn loopback(base_port: u16) -> io::Result<Self> {
        Self::new(GroupAddressing::LoopbackUnicast { base_port })
    }

    /// The addressing scheme in use.
    pub fn addressing(&self) -> GroupAddressing {
        self.addressing
    }

    /// Groups currently joined.
    pub fn joined_groups(&self) -> Vec<u32> {
        self.joined.iter().map(|(g, _)| *g).collect()
    }

    /// Fallible join — [`Transport::join`] delegates here.
    ///
    /// # Errors
    ///
    /// Fails if the group's port cannot be bound or the multicast membership
    /// cannot be added.
    pub fn try_join(&mut self, group: u32) -> io::Result<()> {
        if self.joined.iter().any(|(g, _)| *g == group) {
            return Ok(());
        }
        let addr = self.addressing.group_addr(group).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("group {group} does not fit this transport's port space"),
            )
        })?;
        let socket = match self.addressing {
            GroupAddressing::Multicast { .. } => {
                let s = UdpSocket::bind((Ipv4Addr::UNSPECIFIED, addr.port()))?;
                s.join_multicast_v4(addr.ip(), &Ipv4Addr::UNSPECIFIED)?;
                s
            }
            GroupAddressing::LoopbackUnicast { .. } => UdpSocket::bind(addr)?,
        };
        socket.set_nonblocking(true)?;
        self.joined.push((group, socket));
        Ok(())
    }

    /// Receive with a deadline: block (in the kernel, via `poll(2)`) until a
    /// datagram arrives on any joined group or `timeout` elapses, whichever
    /// comes first, and return `None` on timeout.
    ///
    /// This is the liveness guarantee the blocking-style integration tests
    /// need: every receive loop built on this method makes progress — and
    /// therefore reaches its own deadline check — even if the sender dies
    /// mid-download, without the spin-and-sleep polling the tests used
    /// before.  The readiness-driven [`crate::driver::EventLoop`] gets the
    /// same guarantee from its poller; this method is the one-socket-set
    /// version for simple single-session drivers.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<(u32, Bytes)> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(got) = self.recv() {
                return Some(got);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let Ok(poller) = polling::Poller::new() else {
                // No poller on this platform: degrade to a bounded sleep.
                std::thread::sleep(remaining.min(Duration::from_millis(1)));
                continue;
            };
            match self.readiness() {
                Readiness::Sockets(fds) if !fds.is_empty() => {
                    for fd in fds {
                        poller
                            .add(fd, polling::Event::readable(0))
                            .expect("joined sockets have distinct fds");
                    }
                    let mut events = Vec::new();
                    if poller.wait(&mut events, Some(remaining)).is_err() {
                        return None;
                    }
                    if events.is_empty() {
                        return None; // timed out
                    }
                }
                // Nothing joined: there is nothing to wait on, so the only
                // honest answer is to run out the clock.
                _ => {
                    std::thread::sleep(remaining);
                    return None;
                }
            }
        }
    }
}

impl Transport for UdpMulticastTransport {
    fn send(&mut self, group: u32, datagram: Bytes) {
        // Best-effort, like the channel itself: a full socket buffer, a
        // missing route or an unmappable group is just loss as far as the
        // protocol is concerned.
        if let Some(addr) = self.addressing.group_addr(group) {
            let _ = self.tx.send_to(&datagram, SocketAddr::V4(addr));
        }
    }

    fn recv(&mut self) -> Option<(u32, Bytes)> {
        let n = self.joined.len();
        for probe in 0..n {
            let slot = (self.next + probe) % n;
            let (group, socket) = &self.joined[slot];
            match socket.recv_from(&mut self.buf) {
                Ok((len, _from)) => {
                    self.next = (slot + 1) % n;
                    return Some((*group, Bytes::from(self.buf[..len].to_vec())));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                // Transient errors (e.g. ECONNREFUSED bounced back on
                // loopback) are treated as loss.
                Err(_) => continue,
            }
        }
        None
    }

    fn join(&mut self, group: u32) -> io::Result<()> {
        self.try_join(group)
    }

    #[cfg(unix)]
    fn readiness(&self) -> Readiness {
        use std::os::unix::io::AsRawFd;
        Readiness::Sockets(self.joined.iter().map(|(_, s)| s.as_raw_fd()).collect())
    }

    fn leave(&mut self, group: u32) {
        if let Some(pos) = self.joined.iter().position(|(g, _)| *g == group) {
            let (_, socket) = self.joined.remove(pos);
            if let GroupAddressing::Multicast { .. } = self.addressing {
                if let Some(addr) = self.addressing.group_addr(group) {
                    let _ = socket.leave_multicast_v4(addr.ip(), &Ipv4Addr::UNSPECIFIED);
                }
            }
            // Dropping the socket closes it and releases the port.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn recv_within(t: &mut UdpMulticastTransport, timeout: Duration) -> Option<(u32, Bytes)> {
        // The kernel-blocking timeout path is itself under test here: every
        // sleep this helper used to do now happens inside poll(2).
        t.recv_timeout(timeout)
    }

    #[test]
    fn loopback_unicast_roundtrip_and_group_separation() {
        let base = 47610;
        let mut rx = UdpMulticastTransport::loopback(base).unwrap();
        rx.join(0).unwrap();
        rx.join(2).unwrap();
        let mut tx = UdpMulticastTransport::loopback(base).unwrap();
        tx.send(0, Bytes::from_static(b"to group zero"));
        tx.send(1, Bytes::from_static(b"nobody joined"));
        tx.send(2, Bytes::from_static(b"to group two"));
        let mut got = Vec::new();
        while let Some((g, d)) = recv_within(&mut rx, Duration::from_millis(500)) {
            got.push((g, d.to_vec()));
            if got.len() == 2 {
                break;
            }
        }
        got.sort();
        assert_eq!(
            got,
            vec![
                (0, b"to group zero".to_vec()),
                (2, b"to group two".to_vec())
            ]
        );
    }

    #[test]
    fn leave_releases_the_port_for_rebinding() {
        let base = 47620;
        let mut a = UdpMulticastTransport::loopback(base).unwrap();
        a.join(0).unwrap();
        a.leave(0);
        assert!(a.joined_groups().is_empty());
        // The port is free again: a second transport can bind it.
        let mut b = UdpMulticastTransport::loopback(base).unwrap();
        b.join(0).unwrap();
        let mut tx = UdpMulticastTransport::loopback(base).unwrap();
        tx.send(0, Bytes::from_static(b"after rebind"));
        let got = recv_within(&mut b, Duration::from_millis(500));
        assert_eq!(
            got.map(|(g, d)| (g, d.to_vec())),
            Some((0, b"after rebind".to_vec()))
        );
    }

    #[test]
    fn joining_twice_is_idempotent() {
        let mut t = UdpMulticastTransport::loopback(47630).unwrap();
        t.join(1).unwrap();
        t.join(1).unwrap();
        assert_eq!(t.joined_groups(), vec![1]);
    }

    #[test]
    fn groups_outside_the_port_space_never_alias() {
        // base_port + group must neither truncate (group > u16::MAX) nor
        // wrap (port overflow); either would map two distinct groups onto
        // one socket and cross-feed sessions.
        let scheme = GroupAddressing::LoopbackUnicast { base_port: 65_000 };
        assert_eq!(
            scheme.group_addr(100).map(|a| a.port()),
            Some(65_100),
            "in-range groups map normally"
        );
        assert_eq!(scheme.group_addr(600), None, "port wrap is rejected");
        assert_eq!(
            scheme.group_addr(65_536),
            None,
            "u16 truncation (group ≡ 0 mod 2^16) is rejected"
        );
        let mut t = UdpMulticastTransport::new(scheme).unwrap();
        let err = t.join(600).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Sends to unmappable groups are just loss, like the channel itself.
        t.send(600, Bytes::from_static(b"dropped"));
        assert!(t.joined_groups().is_empty());
    }

    #[test]
    fn multicast_roundtrip_when_environment_allows() {
        // Real IP multicast needs a multicast-capable route in the test
        // environment; skip (loudly) when the sandbox lacks one, since that
        // is an environment property, not a code defect.  The loopback mode
        // above covers the transport logic unconditionally.
        let base_addr = Ipv4Addr::new(239, 255, 71, 91);
        let base = 47640;
        let mut rx = match UdpMulticastTransport::multicast(base_addr, base) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skipping multicast test: transport creation failed: {e}");
                return;
            }
        };
        if let Err(e) = rx.join(0) {
            eprintln!("skipping multicast test: join failed: {e}");
            return;
        }
        let mut tx = UdpMulticastTransport::multicast(base_addr, base).unwrap();
        tx.send(0, Bytes::from_static(b"multicast hello"));
        match recv_within(&mut rx, Duration::from_millis(500)) {
            Some((g, d)) => {
                assert_eq!(g, 0);
                assert_eq!(&d[..], b"multicast hello");
            }
            None => eprintln!("skipping multicast test: datagram not looped back"),
        }
    }
}
