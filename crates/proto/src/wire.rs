//! Wire format of the prototype's data packets.
//!
//! Section 7.3: "The packets were additionally tagged with 12 bytes of
//! information (packet index, serial number and group number) to give a final
//! packet size of 512 bytes."  We use the same three `u32` fields in network
//! byte order ahead of the payload.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Length of the packet header in bytes.
pub const HEADER_LEN: usize = 12;

/// The 12-byte header carried by every data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Index of the encoding packet within the session's encoding (0..n).
    pub packet_index: u32,
    /// Monotonically increasing serial number of the transmission; lets a
    /// receiver estimate its loss rate.
    pub serial: u32,
    /// Multicast group / layer the packet was sent on.
    pub group: u32,
}

impl PacketHeader {
    /// Serialise the header into 12 bytes (big-endian fields).
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        // bounds: `buf` is exactly HEADER_LEN (12) bytes by construction.
        buf[0..4].copy_from_slice(&self.packet_index.to_be_bytes());
        buf[4..8].copy_from_slice(&self.serial.to_be_bytes());
        buf[8..12].copy_from_slice(&self.group.to_be_bytes());
        buf
    }

    /// Parse a header from the first 12 bytes of `data`.
    ///
    /// Returns `None` if `data` is too short.
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < HEADER_LEN {
            return None;
        }
        Some(PacketHeader {
            // bounds: `data.len() >= HEADER_LEN` (12) checked just above.
            packet_index: u32::from_be_bytes(data[0..4].try_into().ok()?),
            serial: u32::from_be_bytes(data[4..8].try_into().ok()?),
            group: u32::from_be_bytes(data[8..12].try_into().ok()?),
        })
    }
}

/// A full data packet: header plus encoding-packet payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// The packet header.
    pub header: PacketHeader,
    /// The encoding-packet payload (500 bytes in the paper's prototype).
    pub payload: Bytes,
}

impl DataPacket {
    /// Create a packet.
    pub fn new(header: PacketHeader, payload: Bytes) -> Self {
        DataPacket { header, payload }
    }

    /// Serialise header + payload into one datagram.
    pub fn to_bytes(&self) -> Bytes {
        Self::frame(&self.header, &self.payload)
    }

    /// Frame a datagram straight from a borrowed payload, without building a
    /// `DataPacket` first — the zero-copy path for senders that retain their
    /// encoding (the carousel re-sends every packet forever).  This is the
    /// single definition of the data-packet wire layout; [`DataPacket::to_bytes`]
    /// delegates here.
    pub fn frame(header: &PacketHeader, payload: &[u8]) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
        buf.put_slice(&header.encode());
        buf.put_slice(payload);
        buf.freeze()
    }

    /// Parse a datagram back into a packet.
    ///
    /// Returns `None` if the datagram is shorter than a header.
    pub fn from_bytes(mut data: Bytes) -> Option<Self> {
        let header = PacketHeader::decode(&data)?;
        data.advance(HEADER_LEN);
        Some(DataPacket {
            header,
            payload: data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn header_is_exactly_twelve_bytes() {
        let h = PacketHeader {
            packet_index: 1,
            serial: 2,
            group: 3,
        };
        assert_eq!(h.encode().len(), HEADER_LEN);
    }

    #[test]
    fn header_roundtrip() {
        let h = PacketHeader {
            packet_index: 0xDEAD_BEEF,
            serial: 42,
            group: 3,
        };
        assert_eq!(PacketHeader::decode(&h.encode()), Some(h));
        assert_eq!(PacketHeader::decode(&[0u8; 5]), None);
    }

    #[test]
    fn datagram_roundtrip_matches_paper_sizes() {
        let h = PacketHeader {
            packet_index: 8263,
            serial: 99,
            group: 1,
        };
        let payload = Bytes::from(vec![0xabu8; 500]);
        let pkt = DataPacket::new(h, payload.clone());
        let wire = pkt.to_bytes();
        assert_eq!(
            wire.len(),
            512,
            "500 B payload + 12 B header = 512 B datagram"
        );
        let back = DataPacket::from_bytes(wire).unwrap();
        assert_eq!(back.header, h);
        assert_eq!(back.payload, payload);
    }

    proptest! {
        #[test]
        fn prop_packet_roundtrip(index: u32, serial: u32, group: u32,
                                 payload in proptest::collection::vec(any::<u8>(), 0..600)) {
            let pkt = DataPacket::new(
                PacketHeader { packet_index: index, serial, group },
                Bytes::from(payload),
            );
            let back = DataPacket::from_bytes(pkt.to_bytes()).unwrap();
            prop_assert_eq!(back, pkt);
        }
    }
}
