//! Synthetic MBone-like receiver loss traces.
//!
//! Section 6.4 of the paper replays publicly collected MBone traces (Yajnik,
//! Kurose, Towsley) in which ~120 receivers subscribed to hour-long broadcasts
//! and recorded which packets they received; loss rates ranged from under 1 %
//! to over 30 % with an average around 18 % and strongly bursty patterns.
//! Those traces are no longer publicly archived, so this module generates
//! synthetic traces with the same aggregate statistics from per-receiver
//! Gilbert–Elliott processes (the substitution is documented in DESIGN.md).
//! The simulation code path is identical to what real traces would use:
//! trace-driven per-receiver loss replay with a random starting offset.

use crate::loss::{GilbertElliottLoss, LossModel};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A recorded loss trace for one receiver: `true` means the packet at that
/// position of the broadcast was lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverTrace {
    lost: Vec<bool>,
}

impl ReceiverTrace {
    /// Wrap an explicit loss sequence (useful for tests and for replaying real
    /// trace files if they are available).
    pub fn from_losses(lost: Vec<bool>) -> Self {
        ReceiverTrace { lost }
    }

    /// Generate a synthetic trace of `len` packet slots with the given target
    /// average loss rate and burstiness.
    pub fn synthetic(len: usize, loss_rate: f64, burst_len: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut model = GilbertElliottLoss::with_average(loss_rate, burst_len);
        let lost = (0..len).map(|_| model.is_lost(&mut rng)).collect();
        ReceiverTrace { lost }
    }

    /// Number of packet slots in the trace.
    pub fn len(&self) -> usize {
        self.lost.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.lost.is_empty()
    }

    /// Whether the packet at (wrapped) position `pos` was lost.
    ///
    /// The trace is treated as circular, matching the paper's sampling of "a
    /// random initial point within each trace".
    pub fn is_lost(&self, pos: usize) -> bool {
        self.lost[pos % self.lost.len()]
    }

    /// Empirical loss rate of the trace.
    pub fn loss_rate(&self) -> f64 {
        if self.lost.is_empty() {
            return 0.0;
        }
        self.lost.iter().filter(|&&l| l).count() as f64 / self.lost.len() as f64
    }

    /// An iterator over the loss flags starting at `offset`, wrapping around.
    pub fn replay_from(&self, offset: usize) -> impl Iterator<Item = bool> + '_ {
        (0..).map(move |i| self.is_lost(offset + i))
    }
}

/// A set of per-receiver traces standing in for one MBone session.
#[derive(Debug, Clone)]
pub struct TraceSet {
    traces: Vec<ReceiverTrace>,
}

impl TraceSet {
    /// Generate a synthetic session with `receivers` receivers and `len`
    /// packet slots per trace.
    ///
    /// Per-receiver loss rates are drawn log-uniformly between 0.5 % and 45 %
    /// and then scaled so the session-wide mean is `mean_loss` (the paper
    /// reports ≈ 18 % for the parts of the traces it uses), with mean burst
    /// lengths drawn between 2 and 12 packets.
    pub fn synthetic(receivers: usize, len: usize, mean_loss: f64, seed: u64) -> Self {
        assert!(receivers > 0, "a session needs at least one receiver");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Draw heterogeneous per-receiver rates, then rescale to the target
        // session mean while keeping every rate in (0, 0.9).
        let mut rates: Vec<f64> = (0..receivers)
            .map(|_| {
                let lo: f64 = 0.005;
                let hi: f64 = 0.45;
                (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
            })
            .collect();
        let mean: f64 = rates.iter().sum::<f64>() / receivers as f64;
        let scale = mean_loss / mean;
        for r in rates.iter_mut() {
            *r = (*r * scale).clamp(0.001, 0.9);
        }
        let traces = rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| {
                let burst = 2.0 + rng.gen::<f64>() * 10.0;
                ReceiverTrace::synthetic(len, rate, burst, seed ^ (i as u64).wrapping_mul(0x9e37))
            })
            .collect();
        TraceSet { traces }
    }

    /// Build a set from explicit traces.
    pub fn from_traces(traces: Vec<ReceiverTrace>) -> Self {
        TraceSet { traces }
    }

    /// Number of receivers.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if the set has no receivers.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The traces.
    pub fn traces(&self) -> &[ReceiverTrace] {
        &self.traces
    }

    /// Session-wide average loss rate.
    pub fn mean_loss_rate(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().map(|t| t.loss_rate()).sum::<f64>() / self.traces.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_matches_target_rate() {
        let t = ReceiverTrace::synthetic(100_000, 0.18, 6.0, 1);
        assert!(
            (t.loss_rate() - 0.18).abs() < 0.02,
            "rate {}",
            t.loss_rate()
        );
        assert_eq!(t.len(), 100_000);
    }

    #[test]
    fn replay_wraps_around() {
        let t = ReceiverTrace::from_losses(vec![true, false, false]);
        let got: Vec<bool> = t.replay_from(2).take(5).collect();
        assert_eq!(got, vec![false, true, false, false, true]);
        assert!(t.is_lost(0));
        assert!(t.is_lost(3));
    }

    #[test]
    fn trace_set_statistics_match_the_paper() {
        // 120 receivers as in Figure 6; mean ≈ 18 %, rates heterogeneous
        // from below 1 % to above 30 %.
        let set = TraceSet::synthetic(120, 20_000, 0.18, 7);
        assert_eq!(set.len(), 120);
        let mean = set.mean_loss_rate();
        assert!((mean - 0.18).abs() < 0.03, "session mean {mean}");
        let min = set
            .traces()
            .iter()
            .map(|t| t.loss_rate())
            .fold(f64::INFINITY, f64::min);
        let max = set
            .traces()
            .iter()
            .map(|t| t.loss_rate())
            .fold(0.0f64, f64::max);
        assert!(min < 0.03, "some receivers must see low loss, min {min}");
        assert!(max > 0.30, "some receivers must see heavy loss, max {max}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = TraceSet::synthetic(10, 1000, 0.18, 42);
        let b = TraceSet::synthetic(10, 1000, 0.18, 42);
        for (x, y) in a.traces().iter().zip(b.traces()) {
            assert_eq!(x, y);
        }
    }
}
