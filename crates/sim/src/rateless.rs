//! Rateless-mode experiments: reception overhead of the true fountain and
//! the late-join comparison against the carousel.
//!
//! The paper's Section 7 tables measure the carousel prototype's efficiency
//! split three ways — reception `η = k/received`, coding `η_c = k/distinct`
//! and distinctness `η_d = distinct/received` — and it is `η_d` the carousel
//! gives up: a receiver that needs more than one cycle (loss, late join)
//! sees packets it already holds, and in the heavy-loss limit the cycle
//! looks like uniform sampling with replacement, whose distinctness decays
//! toward the `1 − 1/e ≈ 0.632` floor (the ≈ 0.64 the layered tables show).
//! A rateless session never repeats a seed, so an honest stream holds
//! `η_d = 1.0` at *any* join time and the only overhead left is the code's
//! own reception overhead.  These experiments measure both claims through
//! the real `df-proto` sessions.

use df_proto::{
    ClientEvent, ClientSession, RatelessMode, ServerSession, SessionConfig, SimMulticast, Transport,
};

/// Outcome of [`rateless_overhead_experiment`]: reception overhead
/// (`received/k` at completion) of a rateless session over a clean channel.
#[derive(Debug, Clone)]
pub struct RatelessOverheadOutcome {
    /// Which rateless code the sessions ran.
    pub mode: RatelessMode,
    /// Source packets per trial.
    pub k: usize,
    /// Independent trials (fresh stream seed each).
    pub trials: usize,
    /// Mean `received/k` across trials.
    pub mean_overhead: f64,
    /// Worst (largest) `received/k` seen.
    pub worst_overhead: f64,
    /// Trials whose overhead stayed within `1.15 × k`.
    pub within_115: usize,
    /// Smallest distinctness efficiency seen (1.0 for any honest stream).
    pub min_distinctness: f64,
}

/// Stream one rateless download per trial over a lossless channel and
/// measure how many symbols the receiver needed: the protocol-level mirror
/// of the core crate's decode-threshold statistics, run through the real
/// server/client sessions and the seed-carrying wire format.
///
/// # Panics
///
/// Panics if a session cannot be built or a trial fails to converge — this
/// is an experiment driver over honest channels, not a validation surface.
pub fn rateless_overhead_experiment(
    k: usize,
    packet_size: usize,
    mode: RatelessMode,
    trials: usize,
    seed: u64,
) -> RatelessOverheadOutcome {
    let mut total = 0.0f64;
    let mut worst = 0.0f64;
    let mut within = 0usize;
    let mut min_eta_d = f64::INFINITY;
    for trial in 0..trials {
        let data: Vec<u8> = (0..k * packet_size)
            .map(|i| ((i * 131 + trial * 17 + seed as usize) % 251) as u8)
            .collect();
        let mut server = ServerSession::new(
            &data,
            SessionConfig {
                packet_size,
                rateless: mode,
                code_seed: seed.wrapping_add(trial as u64).wrapping_mul(0x9E37_79B9),
                ..SessionConfig::default()
            },
        )
        .expect("rateless server session");
        let mut client =
            ClientSession::new(server.control_info().clone()).expect("honest control info");
        let mut rounds = 0;
        'deliver: while !client.is_complete() {
            while let Some((_group, dgram)) = server.poll_transmit() {
                if client.handle_datagram(dgram) == ClientEvent::Complete {
                    break 'deliver;
                }
            }
            server.advance_round();
            rounds += 1;
            assert!(rounds < 100, "rateless trial failed to converge");
        }
        assert_eq!(client.file().expect("completed"), &data[..]);
        let overhead = client.stats().received() as f64 / k as f64;
        total += overhead;
        worst = worst.max(overhead);
        if overhead <= 1.15 {
            within += 1;
        }
        min_eta_d = min_eta_d.min(client.stats().distinctness_efficiency());
    }
    RatelessOverheadOutcome {
        mode,
        k,
        trials,
        mean_overhead: total / trials.max(1) as f64,
        worst_overhead: worst,
        within_115: within,
        min_distinctness: min_eta_d,
    }
}

/// One receiver's ledger in a [`late_join_experiment`].
#[derive(Debug, Clone, Copy)]
pub struct LateJoinReceiver {
    /// Packets that survived the channel, duplicates included.
    pub received: usize,
    /// Distinct packets (indices or seeds) among them.
    pub distinct: usize,
    /// Distinctness efficiency `η_d = distinct / received`.
    pub distinctness: f64,
    /// Whether the download completed inside the round budget.
    pub completed: bool,
}

/// Outcome of [`late_join_experiment`]: the same file, the same loss, the
/// same late join — once over the carousel, once over the rateless stream.
#[derive(Debug, Clone, Copy)]
pub struct LateJoinOutcome {
    /// Rounds the servers transmitted before the receivers tuned in.
    pub skip_rounds: usize,
    /// Independent per-packet loss both receivers sat behind.
    pub loss: f64,
    /// The carousel receiver's ledger.
    pub carousel: LateJoinReceiver,
    /// The rateless (LT) receiver's ledger.
    pub rateless: LateJoinReceiver,
}

/// The late-join head-to-head: a carousel client and a rateless client each
/// tune in `skip_rounds` rounds late behind `loss`, and download the same
/// file to completion.  Heavy loss forces the carousel receiver across
/// multiple cycles, so its reception converges on sampling with replacement
/// and `η_d` slides toward the ≈ 0.64 floor; the rateless receiver's seeds
/// are fresh by construction and its `η_d` is exactly 1.0.
///
/// # Panics
///
/// Panics if either session cannot be built — experiment driver, not a
/// validation surface.  A download that misses the round budget reports
/// `completed: false` instead of panicking.
pub fn late_join_experiment(
    file_len: usize,
    packet_size: usize,
    skip_rounds: usize,
    loss: f64,
    seed: u64,
) -> LateJoinOutcome {
    let data: Vec<u8> = (0..file_len)
        .map(|i| ((i * 137 + seed as usize) % 251) as u8)
        .collect();
    let run = |rateless: RatelessMode| -> LateJoinReceiver {
        let mut server = ServerSession::new(
            &data,
            SessionConfig {
                packet_size,
                rateless,
                code_seed: seed,
                ..SessionConfig::default()
            },
        )
        .expect("late-join server session");
        let net = SimMulticast::new(seed ^ rateless.to_wire() as u64);
        let mut tx = net.endpoint(0.0);
        // The early rounds play out before the receiver exists — the
        // carousel has already cycled, the fountain has already streamed.
        for _ in 0..skip_rounds {
            server.send_round(&mut tx);
        }
        let mut rx = net.endpoint(loss);
        let mut client =
            ClientSession::new(server.control_info().clone()).expect("honest control info");
        for group in client.groups() {
            rx.join(group).expect("sim joins cannot fail");
        }
        let mut rounds = 0;
        'deliver: while !client.is_complete() && rounds < 1_000 {
            server.send_round(&mut tx);
            rounds += 1;
            while let Some((_group, dgram)) = rx.recv() {
                if client.handle_datagram(dgram) == ClientEvent::Complete {
                    break 'deliver;
                }
            }
        }
        if client.is_complete() {
            assert_eq!(client.file().expect("completed"), &data[..]);
        }
        LateJoinReceiver {
            received: client.stats().received(),
            distinct: client.stats().distinct(),
            distinctness: client.stats().distinctness_efficiency(),
            completed: client.is_complete(),
        }
    };
    LateJoinOutcome {
        skip_rounds,
        loss,
        carousel: run(RatelessMode::Off),
        rateless: run(RatelessMode::Lt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lt_overhead_stays_modest_at_protocol_scale() {
        let outcome = rateless_overhead_experiment(100, 64, RatelessMode::Lt, 10, 5);
        assert_eq!(outcome.trials, 10);
        // Small k pays more soliton overhead than the k = 1000 acceptance
        // point (≈ 1.11); the protocol layer must not add to it.
        assert!(
            outcome.mean_overhead < 1.5,
            "LT mean overhead {} at k=100",
            outcome.mean_overhead
        );
        assert_eq!(
            outcome.min_distinctness, 1.0,
            "an honest fountain stream never repeats a seed"
        );
    }

    #[test]
    fn raptor_beats_plain_lt_on_mean_overhead() {
        let lt = rateless_overhead_experiment(150, 48, RatelessMode::Lt, 8, 9);
        let raptor = rateless_overhead_experiment(150, 48, RatelessMode::Raptor, 8, 9);
        assert!(
            raptor.mean_overhead < lt.mean_overhead,
            "raptor {} must beat LT {}",
            raptor.mean_overhead,
            lt.mean_overhead
        );
        assert_eq!(raptor.min_distinctness, 1.0);
    }

    #[test]
    fn late_joiners_pay_duplicates_on_the_carousel_but_not_the_fountain() {
        // 98 % loss forces the carousel receiver across many cycles —
        // reception approaches sampling with replacement and η_d lands on
        // the 1 − 1/e ≈ 0.632 floor (measured: ≈ 0.63 at this operating
        // point).  The fountain's seeds are fresh by construction at any
        // join time.
        let outcome = late_join_experiment(50_000, 500, 3, 0.98, 21);
        assert!(outcome.carousel.completed, "carousel: {outcome:?}");
        assert!(outcome.rateless.completed, "rateless: {outcome:?}");
        assert_eq!(
            outcome.rateless.distinctness, 1.0,
            "rateless η_d must be exactly 1.0: {outcome:?}"
        );
        assert!(
            outcome.carousel.distinctness < 0.70 && outcome.carousel.distinctness > 0.5,
            "carousel late joiner must decay toward the ≈ 0.64 floor: {outcome:?}"
        );
        assert!(
            outcome.rateless.received < outcome.carousel.received,
            "freshness must translate into fewer packets needed: {outcome:?}"
        );
    }
}
