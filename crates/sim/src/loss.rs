//! Packet-loss models for the reception-efficiency simulations.
//!
//! Section 6 of the paper uses two channel models: independent loss with a
//! fixed probability `p` per receiver (Figures 4 and 5, Table 4) and
//! trace-driven bursty loss from MBone sessions (Figure 6).  This module
//! provides both, plus the two-state Gilbert–Elliott process the synthetic
//! traces are generated from.

use rand::Rng;

/// A per-receiver packet loss process.
///
/// One `LossModel` instance models one receiver's channel; each call to
/// [`LossModel::is_lost`] advances the process by one transmitted packet.
pub trait LossModel {
    /// Returns `true` if the next transmitted packet is lost at this receiver.
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool;

    /// The long-run average loss rate of the model, if known.
    fn average_loss_rate(&self) -> f64;
}

/// Independent ("Bernoulli") loss: every packet is lost with probability `p`,
/// independently — the model used for the paper's Figures 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliLoss {
    p: f64,
}

impl BernoulliLoss {
    /// Create a model with loss probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)` — a loss rate of 1 would mean the
    /// receiver never receives anything and no simulation can terminate.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1)"
        );
        BernoulliLoss { p }
    }

    /// The loss probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl LossModel for BernoulliLoss {
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }

    fn average_loss_rate(&self) -> f64 {
        self.p
    }
}

/// Two-state Gilbert–Elliott loss: the channel alternates between a good
/// state (low loss) and a bad state (high loss) with geometric sojourn times.
/// This produces the bursty loss patterns the paper observes in its MBone
/// traces ("some clients experience large bursts of loss rates over
/// significant periods of time", Section 6.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottLoss {
    /// Probability of moving good → bad after a packet.
    p_good_to_bad: f64,
    /// Probability of moving bad → good after a packet.
    p_bad_to_good: f64,
    /// Loss probability while in the good state.
    loss_good: f64,
    /// Loss probability while in the bad state.
    loss_bad: f64,
    in_bad_state: bool,
}

impl GilbertElliottLoss {
    /// Create a model from its four parameters, starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or both loss rates are 1.
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        for v in [p_good_to_bad, p_bad_to_good, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&v), "probabilities must be in [0, 1]");
        }
        assert!(
            loss_good < 1.0 || loss_bad < 1.0,
            "at least one state must deliver packets"
        );
        GilbertElliottLoss {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
            in_bad_state: false,
        }
    }

    /// A model calibrated to a target average loss rate with a given
    /// burstiness (mean bad-state burst length in packets).
    ///
    /// The bad state loses every packet; the good state's loss rate is set to
    /// a small residual (1 % of the target).  Stationary occupancy of the bad
    /// state is chosen so that the overall average equals `target`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ target < 1` and `burst_len ≥ 1`.
    pub fn with_average(target: f64, burst_len: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&target),
            "target loss must be in [0, 1)"
        );
        assert!(burst_len >= 1.0, "burst length must be at least one packet");
        let loss_bad = 1.0;
        let loss_good = (target * 0.01).min(0.9);
        // Stationary bad-state probability π_b solves
        //   π_b · loss_bad + (1 − π_b) · loss_good = target.
        let pi_b = ((target - loss_good) / (loss_bad - loss_good)).clamp(0.0, 0.999);
        let p_bad_to_good = 1.0 / burst_len;
        // π_b = p_gb / (p_gb + p_bg)  ⇒  p_gb = π_b · p_bg / (1 − π_b).
        let p_good_to_bad = (pi_b * p_bad_to_good / (1.0 - pi_b)).min(1.0);
        GilbertElliottLoss::new(p_good_to_bad, p_bad_to_good, loss_good, loss_bad)
    }

    /// True if the process is currently in the bad (bursty-loss) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad_state
    }
}

impl LossModel for GilbertElliottLoss {
    fn is_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let loss_p = if self.in_bad_state {
            self.loss_bad
        } else {
            self.loss_good
        };
        let lost = rng.gen::<f64>() < loss_p;
        // State transition after the packet.
        let flip_p = if self.in_bad_state {
            self.p_bad_to_good
        } else {
            self.p_good_to_bad
        };
        if rng.gen::<f64>() < flip_p {
            self.in_bad_state = !self.in_bad_state;
        }
        lost
    }

    fn average_loss_rate(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            return self.loss_good;
        }
        let pi_b = self.p_good_to_bad / denom;
        pi_b * self.loss_bad + (1.0 - pi_b) * self.loss_good
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn empirical_rate<M: LossModel>(model: &mut M, n: usize, seed: u64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lost = (0..n).filter(|_| model.is_lost(&mut rng)).count();
        lost as f64 / n as f64
    }

    #[test]
    fn bernoulli_matches_target_rate() {
        for p in [0.0, 0.01, 0.1, 0.5] {
            let mut m = BernoulliLoss::new(p);
            let rate = empirical_rate(&mut m, 200_000, 1);
            assert!((rate - p).abs() < 0.01, "p = {p}, measured {rate}");
            assert_eq!(m.average_loss_rate(), p);
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn bernoulli_rejects_certain_loss() {
        let _ = BernoulliLoss::new(1.0);
    }

    #[test]
    fn gilbert_elliott_hits_target_average() {
        for target in [0.05, 0.18, 0.4] {
            let mut m = GilbertElliottLoss::with_average(target, 8.0);
            assert!((m.average_loss_rate() - target).abs() < 0.01);
            let rate = empirical_rate(&mut m, 400_000, 2);
            assert!(
                (rate - target).abs() < 0.02,
                "target {target}, measured {rate}"
            );
        }
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Count the average run length of consecutive losses; it must be
        // clearly longer than the Bernoulli model's at the same average rate.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ge = GilbertElliottLoss::with_average(0.2, 10.0);
        let mut bursts = Vec::new();
        let mut current = 0usize;
        for _ in 0..200_000 {
            if ge.is_lost(&mut rng) {
                current += 1;
            } else if current > 0 {
                bursts.push(current);
                current = 0;
            }
        }
        let mean_burst: f64 = bursts.iter().sum::<usize>() as f64 / bursts.len() as f64;
        // Bernoulli at p = 0.2 has mean burst length 1 / (1 − p) = 1.25.
        assert!(mean_burst > 3.0, "mean burst {mean_burst} not bursty");
    }

    #[test]
    fn gilbert_elliott_parameter_validation() {
        assert!(std::panic::catch_unwind(|| GilbertElliottLoss::new(1.5, 0.1, 0.0, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| GilbertElliottLoss::new(0.1, 0.1, 1.0, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| GilbertElliottLoss::with_average(0.2, 0.5)).is_err());
    }
}
