//! The hostile-channel robustness experiment: adaptive layered receivers
//! downloading through Gilbert–Elliott bursty loss, reordering and
//! duplication, with the join/leave behaviour of the `LayerController`
//! under scrutiny.
//!
//! The paper's congestion-control claims (Section 7.1) are argued on clean
//! or independently-lossy paths; the wireless fountain-code follow-ups
//! (PAPERS.md) show bursty channels are where such schemes oscillate.  This
//! module runs the *real* `df_proto::ClientSession` — the same code path the
//! UDP tests drive — behind a [`HostileChannel`](crate::channel::HostileChannel)
//! and reports everything a
//! stability assertion needs: completion, the full join/leave event trace,
//! the channel's burst-episode count, and the client's bounded-memory
//! counters.

use crate::channel::{ChannelStats, HostileChannelBuilder};
use df_proto::{ClientEvent, ClientSession, ServerSession, SessionConfig, SimMulticast, Transport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::loss::GilbertElliottLoss;

/// Parameters of one [`hostile_channel_experiment`] run.
#[derive(Debug, Clone)]
pub struct HostileConfig {
    /// Source file length in bytes.
    pub file_len: usize,
    /// Multicast layers of the carousel.
    pub layers: usize,
    /// Rounds between synchronisation points.
    pub sp_interval: usize,
    /// Double-rate burst rounds before each SP.
    pub burst_rounds: usize,
    /// Loss probability in the Gilbert–Elliott bad state (the paper's
    /// hostile deployments see up to ~50 %).
    pub loss_bad: f64,
    /// Mean sojourn of the bad state, in packets.
    pub burst_len: f64,
    /// Stationary probability of being in the bad state.
    pub bad_occupancy: f64,
    /// Reordering probability per datagram.
    pub reorder_p: f64,
    /// Maximum reorder displacement, in arrivals.
    pub reorder_displacement: u64,
    /// Duplication probability per datagram.
    pub duplicate_p: f64,
    /// Uniform delay jitter, in arrivals.
    pub jitter: u64,
    /// Seed for the channel, the payload and the code.
    pub seed: u64,
    /// Round horizon after which the run is abandoned.
    pub max_rounds: usize,
}

impl Default for HostileConfig {
    fn default() -> Self {
        HostileConfig {
            file_len: 120_000,
            layers: 5,
            sp_interval: 2,
            burst_rounds: 1,
            loss_bad: 0.3,
            burst_len: 8.0,
            bad_occupancy: 0.15,
            reorder_p: 0.05,
            reorder_displacement: 8,
            duplicate_p: 0.02,
            jitter: 2,
            seed: 1,
            max_rounds: 600,
        }
    }
}

impl HostileConfig {
    /// The Gilbert–Elliott process these parameters describe: bad-state
    /// sojourn `burst_len`, stationary bad occupancy `bad_occupancy`, and a
    /// 0.5 % residual loss in the good state.
    fn gilbert_elliott(&self) -> GilbertElliottLoss {
        let p_bad_to_good = 1.0 / self.burst_len;
        let p_good_to_bad =
            (self.bad_occupancy * p_bad_to_good / (1.0 - self.bad_occupancy)).min(1.0);
        GilbertElliottLoss::new(p_good_to_bad, p_bad_to_good, 0.005, self.loss_bad)
    }

    /// Long-run average loss rate of the configured channel.
    pub fn average_loss(&self) -> f64 {
        use crate::loss::LossModel;
        self.gilbert_elliott().average_loss_rate()
    }
}

/// One subscription change observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionEvent {
    /// The receiver joined `group` at the given server round.
    Join {
        /// Round the join was executed in.
        round: usize,
        /// The joined group.
        group: u32,
    },
    /// The receiver left `group` at the given server round.
    Leave {
        /// Round the leave was executed in.
        round: usize,
        /// The left group.
        group: u32,
    },
}

/// Outcome of one [`hostile_channel_experiment`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct HostileOutcome {
    /// Bad-state loss rate of the channel.
    pub loss_bad: f64,
    /// Mean bad-state burst length, in packets.
    pub burst_len: f64,
    /// Whether the download completed within the horizon.
    pub complete: bool,
    /// Rounds until completion (the horizon if it never completed).
    pub rounds: usize,
    /// Cumulative subscription level at the end of the run.
    pub final_level: usize,
    /// Datagrams the client received (after channel loss, incl. duplicates).
    pub received: usize,
    /// Distinct encoding packets among them.
    pub distinct: usize,
    /// Source packets in the file.
    pub k: usize,
    /// Packets refused by the client's buffer cap (0 for an honest server).
    pub rejected: u64,
    /// The full join/leave trace, in execution order.
    pub events: Vec<SubscriptionEvent>,
    /// Completed good→bad transitions of the loss process.
    pub burst_episodes: u64,
    /// The channel decorator's own counters.
    pub channel: ChannelStats,
}

impl HostileOutcome {
    /// Number of Leave events in the trace.
    pub fn leaves(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SubscriptionEvent::Leave { .. }))
            .count()
    }

    /// Number of Join events in the trace.
    pub fn joins(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SubscriptionEvent::Join { .. }))
            .count()
    }

    /// Reception efficiency `η = k / received`.
    pub fn reception_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.k as f64 / self.received as f64
        }
    }
}

/// Run one adaptive layered receiver against a carousel through a hostile
/// channel (Gilbert–Elliott loss, reordering, duplication, jitter per
/// `cfg`) and report the complete behavioural trace.
///
/// The run is a pure function of `cfg` — the channel, the payload and the
/// code all derive from `cfg.seed` — which is what the trace-replay
/// determinism tests lean on.
///
/// # Panics
///
/// Panics on a degenerate configuration (empty file, invalid layered
/// cadence) — this is an experiment driver, not a validation surface.
pub fn hostile_channel_experiment(cfg: &HostileConfig) -> HostileOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let data: Vec<u8> = (0..cfg.file_len).map(|_| rng.gen()).collect();
    let mut server = ServerSession::new(
        &data,
        SessionConfig {
            layers: cfg.layers,
            code_seed: cfg.seed,
            sp_interval: cfg.sp_interval,
            burst_rounds: cfg.burst_rounds,
            ..SessionConfig::default()
        },
    )
    .expect("valid layered session configuration");
    let net = SimMulticast::new(cfg.seed);
    let mut tx = net.endpoint(0.0);
    let mut rx = HostileChannelBuilder::new(cfg.seed ^ 0x686f_7374)
        .stage(Box::new(crate::channel::GilbertElliottChannel::new(
            cfg.gilbert_elliott(),
        )))
        .reorder(cfg.reorder_p, cfg.reorder_displacement)
        .duplicate(cfg.duplicate_p)
        .jitter(cfg.jitter)
        .wrap(net.endpoint(0.0));
    let mut client =
        ClientSession::new(server.control_info().clone()).expect("server-produced control info");
    for group in client.subscribed_groups() {
        rx.join(group).expect("sim join");
    }

    let mut events = Vec::new();
    let mut finished_at = None;
    'run: for round in 0..cfg.max_rounds {
        server.send_round(&mut tx);
        while let Some((_group, datagram)) = rx.recv() {
            match client.handle_datagram(datagram) {
                ClientEvent::Join { group } => {
                    rx.join(group).expect("sim join");
                    events.push(SubscriptionEvent::Join { round, group });
                }
                ClientEvent::Leave { group } => {
                    rx.leave(group);
                    events.push(SubscriptionEvent::Leave { round, group });
                }
                ClientEvent::Complete => {
                    finished_at = Some(round + 1);
                    break 'run;
                }
                _ => {}
            }
        }
    }

    let stats = client.stats();
    HostileOutcome {
        loss_bad: cfg.loss_bad,
        burst_len: cfg.burst_len,
        complete: finished_at.is_some(),
        rounds: finished_at.unwrap_or(cfg.max_rounds),
        final_level: client.subscription_level().unwrap_or(0),
        received: stats.received(),
        distinct: stats.distinct(),
        k: stats.k(),
        rejected: stats.rejected(),
        events,
        burst_episodes: rx.burst_episodes(),
        channel: rx.stats(),
    }
}

/// Sweep `loss_bads × burst_lens` with otherwise-default parameters.  Each
/// cell gets its own deterministic seed derived from `seed`.
pub fn hostile_sweep(loss_bads: &[f64], burst_lens: &[f64], seed: u64) -> Vec<HostileOutcome> {
    let mut out = Vec::with_capacity(loss_bads.len() * burst_lens.len());
    for (i, &loss_bad) in loss_bads.iter().enumerate() {
        for (j, &burst_len) in burst_lens.iter().enumerate() {
            let cfg = HostileConfig {
                loss_bad,
                burst_len,
                seed: seed.wrapping_add((i * burst_lens.len() + j) as u64),
                ..HostileConfig::default()
            };
            out.push(hostile_channel_experiment(&cfg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_hostile_download_completes_and_stays_within_its_memory_bound() {
        let out = hostile_channel_experiment(&HostileConfig::default());
        assert!(out.complete, "{out:?}");
        assert_eq!(out.rejected, 0, "an honest carousel never hits the cap");
        assert!(
            out.burst_episodes > 0,
            "premise: the channel actually bursts"
        );
        assert!(out.channel.dropped > 0 && out.channel.duplicated > 0);
        assert!(out.reception_efficiency() > 0.2);
    }

    #[test]
    fn the_run_is_a_pure_function_of_its_config() {
        let cfg = HostileConfig {
            loss_bad: 0.5,
            seed: 77,
            ..HostileConfig::default()
        };
        let a = hostile_channel_experiment(&cfg);
        let b = hostile_channel_experiment(&cfg);
        assert_eq!(a, b, "identical seed must yield an identical trace");
    }

    #[test]
    fn leaves_stay_bounded_by_burst_episodes_across_the_sweep() {
        for out in hostile_sweep(&[0.1, 0.3, 0.5], &[4.0, 16.0], 5) {
            assert!(out.complete, "{out:?}");
            assert!(
                out.leaves() as u64 <= out.burst_episodes,
                "oscillation: {} leaves for {} burst episodes ({out:?})",
                out.leaves(),
                out.burst_episodes
            );
        }
    }
}
