//! Carousel receivers: simulate one client listening to the encoded stream
//! through a lossy channel until it can reconstruct the file.
//!
//! This is the per-receiver primitive behind Figures 4, 5 and 6: the server
//! carousels through the encoding (a fresh random permutation per cycle for
//! Tornado codes, the round-robin interleaved order for the blocked
//! Reed–Solomon baseline), the receiver joins at a time of its choosing,
//! loses packets according to its [`LossModel`], and stops as soon as its
//! decoder reports completion.  The outcome records exactly the counters the
//! paper's efficiency definitions need.

use crate::interleaved::InterleavedCode;
use crate::loss::LossModel;
use crate::trace::ReceiverTrace;
use df_core::{Carousel, PacketStream, TornadoCode};
use rand::Rng;

/// What happened to one simulated receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiverOutcome {
    /// Packets received from the channel (surviving loss), including
    /// duplicates, until reconstruction.
    pub received: usize,
    /// Distinct encoding packets among them.
    pub distinct: usize,
    /// Packets the sender transmitted while this receiver was listening.
    pub transmitted: usize,
    /// Number of source packets in the file.
    pub k: usize,
}

impl ReceiverOutcome {
    /// Reception efficiency `η = k / received` (Section 6).
    pub fn reception_efficiency(&self) -> f64 {
        if self.received == 0 {
            return 0.0;
        }
        self.k as f64 / self.received as f64
    }

    /// Coding efficiency `η_c = k / distinct` (Section 7.3).
    pub fn coding_efficiency(&self) -> f64 {
        if self.distinct == 0 {
            return 0.0;
        }
        self.k as f64 / self.distinct as f64
    }

    /// Distinctness efficiency `η_d = distinct / received` (Section 7.3).
    pub fn distinctness_efficiency(&self) -> f64 {
        if self.received == 0 {
            return 0.0;
        }
        self.distinct as f64 / self.received as f64
    }

    /// Reception overhead `ε = received / k − 1`.
    pub fn reception_overhead(&self) -> f64 {
        self.received as f64 / self.k as f64 - 1.0
    }
}

/// Simulate one receiver downloading a Tornado-encoded carousel.
///
/// The receiver joins at an arbitrary point (a fresh carousel permutation
/// seeded from `rng`), loses each transmitted packet according to `loss`, and
/// feeds surviving packets to an index-level decoder until the source is
/// reconstructible.
pub fn simulate_tornado_receiver<L, R>(
    code: &TornadoCode,
    loss: &mut L,
    rng: &mut R,
) -> ReceiverOutcome
where
    L: LossModel,
    R: Rng + ?Sized,
{
    let mut carousel = Carousel::new(code.n(), rng.gen());
    let mut decoder = code.symbolic_decoder();
    let mut seen = vec![false; code.n()];
    let mut received = 0usize;
    let mut distinct = 0usize;
    let mut transmitted = 0usize;
    loop {
        let idx = carousel.next_index();
        transmitted += 1;
        if loss.is_lost(rng) {
            continue;
        }
        received += 1;
        if !seen[idx] {
            seen[idx] = true;
            distinct += 1;
        }
        if decoder
            .add_packet(idx, df_core::Mark)
            .expect("index in range")
            == df_core::AddOutcome::Complete
        {
            break;
        }
    }
    ReceiverOutcome {
        received,
        distinct,
        transmitted,
        k: code.k(),
    }
}

/// Simulate one receiver downloading an interleaved-Reed–Solomon carousel.
pub fn simulate_interleaved_receiver<L, R>(
    code: &InterleavedCode,
    loss: &mut L,
    rng: &mut R,
) -> ReceiverOutcome
where
    L: LossModel,
    R: Rng + ?Sized,
{
    let order = code.transmission_order();
    // Join at a uniformly random point of the carousel cycle.
    let start = rng.gen_range(0..order.len());
    let mut tracker = code.tracker();
    let mut seen = vec![false; code.n()];
    let mut received = 0usize;
    let mut distinct = 0usize;
    let mut transmitted = 0usize;
    for step in 0.. {
        let idx = order[(start + step) % order.len()];
        transmitted += 1;
        if loss.is_lost(rng) {
            continue;
        }
        received += 1;
        if !seen[idx] {
            seen[idx] = true;
            distinct += 1;
        }
        if tracker.receive(idx) {
            break;
        }
    }
    ReceiverOutcome {
        received,
        distinct,
        transmitted,
        k: code.total_source(),
    }
}

/// A [`LossModel`] that replays a recorded (or synthetic) receiver trace from
/// a fixed starting offset, wrapping around — the sampling procedure the
/// paper uses for its MBone traces ("choosing a random initial point within
/// each trace", Section 6.4).
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a ReceiverTrace,
    pos: usize,
}

impl<'a> TraceReplay<'a> {
    /// Replay `trace` starting from `offset`.
    pub fn new(trace: &'a ReceiverTrace, offset: usize) -> Self {
        TraceReplay { trace, pos: offset }
    }
}

impl LossModel for TraceReplay<'_> {
    fn is_lost<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> bool {
        let lost = self.trace.is_lost(self.pos);
        self.pos += 1;
        lost
    }

    fn average_loss_rate(&self) -> f64 {
        self.trace.loss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::BernoulliLoss;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn lossless_tornado_receiver_needs_about_k_packets() {
        let code = TornadoCode::new_a(500, 1).unwrap();
        let mut loss = BernoulliLoss::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = simulate_tornado_receiver(&code, &mut loss, &mut rng);
        assert_eq!(out.received, out.transmitted);
        assert_eq!(out.received, out.distinct, "first cycle has no duplicates");
        assert!(out.received >= 500);
        assert!(
            out.reception_efficiency() > 0.7,
            "η = {}",
            out.reception_efficiency()
        );
        // η = η_c · η_d must hold exactly.
        let eta = out.reception_efficiency();
        assert!((eta - out.coding_efficiency() * out.distinctness_efficiency()).abs() < 1e-12);
    }

    #[test]
    fn lossless_interleaved_receiver_is_perfectly_efficient() {
        // With no loss and round-robin transmission, a receiver that joins at
        // a cycle boundary or anywhere else needs exactly k packets per block
        // as they come around: every received packet is useful until its block
        // fills, and blocks fill at the same rate.  Efficiency is 1 up to the
        // final partial round.
        let code = InterleavedCode::new(200, 20, 2.0).unwrap();
        let mut loss = BernoulliLoss::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let out = simulate_interleaved_receiver(&code, &mut loss, &mut rng);
        assert!(
            out.reception_efficiency() > 0.95,
            "η = {}",
            out.reception_efficiency()
        );
    }

    #[test]
    fn interleaved_efficiency_degrades_with_loss_more_than_tornado() {
        // The qualitative claim of Figure 4 at p = 0.5: Tornado keeps its
        // efficiency, interleaving with small blocks pays the coupon-collector
        // penalty.
        let k = 1000;
        let tornado = TornadoCode::new_a(k, 3).unwrap();
        let interleaved = InterleavedCode::new(k, 20, 2.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trials = 5;
        let mut eta_t = 0.0;
        let mut eta_i = 0.0;
        for _ in 0..trials {
            let mut loss = BernoulliLoss::new(0.5);
            eta_t +=
                simulate_tornado_receiver(&tornado, &mut loss, &mut rng).reception_efficiency();
            let mut loss = BernoulliLoss::new(0.5);
            eta_i += simulate_interleaved_receiver(&interleaved, &mut loss, &mut rng)
                .reception_efficiency();
        }
        eta_t /= trials as f64;
        eta_i /= trials as f64;
        assert!(
            eta_t > eta_i + 0.05,
            "Tornado η = {eta_t} should clearly beat interleaved η = {eta_i} at 50 % loss"
        );
    }

    #[test]
    fn trace_replay_reproduces_the_trace() {
        let trace = ReceiverTrace::from_losses(vec![true, false, true, false]);
        let mut replay = TraceReplay::new(&trace, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let got: Vec<bool> = (0..6).map(|_| replay.is_lost(&mut rng)).collect();
        assert_eq!(got, vec![false, true, false, true, false, true]);
        assert_eq!(replay.average_loss_rate(), 0.5);
    }

    #[test]
    fn heavy_loss_still_terminates() {
        let code = TornadoCode::new_a(200, 4).unwrap();
        let mut loss = BernoulliLoss::new(0.7);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let out = simulate_tornado_receiver(&code, &mut loss, &mut rng);
        assert!(out.received >= 200);
        assert!(out.transmitted > out.received);
        // At 70 % loss the receiver inevitably sees duplicates (the carousel
        // wraps), so distinctness efficiency drops below 1.
        assert!(out.distinctness_efficiency() <= 1.0);
    }
}
