//! # df-sim — loss models, the interleaved baseline and the paper's simulation study
//!
//! This crate reproduces the simulation apparatus of Section 6 of Byers,
//! Luby, Mitzenmacher & Rege (SIGCOMM '98):
//!
//! * [`loss`] — packet-loss models: independent (Bernoulli) loss, bursty
//!   Gilbert–Elliott loss, and synthetic MBone-like receiver traces standing
//!   in for the Yajnik/Kurose/Towsley traces used in Section 6.4 (the
//!   originals are not publicly archived; see DESIGN.md for the substitution).
//! * [`interleaved`] — the interleaved Reed–Solomon scheme of
//!   Nonnenmacher/Rizzo/Vicisano et al. that the paper compares against:
//!   split the file into blocks of `k` packets, stretch each block with an MDS
//!   code, and transmit one packet per block per round.
//! * [`receiver`] — carousel receivers: simulate a client joining the
//!   multicast at an arbitrary time, losing packets according to a loss model,
//!   and listening until its decoder (Tornado or interleaved) completes.
//! * [`experiment`] — the experiment drivers that regenerate Table 4 and
//!   Figures 4, 5 and 6.
//! * [`layered`] — the Figure 7-style layered congestion-control experiment:
//!   a heterogeneous bottleneck population running the real `df-proto`
//!   client sessions (receiver-driven join/leave) over `SimMulticast`.
//! * [`swarm`] — the driver-scale experiment: thousands of concurrent
//!   client sessions pumped through the sharded `df_proto::Driver`, from
//!   one event-loop thread up to a per-core shard sweep.
//! * [`channel`] — composable hostile-channel stages (Gilbert–Elliott
//!   bursty loss, bounded reordering, duplication, jitter) and the
//!   [`HostileChannel`] transport decorator that applies them to any
//!   `df_proto::Transport`.
//! * [`hostile`] — the robustness experiment: adaptive layered receivers
//!   downloading through hostile channels, sweeping Gilbert–Elliott
//!   parameters while asserting completion and join/leave stability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod experiment;
pub mod hostile;
pub mod interleaved;
pub mod layered;
pub mod loss;
pub mod rateless;
pub mod receiver;
pub mod swarm;
pub mod trace;

pub use channel::{
    ChannelModel, ChannelStats, DuplicateChannel, GilbertElliottChannel, HostileChannel,
    HostileChannelBuilder, JitterChannel, ReorderChannel,
};
pub use experiment::{
    file_size_experiment, receiver_scaling_experiment, speedup_table, trace_experiment,
    EfficiencyPoint, SpeedupRow,
};
pub use hostile::{
    hostile_channel_experiment, hostile_sweep, HostileConfig, HostileOutcome, SubscriptionEvent,
};
pub use interleaved::InterleavedCode;
pub use layered::{layered_population_experiment, LayeredOutcome};
pub use loss::{BernoulliLoss, GilbertElliottLoss, LossModel};
pub use rateless::{
    late_join_experiment, rateless_overhead_experiment, LateJoinOutcome, LateJoinReceiver,
    RatelessOverheadOutcome,
};
pub use receiver::{simulate_interleaved_receiver, simulate_tornado_receiver, ReceiverOutcome};
pub use swarm::{swarm_experiment, swarm_experiment_sharded, SwarmOutcome};
pub use trace::{ReceiverTrace, TraceSet};
