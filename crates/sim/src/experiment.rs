//! Experiment drivers that regenerate the paper's simulation results:
//! Table 4 (speedup of Tornado over comparable-efficiency interleaved codes),
//! Figure 4 (efficiency vs. number of receivers), Figure 5 (efficiency vs.
//! file size) and Figure 6 (efficiency on trace data).
//!
//! Every driver returns plain data rows so the `df-bench` harness can print
//! them in the paper's format and EXPERIMENTS.md can record them; nothing here
//! prints directly.

use crate::interleaved::InterleavedCode;
use crate::loss::BernoulliLoss;
use crate::receiver::{
    simulate_interleaved_receiver, simulate_tornado_receiver, ReceiverOutcome, TraceReplay,
};
use crate::trace::TraceSet;
use df_core::{TornadoCode, TornadoProfile, TORNADO_A};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Which transmission scheme a simulated receiver population uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Tornado-encoded carousel with the given profile.
    Tornado(TornadoProfile),
    /// Interleaved Reed–Solomon carousel with the given block size.
    Interleaved {
        /// Source packets per block (the paper uses 20 and 50).
        block_source: usize,
    },
}

impl Scheme {
    /// Short label used in tables and plots.
    pub fn label(&self) -> String {
        match self {
            Scheme::Tornado(p) => p.name.to_string(),
            Scheme::Interleaved { block_source } => format!("interleaved k={block_source}"),
        }
    }
}

/// One point of an efficiency curve.
#[derive(Debug, Clone, Serialize)]
pub struct EfficiencyPoint {
    /// Scheme label.
    pub scheme: String,
    /// X coordinate: number of receivers (Figure 4) or file size in KB
    /// (Figures 5 and 6).
    pub x: f64,
    /// Average reception efficiency over all receivers and trials.
    pub avg_efficiency: f64,
    /// Worst-case (minimum) reception efficiency over all receivers.
    pub min_efficiency: f64,
}

fn k_for_file_kb(file_kb: usize, packet_kb: usize) -> usize {
    (file_kb / packet_kb).max(1)
}

fn run_population<R: Rng + ?Sized>(
    scheme: &Scheme,
    k: usize,
    p_loss: f64,
    receivers: usize,
    rng: &mut R,
) -> Vec<ReceiverOutcome> {
    match scheme {
        Scheme::Tornado(profile) => {
            let code = TornadoCode::with_profile(k, *profile, 0xf0a5u64).expect("valid k");
            (0..receivers)
                .map(|_| {
                    let mut loss = BernoulliLoss::new(p_loss);
                    simulate_tornado_receiver(&code, &mut loss, rng)
                })
                .collect()
        }
        Scheme::Interleaved { block_source } => {
            let code = InterleavedCode::new(k, *block_source, 2.0).expect("valid parameters");
            (0..receivers)
                .map(|_| {
                    let mut loss = BernoulliLoss::new(p_loss);
                    simulate_interleaved_receiver(&code, &mut loss, rng)
                })
                .collect()
        }
    }
}

/// Figure 4: average and worst-case reception efficiency as the receiver
/// population grows, for a fixed file size and loss probability.
///
/// `trials` independent experiments are averaged for every population size
/// (the paper uses 100; the bench harness uses fewer for the largest
/// populations to keep runtimes reasonable and documents it).
pub fn receiver_scaling_experiment(
    file_kb: usize,
    packet_kb: usize,
    p_loss: f64,
    receiver_counts: &[usize],
    schemes: &[Scheme],
    trials: usize,
    seed: u64,
) -> Vec<EfficiencyPoint> {
    let k = k_for_file_kb(file_kb, packet_kb);
    let mut out = Vec::new();
    for scheme in schemes {
        for &receivers in receiver_counts {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ receivers as u64);
            let mut sum = 0.0;
            let mut count = 0usize;
            let mut worst = f64::INFINITY;
            for _ in 0..trials.max(1) {
                for o in run_population(scheme, k, p_loss, receivers, &mut rng) {
                    let eta = o.reception_efficiency();
                    sum += eta;
                    count += 1;
                    worst = worst.min(eta);
                }
            }
            out.push(EfficiencyPoint {
                scheme: scheme.label(),
                x: receivers as f64,
                avg_efficiency: sum / count as f64,
                min_efficiency: worst,
            });
        }
    }
    out
}

/// Figure 5: average and worst-case reception efficiency as the file size
/// grows, for a fixed receiver population and loss probability.
pub fn file_size_experiment(
    file_kbs: &[usize],
    packet_kb: usize,
    p_loss: f64,
    receivers: usize,
    schemes: &[Scheme],
    seed: u64,
) -> Vec<EfficiencyPoint> {
    let mut out = Vec::new();
    for scheme in schemes {
        for &file_kb in file_kbs {
            let k = k_for_file_kb(file_kb, packet_kb);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ file_kb as u64);
            let outcomes = run_population(scheme, k, p_loss, receivers, &mut rng);
            let sum: f64 = outcomes.iter().map(|o| o.reception_efficiency()).sum();
            let worst = outcomes
                .iter()
                .map(|o| o.reception_efficiency())
                .fold(f64::INFINITY, f64::min);
            out.push(EfficiencyPoint {
                scheme: scheme.label(),
                x: file_kb as f64,
                avg_efficiency: sum / outcomes.len() as f64,
                min_efficiency: worst,
            });
        }
    }
    out
}

/// Figure 6: average reception efficiency on (synthetic) MBone-like traces as
/// the file size grows.
pub fn trace_experiment(
    file_kbs: &[usize],
    packet_kb: usize,
    traces: &TraceSet,
    schemes: &[Scheme],
    seed: u64,
) -> Vec<EfficiencyPoint> {
    let mut out = Vec::new();
    for scheme in schemes {
        for &file_kb in file_kbs {
            let k = k_for_file_kb(file_kb, packet_kb);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ file_kb as u64);
            let mut sum = 0.0;
            let mut worst = f64::INFINITY;
            let mut count = 0usize;
            match scheme {
                Scheme::Tornado(profile) => {
                    let code = TornadoCode::with_profile(k, *profile, 0xf0a5u64).expect("valid k");
                    for trace in traces.traces() {
                        let offset = rng.gen_range(0..trace.len().max(1));
                        let mut loss = TraceReplay::new(trace, offset);
                        let o = simulate_tornado_receiver(&code, &mut loss, &mut rng);
                        sum += o.reception_efficiency();
                        worst = worst.min(o.reception_efficiency());
                        count += 1;
                    }
                }
                Scheme::Interleaved { block_source } => {
                    let code =
                        InterleavedCode::new(k, *block_source, 2.0).expect("valid parameters");
                    for trace in traces.traces() {
                        let offset = rng.gen_range(0..trace.len().max(1));
                        let mut loss = TraceReplay::new(trace, offset);
                        let o = simulate_interleaved_receiver(&code, &mut loss, &mut rng);
                        sum += o.reception_efficiency();
                        worst = worst.min(o.reception_efficiency());
                        count += 1;
                    }
                }
            }
            out.push(EfficiencyPoint {
                scheme: scheme.label(),
                x: file_kb as f64,
                avg_efficiency: sum / count as f64,
                min_efficiency: worst,
            });
        }
    }
    out
}

/// One row of Table 4: the decoding-time speedup of Tornado A over an
/// interleaved code whose reception overhead guarantee matches Tornado A's.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// File size in KB.
    pub file_kb: usize,
    /// Loss probability.
    pub p_loss: f64,
    /// Largest block count (smallest block size) for which the interleaved
    /// code still keeps the overhead guarantee.
    pub interleaved_blocks: usize,
    /// Block size (source packets) chosen for the interleaved code.
    pub interleaved_block_source: usize,
    /// Estimated interleaved decode time in seconds.
    pub interleaved_decode_s: f64,
    /// Measured Tornado decode time in seconds.
    pub tornado_decode_s: f64,
    /// Speedup factor (interleaved / Tornado).
    pub speedup: f64,
}

/// Table 4 methodology (Section 6.1): for each file size and loss rate, find
/// the smallest interleaved block size whose reception overhead stays below
/// `max_overhead` in at least `1 − failure_rate` of trials, estimate its
/// decode time from `per_block_decode_s(k)`, and compare with the measured
/// Tornado decode time `tornado_decode_s`.
#[allow(clippy::too_many_arguments)]
pub fn speedup_table(
    file_kb: usize,
    packet_kb: usize,
    p_loss: f64,
    max_overhead: f64,
    failure_rate: f64,
    trials: usize,
    per_block_decode_s: &dyn Fn(usize) -> f64,
    tornado_decode_s: f64,
    seed: u64,
) -> SpeedupRow {
    let total_k = k_for_file_kb(file_kb, packet_kb);
    // Candidate block sizes from large (few blocks) to small; the largest
    // admissible block count wins.  Block sizes are capped at 128 so the
    // per-block code stays within GF(2^8), as in the referenced
    // implementations.
    let mut best: Option<(usize, usize)> = None; // (blocks, block_source)
    let mut block_source = total_k.min(128);
    while block_source >= 4 {
        let code = InterleavedCode::new(total_k, block_source, 2.0).expect("valid parameters");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ block_source as u64);
        let mut failures = 0usize;
        for _ in 0..trials {
            let mut loss = BernoulliLoss::new(p_loss);
            let o = simulate_interleaved_receiver(&code, &mut loss, &mut rng);
            if o.reception_overhead() > max_overhead {
                failures += 1;
            }
        }
        let ok = (failures as f64) / (trials as f64) <= failure_rate;
        if ok {
            best = Some((code.num_blocks(), block_source));
            // Smaller blocks decode faster per block; keep shrinking while the
            // overhead guarantee holds.
            block_source /= 2;
        } else {
            break;
        }
    }
    let (blocks, block_source) = best.unwrap_or((1, total_k.min(128)));
    let interleaved_decode_s = blocks as f64 * per_block_decode_s(block_source);
    SpeedupRow {
        file_kb,
        p_loss,
        interleaved_blocks: blocks,
        interleaved_block_source: block_source,
        interleaved_decode_s,
        tornado_decode_s,
        speedup: if tornado_decode_s > 0.0 {
            interleaved_decode_s / tornado_decode_s
        } else {
            f64::INFINITY
        },
    }
}

/// The default scheme set used by Figures 4–6: Tornado A against interleaved
/// codes with block sizes 20 and 50.
pub fn default_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Tornado(TORNADO_A),
        Scheme::Interleaved { block_source: 50 },
        Scheme::Interleaved { block_source: 20 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_experiment_shows_tornado_winning_at_high_loss() {
        let points = receiver_scaling_experiment(250, 1, 0.5, &[1, 20], &default_schemes(), 2, 42);
        assert_eq!(points.len(), 6);
        let eta = |scheme: &str, x: f64| {
            points
                .iter()
                .find(|p| p.scheme == scheme && p.x == x)
                .map(|p| p.avg_efficiency)
                .unwrap()
        };
        assert!(eta("tornado-a", 20.0) > eta("interleaved k=20", 20.0));
        // Worst case can never beat the average.
        for p in &points {
            assert!(p.min_efficiency <= p.avg_efficiency + 1e-12);
        }
    }

    #[test]
    fn file_size_experiment_interleaved_degrades_with_size() {
        let schemes = vec![Scheme::Interleaved { block_source: 20 }];
        let points = file_size_experiment(&[100, 1000], 1, 0.5, 10, &schemes, 7);
        assert_eq!(points.len(), 2);
        // The coupon-collector effect: more blocks (larger file) means lower
        // efficiency at the same loss rate.
        assert!(points[0].avg_efficiency > points[1].avg_efficiency);
    }

    #[test]
    fn trace_experiment_produces_a_point_per_size_and_scheme() {
        let traces = TraceSet::synthetic(8, 5_000, 0.18, 1);
        let schemes = default_schemes();
        let points = trace_experiment(&[100, 250], 1, &traces, &schemes, 3);
        assert_eq!(points.len(), schemes.len() * 2);
        for p in &points {
            assert!(p.avg_efficiency > 0.0 && p.avg_efficiency <= 1.0);
        }
    }

    #[test]
    fn speedup_table_prefers_small_blocks_at_low_loss() {
        let row = speedup_table(
            250,
            1,
            0.01,
            0.2,
            0.01,
            20,
            &|k| (k * k) as f64 / 31_250.0,
            0.01,
            9,
        );
        assert!(row.interleaved_blocks >= 1);
        assert!(row.speedup > 0.0);
        // At 1 % loss an interleaved code can afford small blocks, so the
        // block size must have shrunk below the cap.
        assert!(row.interleaved_block_source < 128);
    }
}
