//! The driver-scale experiment: one [`df_proto::EventLoop`] on one thread
//! pumping a server carousel and an arbitrarily large population of
//! concurrent [`df_proto::ClientSession`]s over [`df_proto::SimMulticast`].
//!
//! The paper's server is a stateless carousel meant to feed *arbitrarily
//! many* heterogeneous receivers at once (Sections 3 and 7); the sans-I/O
//! session layer makes the per-receiver state a plain struct, so the only
//! scaling question left is whether the I/O driver can multiplex them — the
//! question this module answers with thousands of sessions in a single
//! loop.  It is also the operating point behind the `driver_throughput` row
//! of `repro bench-json` (aggregate client-side MB/s and completed
//! sessions/s across 100+ concurrent downloads on one thread).

use df_proto::{ClientSession, EventLoop, Pacing, ServerSession, SessionConfig, SimMulticast};
use std::time::{Duration, Instant};

/// Outcome of one [`swarm_experiment`] run.
#[derive(Debug, Clone)]
pub struct SwarmOutcome {
    /// Concurrent client sessions driven through the loop.
    pub clients: usize,
    /// How many completed their download within the step budget.
    pub completed: usize,
    /// Event-loop steps (deterministic ticks) executed.
    pub steps: usize,
    /// Datagrams emitted by the server slot.
    pub datagrams_sent: u64,
    /// Datagrams drained from client transports.
    pub datagrams_received: u64,
    /// Source bytes of the file each client reconstructs.
    pub file_len: usize,
    /// Wall-clock spent inside the event loop.
    pub elapsed: Duration,
}

impl SwarmOutcome {
    /// Aggregate goodput: source bytes delivered (completed clients ×
    /// file length) per wall-clock second, in MB/s.
    pub fn aggregate_mbps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        (self.completed * self.file_len) as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Completed downloads per wall-clock second.
    pub fn sessions_per_second(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Drive `clients` concurrent downloads of one `file_len`-byte file through
/// a single [`EventLoop`] (server slot included — the whole system is one
/// thread) and report completion counts and throughput.
///
/// Clients `i` with `i % 4 == 3` sit behind 20 % independent loss, the rest
/// are clean — enough heterogeneity that the carousel must keep cycling for
/// the tail while the bulk completes early, which is the scheduling pattern
/// a real deployment produces.  The run is deterministic for a given
/// (`seed`, population) pair: the loop is driven by [`EventLoop::step`],
/// which is wall-clock-free.
///
/// # Panics
///
/// Panics if the file cannot be encoded (degenerate `file_len`/
/// `packet_size`) — this is an experiment driver, not a validation surface.
pub fn swarm_experiment(
    file_len: usize,
    packet_size: usize,
    clients: usize,
    seed: u64,
    max_steps: usize,
) -> SwarmOutcome {
    let data: Vec<u8> = (0..file_len)
        .map(|i| ((i * 131 + seed as usize) % 251) as u8)
        .collect();
    let server = ServerSession::new(
        &data,
        SessionConfig {
            packet_size,
            code_seed: seed,
            ..SessionConfig::default()
        },
    )
    .expect("swarm server session encodes");
    let info = server.control_info().clone();
    let n = info.n;

    let net = SimMulticast::new(seed);
    let mut el: EventLoop<df_proto::SimEndpoint> = EventLoop::new();
    // A quarter round per step: several steps per carousel cycle, so the
    // loop's scheduling (tick, drain, repeat) is actually exercised rather
    // than every client completing inside a single monster tick.
    el.add_server_session(
        server,
        net.endpoint(0.0),
        Pacing::new(Duration::from_millis(1), n.div_ceil(4).max(1)),
    );
    let mut tokens = Vec::with_capacity(clients);
    for i in 0..clients {
        let loss = if i % 4 == 3 { 0.2 } else { 0.0 };
        let session = ClientSession::new(info.clone()).expect("server-produced control info");
        tokens.push(
            el.add_client(session, net.endpoint(loss))
                .expect("sim joins cannot fail"),
        );
    }

    let t0 = Instant::now();
    let mut steps = 0;
    while steps < max_steps && !el.all_clients_complete() {
        el.step();
        steps += 1;
    }
    let elapsed = t0.elapsed();

    let completed = el.completed_clients();
    for token in tokens {
        let client = el.client(token).expect("tokens stay valid");
        if client.is_complete() {
            debug_assert_eq!(client.file().unwrap(), &data[..]);
        }
    }
    let stats = el.stats();
    SwarmOutcome {
        clients,
        completed,
        steps,
        datagrams_sent: stats.datagrams_sent,
        datagrams_received: stats.datagrams_received,
        file_len,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_thousand_concurrent_sessions_complete_on_one_event_loop() {
        // The acceptance scenario: ≥1000 concurrent ClientSessions, one
        // EventLoop, one thread, every download completing and verifying.
        // Small per-client files keep the test fast; the point is session
        // *count*, not bytes.
        let outcome = swarm_experiment(10_000, 500, 1_000, 7, 400);
        assert_eq!(outcome.clients, 1_000);
        assert_eq!(
            outcome.completed, 1_000,
            "all 1000 sessions must complete: {outcome:?}"
        );
        assert!(
            outcome.steps < 400,
            "the loop must converge well inside the step budget"
        );
        // The lossy quarter of the population needs more rounds than the
        // clean bulk, so the carousel necessarily outlives the first
        // completions — receptions exceed one round per client.
        assert!(outcome.datagrams_received as usize > outcome.clients);
    }

    #[test]
    fn swarm_is_deterministic_per_seed() {
        let a = swarm_experiment(8_000, 500, 60, 11, 400);
        let b = swarm_experiment(8_000, 500, 60, 11, 400);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.datagrams_sent, b.datagrams_sent);
        assert_eq!(a.datagrams_received, b.datagrams_received);
    }

    #[test]
    fn lossy_clients_finish_later_but_finish() {
        let outcome = swarm_experiment(20_000, 500, 16, 3, 800);
        assert_eq!(outcome.completed, 16);
        assert!(outcome.aggregate_mbps() > 0.0);
        assert!(outcome.sessions_per_second() > 0.0);
    }
}
