//! The driver-scale experiment: a sharded [`df_proto::Driver`] pumping
//! server carousels and an arbitrarily large population of concurrent
//! [`df_proto::ClientSession`]s over [`df_proto::SimMulticast`].
//!
//! The paper's server is a stateless carousel meant to feed *arbitrarily
//! many* heterogeneous receivers at once (Sections 3 and 7); the sans-I/O
//! session layer makes the per-receiver state a plain struct, so the only
//! scaling questions left are whether the I/O driver can multiplex them —
//! answered with thousands of sessions on one loop — and whether it can
//! *shard* them across cores, answered by [`swarm_experiment_sharded`]:
//! the population is partitioned into per-shard sub-swarms (own channel,
//! own full-rate server replica, SO_REUSEPORT-style), so wall-clock
//! throughput scales with worker threads while every sub-population sees
//! the canonical carousel rate.  This is the operating point behind the
//! `driver_throughput` shard sweep of `repro bench-json` (aggregate
//! client-side MB/s and completed sessions/s across 100+ concurrent
//! downloads at 1/2/4 shards).

use df_proto::{
    ClientSession, DriverConfig, DriverEvent, Pacing, ServerSession, SessionConfig, SimEndpoint,
    SimMulticast,
};
use std::time::{Duration, Instant};

/// Outcome of one [`swarm_experiment`] run.
#[derive(Debug, Clone)]
pub struct SwarmOutcome {
    /// Concurrent client sessions driven through the driver.
    pub clients: usize,
    /// How many completed their download within the step budget.
    pub completed: usize,
    /// Driver steps (deterministic per-shard ticks) executed.
    pub steps: usize,
    /// Worker shards (event-loop threads) the population was split across.
    pub shards: usize,
    /// Datagrams emitted by all server slots.
    pub datagrams_sent: u64,
    /// Datagrams drained from client transports.
    pub datagrams_received: u64,
    /// Source bytes of the file each client reconstructs.
    pub file_len: usize,
    /// Wall-clock spent driving the download.
    pub elapsed: Duration,
}

impl SwarmOutcome {
    /// Aggregate goodput: source bytes delivered (completed clients ×
    /// file length) per wall-clock second, in MB/s.
    pub fn aggregate_mbps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        (self.completed * self.file_len) as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Completed downloads per wall-clock second.
    pub fn sessions_per_second(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Drive `clients` concurrent downloads of one `file_len`-byte file through
/// a single-shard [`df_proto::Driver`] and report completion counts and
/// throughput.  Equivalent to [`swarm_experiment_sharded`] with one shard.
///
/// Clients `i` with `i % 4 == 3` sit behind 20 % independent loss, the rest
/// are clean — enough heterogeneity that the carousel must keep cycling for
/// the tail while the bulk completes early, which is the scheduling pattern
/// a real deployment produces.  The run is deterministic for a given
/// (`seed`, population) pair: workers are driven in stepped mode
/// (wall-clock-free ticks).
///
/// # Panics
///
/// Panics if the file cannot be encoded (degenerate `file_len`/
/// `packet_size`) — this is an experiment driver, not a validation surface.
pub fn swarm_experiment(
    file_len: usize,
    packet_size: usize,
    clients: usize,
    seed: u64,
    max_steps: usize,
) -> SwarmOutcome {
    swarm_experiment_sharded(file_len, packet_size, clients, seed, max_steps, 1)
}

/// The multi-core variant of [`swarm_experiment`]: the population is
/// partitioned into `shards` independent sub-swarms, each on its own worker
/// thread with its own [`SimMulticast`] channel and its own *full-rate*
/// server replica (the SO_REUSEPORT shape: N fountains each feeding 1/N of
/// the receivers).  Every sub-population therefore experiences the same
/// carousel rate as the single-shard experiment and completes in the same
/// number of steps — what changes with the shard count is wall-clock, which
/// is exactly what the `driver_throughput` shard sweep measures.
///
/// Per-shard channels keep each worker's loss draws on its own seeded RNG
/// (`seed + shard`), so the run stays deterministic at any shard count.
///
/// # Panics
///
/// Panics if the file cannot be encoded, or (in debug builds) if any
/// completed download fails byte-for-byte verification.
pub fn swarm_experiment_sharded(
    file_len: usize,
    packet_size: usize,
    clients: usize,
    seed: u64,
    max_steps: usize,
    shards: usize,
) -> SwarmOutcome {
    let shards = shards.clamp(1, clients.max(1));
    let data: Vec<u8> = (0..file_len)
        .map(|i| ((i * 131 + seed as usize) % 251) as u8)
        .collect();
    let mut driver = DriverConfig::new()
        .shards(shards)
        .stepped(true)
        .build::<SimEndpoint>();
    let mut nets = Vec::with_capacity(shards);
    let mut infos = Vec::with_capacity(shards);
    for shard in 0..shards {
        let net = SimMulticast::new(seed.wrapping_add(shard as u64));
        let server = ServerSession::new(
            &data,
            SessionConfig {
                packet_size,
                code_seed: seed,
                ..SessionConfig::default()
            },
        )
        .expect("swarm server session encodes");
        let info = server.control_info().clone();
        // A quarter round per step: several steps per carousel cycle, so the
        // driver's scheduling (tick, drain, repeat) is actually exercised
        // rather than every client completing inside a single monster tick.
        let pacing = Pacing::new(Duration::from_millis(1), info.n.div_ceil(4).max(1));
        driver
            .add_server_session_on(shard, server, net.endpoint(0.0), pacing)
            .expect("shard workers are alive at setup");
        nets.push(net);
        infos.push(info);
    }
    for i in 0..clients {
        let shard = i % shards;
        let loss = if i % 4 == 3 { 0.2 } else { 0.0 };
        let session =
            ClientSession::new(infos[shard].clone()).expect("server-produced control info");
        driver
            .add_client_on(shard, session, nets[shard].endpoint(loss))
            .expect("sim adds cannot fail");
    }

    let t0 = Instant::now();
    let steps = driver
        .step_until_complete(max_steps)
        .expect("shard workers stay alive");
    let elapsed = t0.elapsed();

    let completed = driver.completed_clients();
    let stats = driver.stats();
    let report = driver.shutdown().expect("clean driver shutdown");
    if cfg!(debug_assertions) {
        for event in &report.events {
            if let DriverEvent::Completed { session, .. } = event {
                assert_eq!(
                    session.file().expect("completed session has its file"),
                    &data[..],
                    "sharded download corrupted"
                );
            }
        }
    }
    SwarmOutcome {
        clients,
        completed,
        steps,
        shards,
        datagrams_sent: stats.datagrams_sent,
        datagrams_received: stats.datagrams_received,
        file_len,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_thousand_concurrent_sessions_complete_on_one_event_loop() {
        // The acceptance scenario: ≥1000 concurrent ClientSessions, one
        // EventLoop, one thread, every download completing and verifying.
        // Small per-client files keep the test fast; the point is session
        // *count*, not bytes.
        let outcome = swarm_experiment(10_000, 500, 1_000, 7, 400);
        assert_eq!(outcome.clients, 1_000);
        assert_eq!(
            outcome.completed, 1_000,
            "all 1000 sessions must complete: {outcome:?}"
        );
        assert!(
            outcome.steps < 400,
            "the loop must converge well inside the step budget"
        );
        // The lossy quarter of the population needs more rounds than the
        // clean bulk, so the carousel necessarily outlives the first
        // completions — receptions exceed one round per client.
        assert!(outcome.datagrams_received as usize > outcome.clients);
    }

    #[test]
    fn swarm_is_deterministic_per_seed() {
        let a = swarm_experiment(8_000, 500, 60, 11, 400);
        let b = swarm_experiment(8_000, 500, 60, 11, 400);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.datagrams_sent, b.datagrams_sent);
        assert_eq!(a.datagrams_received, b.datagrams_received);
    }

    #[test]
    fn sharded_swarm_completes_and_is_deterministic() {
        // Per-shard channels give each worker its own seeded RNG, so even a
        // four-thread run is reproducible draw-for-draw.
        let a = swarm_experiment_sharded(8_000, 500, 64, 11, 800, 4);
        let b = swarm_experiment_sharded(8_000, 500, 64, 11, 800, 4);
        assert_eq!(a.shards, 4);
        assert_eq!(a.completed, 64, "sharded population stalled: {a:?}");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.datagrams_sent, b.datagrams_sent);
        assert_eq!(a.datagrams_received, b.datagrams_received);
    }

    #[test]
    fn lossy_clients_finish_later_but_finish() {
        let outcome = swarm_experiment(20_000, 500, 16, 3, 800);
        assert_eq!(outcome.completed, 16);
        assert!(outcome.aggregate_mbps() > 0.0);
        assert!(outcome.sessions_per_second() > 0.0);
    }
}
