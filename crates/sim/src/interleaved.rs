//! The interleaved Reed–Solomon scheme the paper compares against
//! (Section 6): partition the `K` file packets into `B = ⌈K/k⌉` blocks of at
//! most `k` packets, stretch every block to `c·k` packets with an MDS code,
//! and transmit round-robin — one packet from each block per round — so that
//! losses spread evenly across blocks.  A receiver reconstructs the file once
//! it holds `k` distinct packets *from every block*, which is where the
//! coupon-collector behaviour of Figures 4–6 comes from.

use df_gf::GF256;
use df_rs::{CauchyCode, ErasureCode, RsError};

/// An interleaved erasure code over a whole file.
#[derive(Debug, Clone)]
pub struct InterleavedCode {
    total_source: usize,
    block_source: usize,
    stretch: f64,
    /// Per block: (source packets, encoding packets).
    blocks: Vec<(usize, usize)>,
    /// Global encoding index of the first packet of each block.
    offsets: Vec<usize>,
    n: usize,
}

impl InterleavedCode {
    /// Create an interleaved code over `total_source` file packets with
    /// blocks of `block_source` packets and stretch factor `stretch`
    /// (the paper uses 2.0).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] if any parameter is degenerate
    /// or a block would exceed the GF(2^8) limit of 256 encoding packets
    /// (block sizes in the paper are 8–256, specifically 20 and 50 in the
    /// simulations).
    pub fn new(total_source: usize, block_source: usize, stretch: f64) -> Result<Self, RsError> {
        if total_source == 0 || block_source == 0 {
            return Err(RsError::InvalidParameters {
                reason: "file and block sizes must be positive".to_string(),
            });
        }
        if stretch < 1.0 {
            return Err(RsError::InvalidParameters {
                reason: format!("stretch factor {stretch} must be at least 1"),
            });
        }
        let per_block_n = (block_source as f64 * stretch).round() as usize;
        if per_block_n > 256 {
            return Err(RsError::InvalidParameters {
                reason: format!(
                    "block of {block_source} packets stretched to {per_block_n} exceeds GF(2^8)"
                ),
            });
        }
        let mut blocks = Vec::new();
        let mut offsets = Vec::new();
        let mut remaining = total_source;
        let mut offset = 0;
        while remaining > 0 {
            let k = remaining.min(block_source);
            let n = ((k as f64) * stretch).round() as usize;
            blocks.push((k, n));
            offsets.push(offset);
            offset += n;
            remaining -= k;
        }
        Ok(InterleavedCode {
            total_source,
            block_source,
            stretch,
            blocks,
            offsets,
            n: offset,
        })
    }

    /// Total number of source packets `K`.
    pub fn total_source(&self) -> usize {
        self.total_source
    }

    /// Nominal block size `k`.
    pub fn block_source(&self) -> usize {
        self.block_source
    }

    /// Number of blocks `B`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of encoding packets.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stretch factor.
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// Per-block `(source, encoding)` packet counts.
    pub fn blocks(&self) -> &[(usize, usize)] {
        &self.blocks
    }

    /// Map a global encoding index to `(block, index within block)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n()`.
    pub fn locate(&self, index: usize) -> (usize, usize) {
        assert!(index < self.n, "index {index} out of range");
        let block = match self.offsets.binary_search(&index) {
            Ok(b) => b,
            Err(ins) => ins - 1,
        };
        (block, index - self.offsets[block])
    }

    /// The interleaved transmission order: round `r` sends packet `r` of every
    /// block that has one, block by block.  The returned sequence covers the
    /// whole encoding exactly once; the carousel repeats it.
    pub fn transmission_order(&self) -> Vec<usize> {
        let max_n = self.blocks.iter().map(|&(_, n)| n).max().unwrap_or(0);
        let mut order = Vec::with_capacity(self.n);
        for round in 0..max_n {
            for (b, &(_, n)) in self.blocks.iter().enumerate() {
                if round < n {
                    order.push(self.offsets[b] + round);
                }
            }
        }
        order
    }

    /// Encode a whole file's source packets (length `total_source`, equal
    /// packet lengths) into the full interleaved encoding, block-major.
    ///
    /// # Errors
    ///
    /// Propagates block-codec errors for malformed input.
    pub fn encode(&self, source: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if source.len() != self.total_source {
            return Err(RsError::MalformedInput {
                reason: format!(
                    "expected {} source packets, got {}",
                    self.total_source,
                    source.len()
                ),
            });
        }
        let mut out = Vec::with_capacity(self.n);
        let mut cursor = 0;
        for &(k, n) in &self.blocks {
            let code = CauchyCode::<GF256>::new(k, n)?;
            let block_src = &source[cursor..cursor + k];
            out.extend(code.encode(block_src)?);
            cursor += k;
        }
        Ok(out)
    }

    /// Reconstruct the file from received `(global index, payload)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::NotEnoughPackets`] if any block has fewer than `k`
    /// distinct packets — the situation a carousel receiver keeps listening
    /// through.
    pub fn decode(&self, received: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>, RsError> {
        // Payloads are routed to their blocks by reference; the only copies
        // made are the ones landing in the decoded output.
        let mut per_block: Vec<Vec<(usize, &[u8])>> = vec![Vec::new(); self.blocks.len()];
        for (idx, payload) in received {
            let (b, within) = self.locate(*idx);
            per_block[b].push((within, payload.as_slice()));
        }
        let mut out = Vec::with_capacity(self.total_source);
        let mut block_out = Vec::new();
        for (b, &(k, n)) in self.blocks.iter().enumerate() {
            let code = CauchyCode::<GF256>::new(k, n)?;
            code.decode_into(&per_block[b], &mut block_out)?;
            out.append(&mut block_out);
        }
        Ok(out)
    }

    /// A lightweight reception tracker for simulations: records which encoding
    /// packets have been seen and reports completion as soon as every block
    /// holds `k` distinct packets (the MDS property makes payloads
    /// irrelevant to the decision).
    pub fn tracker(&self) -> InterleavedTracker<'_> {
        InterleavedTracker {
            code: self,
            seen: vec![false; self.n],
            have: vec![0; self.blocks.len()],
            complete_blocks: 0,
        }
    }
}

/// Index-level reception state for an [`InterleavedCode`] receiver.
#[derive(Debug, Clone)]
pub struct InterleavedTracker<'a> {
    code: &'a InterleavedCode,
    seen: Vec<bool>,
    have: Vec<usize>,
    complete_blocks: usize,
}

impl<'a> InterleavedTracker<'a> {
    /// Record the reception of encoding packet `index`; returns `true` once
    /// the whole file is reconstructible.
    pub fn receive(&mut self, index: usize) -> bool {
        if !self.seen[index] {
            self.seen[index] = true;
            let (b, _) = self.code.locate(index);
            self.have[b] += 1;
            if self.have[b] == self.code.blocks[b].0 {
                self.complete_blocks += 1;
            }
        }
        self.is_complete()
    }

    /// True once every block has at least `k` distinct packets.
    pub fn is_complete(&self) -> bool {
        self.complete_blocks == self.code.blocks.len()
    }

    /// Distinct packets received so far.
    pub fn distinct(&self) -> usize {
        self.have.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn block_partition_covers_the_file() {
        let code = InterleavedCode::new(1030, 50, 2.0).unwrap();
        assert_eq!(code.num_blocks(), 21);
        let total_k: usize = code.blocks().iter().map(|&(k, _)| k).sum();
        assert_eq!(total_k, 1030);
        assert_eq!(code.blocks().last().unwrap().0, 30);
        let total_n: usize = code.blocks().iter().map(|&(_, n)| n).sum();
        assert_eq!(total_n, code.n());
    }

    #[test]
    fn parameter_validation() {
        assert!(InterleavedCode::new(0, 50, 2.0).is_err());
        assert!(InterleavedCode::new(100, 0, 2.0).is_err());
        assert!(InterleavedCode::new(100, 50, 0.5).is_err());
        assert!(InterleavedCode::new(10_000, 200, 2.0).is_err());
        assert!(InterleavedCode::new(10_000, 128, 2.0).is_ok());
    }

    #[test]
    fn locate_inverts_offsets() {
        let code = InterleavedCode::new(203, 20, 2.0).unwrap();
        let mut counts = vec![0usize; code.num_blocks()];
        for i in 0..code.n() {
            let (b, w) = code.locate(i);
            assert!(w < code.blocks()[b].1);
            counts[b] += 1;
        }
        for (b, &(_, n)) in code.blocks().iter().enumerate() {
            assert_eq!(counts[b], n);
        }
    }

    #[test]
    fn transmission_order_is_a_permutation_and_interleaves() {
        let code = InterleavedCode::new(100, 20, 2.0).unwrap();
        let order = code.transmission_order();
        assert_eq!(order.len(), code.n());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), code.n());
        // The first B packets must come from B distinct blocks.
        let first_blocks: Vec<usize> = order[..code.num_blocks()]
            .iter()
            .map(|&i| code.locate(i).0)
            .collect();
        let mut uniq = first_blocks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), code.num_blocks());
    }

    #[test]
    fn encode_decode_roundtrip_with_losses() {
        let code = InterleavedCode::new(60, 20, 2.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let src: Vec<Vec<u8>> = (0..60)
            .map(|_| (0..32).map(|_| rng.gen()).collect())
            .collect();
        let enc = code.encode(&src).unwrap();
        assert_eq!(enc.len(), code.n());
        // Drop 40 % of packets uniformly; with stretch 2 and only 3 blocks of
        // 20 this occasionally fails, so keep drawing until a decodable set is
        // found and then verify the payload round-trip.
        let mut order: Vec<usize> = (0..code.n()).collect();
        order.shuffle(&mut rng);
        let keep = &order[..(code.n() * 3 / 4)];
        let mut tracker = code.tracker();
        for &i in keep {
            tracker.receive(i);
        }
        if tracker.is_complete() {
            let rx: Vec<(usize, Vec<u8>)> = keep.iter().map(|&i| (i, enc[i].clone())).collect();
            assert_eq!(code.decode(&rx).unwrap(), src);
        }
        // The full encoding always decodes.
        let all: Vec<(usize, Vec<u8>)> = enc.iter().cloned().enumerate().collect();
        assert_eq!(code.decode(&all).unwrap(), src);
    }

    #[test]
    fn tracker_requires_every_block() {
        let code = InterleavedCode::new(40, 20, 2.0).unwrap();
        let mut t = code.tracker();
        // Fill the first block completely; still incomplete.
        for i in 0..20 {
            assert!(!t.receive(i));
        }
        assert!(!t.is_complete());
        assert_eq!(t.distinct(), 20);
        // Duplicates do not help.
        assert!(!t.receive(0));
        assert_eq!(t.distinct(), 20);
        // Fill the second block from its redundant half.
        for i in 0..20 {
            let done = t.receive(code.n() - 1 - i);
            assert_eq!(done, i == 19);
        }
        assert!(t.is_complete());
    }

    #[test]
    fn decode_reports_missing_block() {
        let code = InterleavedCode::new(40, 20, 2.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let src: Vec<Vec<u8>> = (0..40)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();
        let enc = code.encode(&src).unwrap();
        // All of block 0, nothing of block 1.
        let rx: Vec<(usize, Vec<u8>)> = (0..40).map(|i| (i, enc[i].clone())).collect();
        assert!(matches!(
            code.decode(&rx),
            Err(RsError::NotEnoughPackets { .. })
        ));
    }
}
