//! Composable hostile-channel models and the [`HostileChannel`] transport
//! decorator.
//!
//! The paper's target deployments — satellite feeds, wireless last hops,
//! congested multicast trees — do not lose packets independently: loss comes
//! in bursts, datagrams are reordered and occasionally duplicated, and
//! delivery jitters.  The wireless fountain-code studies (PAPERS.md) show
//! these are exactly the conditions under which reception-efficiency and
//! congestion-control claims must be re-checked, so this module provides the
//! apparatus: small composable [`ChannelModel`] stages (Gilbert–Elliott
//! bursty loss, bounded-displacement reordering, duplication, delay jitter)
//! and a [`HostileChannel`] decorator that applies a pipeline of them to any
//! [`Transport`]'s receive path.
//!
//! ## The delivery-fate representation
//!
//! A stage transforms the *fate* of one arriving datagram: a vector of
//! displacement offsets, one entry per copy that will be delivered, where an
//! offset of `d` means "release this copy after `d` further arrivals".  An
//! empty vector means the datagram is lost.  The representation composes:
//! loss stages clear the vector, duplication pushes entries, reordering and
//! jitter add to them — and any stage order is meaningful.
//!
//! ## The packet clock
//!
//! [`HostileChannel`] is deliberately wall-clock-free so simulations stay
//! deterministic: its clock advances by one per datagram pulled off the
//! inner transport, and a displaced copy is released once the clock passes
//! its due time.  A displaced packet therefore needs further traffic to
//! flush it out — which the paper's endless carousel guarantees — and a
//! displacement of `d` reorders the copy across at most `d` later arrivals,
//! the "bounded displacement" contract the `LayerController` accounting is
//! hardened against.

use bytes::Bytes;
use df_proto::{Readiness, Transport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::loss::{GilbertElliottLoss, LossModel};

/// One composable stage of a hostile channel.
///
/// Stages see every datagram the inner transport delivers, in arrival order,
/// and rewrite its delivery fate (see the module docs for the offset
/// representation).  Implementations advance their internal process once per
/// call, whether or not an earlier stage already dropped the datagram — a
/// Gilbert–Elliott state machine keeps burning through its sojourn times
/// even while an upstream stage is eating the traffic.
pub trait ChannelModel: std::fmt::Debug {
    /// Rewrite the delivery fate of the next arriving datagram.
    ///
    /// `deliveries` holds one displacement offset per copy to deliver and
    /// arrives as `[0]` (deliver one copy, in order) from the decorator;
    /// clear it to drop the datagram, push to duplicate, add to displace.
    fn transform(&mut self, rng: &mut ChaCha8Rng, deliveries: &mut Vec<u64>);

    /// Completed good→bad transitions of a bursty-loss stage, if this stage
    /// models one; `0` otherwise.  [`HostileChannel::burst_episodes`] sums
    /// this across the pipeline so experiments can assert "at most one
    /// layer shed per loss burst".
    fn burst_episodes(&self) -> u64 {
        0
    }
}

/// Gilbert–Elliott two-state bursty loss as a channel stage, wrapping the
/// [`GilbertElliottLoss`] process of the Section 6 simulations.
#[derive(Debug, Clone)]
pub struct GilbertElliottChannel {
    loss: GilbertElliottLoss,
    episodes: u64,
}

impl GilbertElliottChannel {
    /// Wrap an explicit Gilbert–Elliott process.
    pub fn new(loss: GilbertElliottLoss) -> Self {
        GilbertElliottChannel { loss, episodes: 0 }
    }

    /// A stage calibrated to an average loss `target` with mean bad-state
    /// burst length `burst_len` (see [`GilbertElliottLoss::with_average`]).
    pub fn with_average(target: f64, burst_len: f64) -> Self {
        GilbertElliottChannel::new(GilbertElliottLoss::with_average(target, burst_len))
    }
}

impl ChannelModel for GilbertElliottChannel {
    fn transform(&mut self, rng: &mut ChaCha8Rng, deliveries: &mut Vec<u64>) {
        let was_bad = self.loss.in_bad_state();
        let lost = self.loss.is_lost(rng);
        if !was_bad && self.loss.in_bad_state() {
            self.episodes += 1;
        }
        if lost {
            deliveries.clear();
        }
    }

    fn burst_episodes(&self) -> u64 {
        self.episodes
    }
}

/// Packet reordering with bounded displacement: with probability `p` a
/// datagram is held back and re-inserted up to `max_displacement` arrivals
/// later.
#[derive(Debug, Clone, Copy)]
pub struct ReorderChannel {
    p: f64,
    max_displacement: u64,
}

impl ReorderChannel {
    /// Reorder each datagram with probability `p`, displacing it by
    /// `1..=max_displacement` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `max_displacement` is zero.
    pub fn new(p: f64, max_displacement: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        assert!(max_displacement >= 1, "a reorder must displace");
        ReorderChannel {
            p,
            max_displacement,
        }
    }
}

impl ChannelModel for ReorderChannel {
    fn transform(&mut self, rng: &mut ChaCha8Rng, deliveries: &mut Vec<u64>) {
        use rand::Rng;
        for d in deliveries.iter_mut() {
            if rng.gen_bool(self.p) {
                *d += rng.gen_range(1..=self.max_displacement);
            }
        }
    }
}

/// Datagram duplication: with probability `p` one extra copy is delivered
/// immediately after the original.
#[derive(Debug, Clone, Copy)]
pub struct DuplicateChannel {
    p: f64,
}

impl DuplicateChannel {
    /// Duplicate each surviving datagram with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        DuplicateChannel { p }
    }
}

impl ChannelModel for DuplicateChannel {
    fn transform(&mut self, rng: &mut ChaCha8Rng, deliveries: &mut Vec<u64>) {
        use rand::Rng;
        if !deliveries.is_empty() && rng.gen_bool(self.p) {
            // Duplicate the first surviving copy; the (due, seq) tiebreak in
            // the decorator keeps the pair adjacent, like a duplicated
            // datagram on a real path.
            let copy = deliveries[0];
            deliveries.push(copy);
        }
    }
}

/// Uniform delay jitter: every copy is displaced by `0..=max` arrivals,
/// independently — mild, pervasive reordering as opposed to
/// [`ReorderChannel`]'s rare large displacements.
#[derive(Debug, Clone, Copy)]
pub struct JitterChannel {
    max: u64,
}

impl JitterChannel {
    /// Jitter each copy by up to `max` arrivals.
    pub fn new(max: u64) -> Self {
        JitterChannel { max }
    }
}

impl ChannelModel for JitterChannel {
    fn transform(&mut self, rng: &mut ChaCha8Rng, deliveries: &mut Vec<u64>) {
        use rand::Rng;
        if self.max == 0 {
            return;
        }
        for d in deliveries.iter_mut() {
            *d += rng.gen_range(0..=self.max);
        }
    }
}

/// Counters kept by a [`HostileChannel`], for experiment tables and test
/// assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Datagrams pulled off the inner transport.
    pub arrivals: u64,
    /// Datagrams whose pipeline fate came back empty.
    pub dropped: u64,
    /// Extra copies created by duplication stages.
    pub duplicated: u64,
    /// Copies enqueued with a nonzero displacement.
    pub displaced: u64,
    /// Copies actually handed to the caller.
    pub delivered: u64,
}

/// A [`Transport`] decorator that runs every received datagram through a
/// pipeline of [`ChannelModel`] stages — the hostile-channel counterpart of
/// the `ThrottledLink` bottleneck decorator.
///
/// Sends, joins, leaves and readiness pass through untouched: the decorator
/// models the receiver's downstream path.  Copies a stage displaces are held
/// in a pending queue keyed by the packet clock (see the module docs) and
/// released in `(due, arrival)` order, so an undisplaced stream comes out in
/// arrival order.
#[derive(Debug)]
pub struct HostileChannel<T: Transport> {
    inner: T,
    stages: Vec<Box<dyn ChannelModel>>,
    rng: ChaCha8Rng,
    /// Arrivals pulled off the inner transport so far — the packet clock.
    clock: u64,
    /// Monotone tiebreak so equal due times release in arrival order.
    seq: u64,
    pending: BinaryHeap<Reverse<PendingCopy>>,
    stats: ChannelStats,
}

#[derive(Debug)]
struct PendingCopy {
    due: u64,
    seq: u64,
    group: u32,
    datagram: Bytes,
}

impl PartialEq for PendingCopy {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for PendingCopy {}
impl PartialOrd for PendingCopy {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingCopy {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl<T: Transport> HostileChannel<T> {
    /// Wrap `inner`, passing every received datagram through `stages` in
    /// order.  `seed` drives all stage randomness, so a run is a pure
    /// function of `(seed, inner traffic)`.
    pub fn new(inner: T, seed: u64, stages: Vec<Box<dyn ChannelModel>>) -> Self {
        HostileChannel {
            inner,
            stages,
            rng: ChaCha8Rng::seed_from_u64(seed),
            clock: 0,
            seq: 0,
            pending: BinaryHeap::new(),
            stats: ChannelStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Completed good→bad transitions summed over every bursty-loss stage.
    pub fn burst_episodes(&self) -> u64 {
        self.stages.iter().map(|s| s.burst_episodes()).sum()
    }

    /// Copies currently held for later release.  Bounded by the pipeline's
    /// maximum displacement (every copy is due at most `max displacement`
    /// arrivals after it was enqueued).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwrap, discarding any copies still held for later release.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Advance the packet clock past every held copy so subsequent
    /// [`recv`](Transport::recv) calls release the whole backlog.  Finite
    /// feeds call this once the sender is done; the endless carousel never
    /// needs it because fresh arrivals keep the clock moving.
    pub fn flush(&mut self) {
        self.ingest();
        if let Some(max_due) = self.pending.iter().map(|Reverse(c)| c.due).max() {
            self.clock = self.clock.max(max_due);
        }
    }

    /// Pull every waiting arrival off the inner transport through the
    /// pipeline into the pending queue, advancing the packet clock.
    fn ingest(&mut self) {
        while let Some((group, datagram)) = self.inner.try_recv() {
            self.clock += 1;
            self.stats.arrivals += 1;
            let mut deliveries = vec![0u64];
            for stage in &mut self.stages {
                stage.transform(&mut self.rng, &mut deliveries);
            }
            if deliveries.is_empty() {
                self.stats.dropped += 1;
                continue;
            }
            self.stats.duplicated += deliveries.len() as u64 - 1;
            for offset in deliveries {
                if offset > 0 {
                    self.stats.displaced += 1;
                }
                self.seq += 1;
                self.pending.push(Reverse(PendingCopy {
                    due: self.clock + offset,
                    seq: self.seq,
                    group,
                    datagram: datagram.clone(),
                }));
            }
        }
    }
}

impl<T: Transport> Transport for HostileChannel<T> {
    fn send(&mut self, group: u32, datagram: Bytes) {
        self.inner.send(group, datagram);
    }

    fn recv(&mut self) -> Option<(u32, Bytes)> {
        self.ingest();
        match self.pending.peek() {
            Some(Reverse(copy)) if copy.due <= self.clock => {
                let Reverse(copy) = self.pending.pop().expect("peeked entry exists");
                self.stats.delivered += 1;
                Some((copy.group, copy.datagram))
            }
            _ => None,
        }
    }

    fn readiness(&self) -> Readiness {
        self.inner.readiness()
    }

    fn join(&mut self, group: u32) -> std::io::Result<()> {
        self.inner.join(group)
    }

    fn leave(&mut self, group: u32) {
        self.inner.leave(group);
    }
}

/// Fluent construction of the common hostile-channel pipelines.
///
/// ```
/// # use df_sim::channel::HostileChannelBuilder;
/// # use df_proto::SimMulticast;
/// let net = SimMulticast::new(1);
/// let rx = HostileChannelBuilder::new(7)
///     .gilbert_elliott(0.2, 10.0)
///     .reorder(0.05, 8)
///     .duplicate(0.02)
///     .jitter(2)
///     .wrap(net.endpoint(0.0));
/// # let _ = rx;
/// ```
#[derive(Debug)]
pub struct HostileChannelBuilder {
    seed: u64,
    stages: Vec<Box<dyn ChannelModel>>,
}

impl HostileChannelBuilder {
    /// Start an empty pipeline whose stages will draw randomness from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        HostileChannelBuilder {
            seed,
            stages: Vec::new(),
        }
    }

    /// Add a Gilbert–Elliott loss stage calibrated to `target` average loss
    /// with mean burst length `burst_len`.
    pub fn gilbert_elliott(mut self, target: f64, burst_len: f64) -> Self {
        self.stages
            .push(Box::new(GilbertElliottChannel::with_average(
                target, burst_len,
            )));
        self
    }

    /// Add an arbitrary stage.
    pub fn stage(mut self, stage: Box<dyn ChannelModel>) -> Self {
        self.stages.push(stage);
        self
    }

    /// Add a reordering stage (probability `p`, displacement
    /// `1..=max_displacement`).
    pub fn reorder(mut self, p: f64, max_displacement: u64) -> Self {
        self.stages
            .push(Box::new(ReorderChannel::new(p, max_displacement)));
        self
    }

    /// Add a duplication stage.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.stages.push(Box::new(DuplicateChannel::new(p)));
        self
    }

    /// Add a jitter stage (displacement `0..=max` per copy).
    pub fn jitter(mut self, max: u64) -> Self {
        self.stages.push(Box::new(JitterChannel::new(max)));
        self
    }

    /// Wrap `inner` with the assembled pipeline.
    pub fn wrap<T: Transport>(self, inner: T) -> HostileChannel<T> {
        HostileChannel::new(inner, self.seed, self.stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_proto::SimMulticast;

    fn feed(tx: &mut df_proto::SimEndpoint, group: u32, count: usize, from: usize) {
        for i in from..from + count {
            tx.send(group, Bytes::from(i.to_be_bytes().to_vec()));
        }
    }

    fn drain<T: Transport>(rx: &mut T) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some((_g, d)) = rx.recv() {
            out.push(usize::from_be_bytes(d[..].try_into().unwrap()));
        }
        out
    }

    #[test]
    fn empty_pipeline_is_transparent_and_ordered() {
        let net = SimMulticast::new(1);
        let mut tx = net.endpoint(0.0);
        let mut rx = HostileChannelBuilder::new(9).wrap(net.endpoint(0.0));
        rx.join(5).unwrap();
        feed(&mut tx, 5, 100, 0);
        assert_eq!(drain(&mut rx), (0..100).collect::<Vec<_>>());
        let stats = rx.stats();
        assert_eq!(stats.arrivals, 100);
        assert_eq!(stats.delivered, 100);
        assert_eq!(
            (stats.dropped, stats.duplicated, stats.displaced),
            (0, 0, 0)
        );
    }

    #[test]
    fn gilbert_elliott_stage_drops_bursts_and_counts_episodes() {
        let net = SimMulticast::new(2);
        let mut tx = net.endpoint(0.0);
        let mut rx = HostileChannelBuilder::new(3)
            .gilbert_elliott(0.3, 10.0)
            .wrap(net.endpoint(0.0));
        rx.join(0).unwrap();
        feed(&mut tx, 0, 20_000, 0);
        let got = drain(&mut rx);
        let stats = rx.stats();
        assert_eq!(stats.arrivals, 20_000);
        assert_eq!(stats.dropped as usize, 20_000 - got.len());
        let rate = stats.dropped as f64 / stats.arrivals as f64;
        assert!((rate - 0.3).abs() < 0.03, "measured loss {rate}");
        let episodes = rx.burst_episodes();
        assert!(episodes > 0, "bursty loss must enter the bad state");
        // Mean burst ≈ 10 packets at 30 % loss ⇒ far fewer episodes than
        // drops: the loss is genuinely bursty, not independent.
        assert!(
            episodes < stats.dropped / 3,
            "{episodes} episodes for {} drops is not bursty",
            stats.dropped
        );
    }

    #[test]
    fn reordering_is_bounded_by_the_displacement_cap() {
        let net = SimMulticast::new(3);
        let mut tx = net.endpoint(0.0);
        const CAP: u64 = 6;
        let mut rx = HostileChannelBuilder::new(4)
            .reorder(0.3, CAP)
            .wrap(net.endpoint(0.0));
        rx.join(0).unwrap();
        feed(&mut tx, 0, 5_000, 0);
        let mut got = drain(&mut rx);
        rx.flush();
        got.extend(drain(&mut rx));
        assert_eq!(got.len(), 5_000, "reordering must not lose datagrams");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5_000).collect::<Vec<_>>());
        assert_ne!(got, sorted, "a 30 % reorder rate must actually reorder");
        // Bounded displacement: element i never lands more than CAP
        // positions late or early.
        for (pos, &v) in got.iter().enumerate() {
            assert!(
                (pos as i64 - v as i64).unsigned_abs() <= CAP,
                "value {v} displaced to position {pos}"
            );
        }
    }

    #[test]
    fn duplication_creates_adjacent_copies() {
        let net = SimMulticast::new(4);
        let mut tx = net.endpoint(0.0);
        let mut rx = HostileChannelBuilder::new(5)
            .duplicate(0.25)
            .wrap(net.endpoint(0.0));
        rx.join(0).unwrap();
        feed(&mut tx, 0, 4_000, 0);
        let got = drain(&mut rx);
        let stats = rx.stats();
        assert_eq!(got.len() as u64, 4_000 + stats.duplicated);
        let rate = stats.duplicated as f64 / 4_000.0;
        assert!((rate - 0.25).abs() < 0.03, "measured dup rate {rate}");
        // Copies come out back to back.
        let mut dup_adjacent = 0u64;
        for w in got.windows(2) {
            if w[0] == w[1] {
                dup_adjacent += 1;
            }
        }
        assert_eq!(dup_adjacent, stats.duplicated);
    }

    #[test]
    fn displaced_copies_wait_for_the_packet_clock() {
        let net = SimMulticast::new(5);
        let mut tx = net.endpoint(0.0);
        let mut rx = HostileChannelBuilder::new(6)
            .jitter(4)
            .wrap(net.endpoint(0.0));
        rx.join(0).unwrap();
        feed(&mut tx, 0, 10, 0);
        let first = drain(&mut rx);
        // Whatever was displaced past the last arrival stays in flight until
        // more traffic advances the clock…
        assert_eq!(first.len() + rx.in_flight(), 10);
        // …and the carousel's next burst flushes it out.
        feed(&mut tx, 0, 20, 10);
        let second = drain(&mut rx);
        assert!(rx.in_flight() <= 4, "displacement cap bounds the backlog");
        let mut all: Vec<usize> = first.into_iter().chain(second).collect();
        all.sort_unstable();
        all.dedup();
        assert!(all.len() >= 26, "at most the cap may remain in flight");
    }

    #[test]
    fn hostile_channel_is_deterministic_per_seed() {
        let run = || {
            let net = SimMulticast::new(6);
            let mut tx = net.endpoint(0.0);
            let mut rx = HostileChannelBuilder::new(11)
                .gilbert_elliott(0.25, 8.0)
                .reorder(0.1, 6)
                .duplicate(0.05)
                .jitter(2)
                .wrap(net.endpoint(0.0));
            rx.join(0).unwrap();
            feed(&mut tx, 0, 3_000, 0);
            (drain(&mut rx), rx.stats(), rx.burst_episodes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sends_joins_and_leaves_pass_through() {
        let net = SimMulticast::new(7);
        let mut hostile_tx = HostileChannelBuilder::new(1).wrap(net.endpoint(0.0));
        let mut rx = net.endpoint(0.0);
        rx.join(2).unwrap();
        hostile_tx.send(2, Bytes::from_static(b"through"));
        assert_eq!(
            rx.recv().map(|(g, d)| (g, d.to_vec())),
            Some((2, b"through".to_vec()))
        );
        assert_eq!(hostile_tx.readiness(), Readiness::Polled);
        // Leave on the decorator stops delivery on the inner endpoint.
        let mut hostile_rx = HostileChannelBuilder::new(2).wrap(net.endpoint(0.0));
        hostile_rx.join(2).unwrap();
        hostile_tx.send(2, Bytes::from_static(b"a"));
        assert_eq!(hostile_rx.recv().map(|(g, _)| g), Some(2));
        hostile_rx.leave(2);
        hostile_tx.send(2, Bytes::from_static(b"b"));
        assert_eq!(hostile_rx.recv(), None);
    }
}
