//! The Figure 7-style layered congestion-control experiment: a heterogeneous
//! receiver population downloading one layered carousel, each receiver
//! behind its own bottleneck bandwidth, all running the *real* protocol
//! stack — `df_proto::ServerSession` transmitting the SP/burst schedule over
//! `SimMulticast` and one `df_proto::ClientSession` per receiver making its
//! own join/leave decisions.  This is the same client code path the UDP
//! loopback tests drive; only the driver (this module) differs, which is the
//! point of the sans-I/O design.
//!
//! The driver models each receiver's access link as a per-round tail-drop
//! queue: of the datagrams multicast to the receiver's subscribed groups in
//! one round, only the first `bottleneck × blocks` survive (the base layer
//! sends one packet per block per round, so a bottleneck of `b` base-rate
//! units is a budget of `b · blocks` packets — normalised per block, making
//! results file-size independent).  Everything else — loss detection, burst
//! probing, the decision to join or leave — happens inside the client
//! session, with the driver merely executing `Transport::join`/`leave` when
//! the session says so.

use df_proto::{ClientEvent, ClientSession, ServerSession, SessionConfig, SimMulticast, Transport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Outcome of one adaptive receiver in a [`layered_population_experiment`].
#[derive(Debug, Clone, Serialize)]
pub struct LayeredOutcome {
    /// The receiver's bottleneck bandwidth in base-layer-rate units.
    pub bottleneck: f64,
    /// Whether the download completed within the round horizon.
    pub complete: bool,
    /// Cumulative subscription level when the download finished.
    pub final_level: usize,
    /// Server rounds until the receiver completed (the horizon if it never
    /// did).
    pub rounds: usize,
    /// Datagrams that made it through the receiver's bottleneck.
    pub received: usize,
    /// Distinct encoding packets among them.
    pub distinct: usize,
    /// Source packets in the file.
    pub k: usize,
}

impl LayeredOutcome {
    /// Reception efficiency `η = k / received` (Section 7.3).
    pub fn reception_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.k as f64 / self.received as f64
        }
    }

    /// Distinctness efficiency `η_d = distinct / received`.
    pub fn distinctness_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.distinct as f64 / self.received as f64
        }
    }
}

struct Receiver {
    endpoint: df_proto::SimEndpoint,
    client: ClientSession,
    /// Datagrams per round the access link lets through.
    budget: usize,
    bottleneck: f64,
    finished_at: Option<usize>,
}

/// Run a heterogeneous population of adaptive receivers against one layered
/// carousel and report each receiver's convergence level and completion
/// time.
///
/// `bottlenecks` are per-receiver bandwidths in base-layer-rate units; a
/// receiver behind bottleneck `b` can absorb cumulative level `l` iff the
/// level's relative bandwidth `≤ b`, and the burst probe keeps it from
/// overshooting.  `max_rounds` bounds the simulation (receivers that have
/// not completed by then are reported with `complete: false`).
///
/// # Panics
///
/// Panics on a degenerate configuration (empty file, invalid layered
/// cadence) — this is an experiment driver, not a validation surface.
pub fn layered_population_experiment(
    file_len: usize,
    layers: usize,
    sp_interval: usize,
    burst_rounds: usize,
    bottlenecks: &[f64],
    seed: u64,
    max_rounds: usize,
) -> Vec<LayeredOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<u8> = (0..file_len).map(|_| rng.gen()).collect();
    let mut server = ServerSession::new(
        &data,
        SessionConfig {
            layers,
            code_seed: seed,
            sp_interval,
            burst_rounds,
            ..SessionConfig::default()
        },
    )
    .expect("valid layered session configuration");
    let blocks = server
        .schedule()
        .expect("carousel sessions have a schedule")
        .num_blocks();
    let net = SimMulticast::new(seed);
    let mut tx = net.endpoint(0.0);
    let mut receivers: Vec<Receiver> = bottlenecks
        .iter()
        .map(|&bottleneck| {
            let mut endpoint = net.endpoint(0.0);
            let client = ClientSession::new(server.control_info().clone())
                .expect("server-produced control info is valid");
            for group in client.subscribed_groups() {
                endpoint.join(group).expect("sim join");
            }
            Receiver {
                endpoint,
                client,
                budget: (bottleneck * blocks as f64).floor() as usize,
                bottleneck,
                finished_at: None,
            }
        })
        .collect();

    for round in 0..max_rounds {
        server.send_round(&mut tx);
        for r in &mut receivers {
            // The access link: of this round's arrivals, everything beyond
            // the bottleneck budget is tail-dropped before the client sees
            // it.
            let mut arrived = 0usize;
            while let Some((_group, datagram)) = r.endpoint.recv() {
                arrived += 1;
                if arrived > r.budget || r.finished_at.is_some() {
                    continue;
                }
                match r.client.handle_datagram(datagram) {
                    ClientEvent::Join { group } => {
                        r.endpoint.join(group).expect("sim join");
                    }
                    ClientEvent::Leave { group } => r.endpoint.leave(group),
                    ClientEvent::Complete => {
                        r.finished_at = Some(round + 1);
                        // Stop listening: a finished receiver leaves the
                        // session's groups, as a real driver would.
                        for group in r.client.subscribed_groups() {
                            r.endpoint.leave(group);
                        }
                    }
                    _ => {}
                }
            }
        }
        if receivers.iter().all(|r| r.finished_at.is_some()) {
            break;
        }
    }

    receivers
        .into_iter()
        .map(|r| {
            let stats = r.client.stats();
            LayeredOutcome {
                bottleneck: r.bottleneck,
                complete: r.finished_at.is_some(),
                final_level: r.client.subscription_level().unwrap_or(0),
                rounds: r.finished_at.unwrap_or(max_rounds),
                received: stats.received(),
                distinct: stats.distinct(),
                k: stats.k(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_bottlenecks_converge_to_distinct_levels() {
        // The acceptance scenario: 1×, 3× and 7× base-rate bottlenecks
        // (cumulative level bandwidths at g = 6 are 1, 2, 4, 8, 16, 32) must
        // converge to levels 0, 1 and 2 — each the highest level whose
        // steady rate fits, with the burst probe blocking the overshoot.
        let rows = layered_population_experiment(500_000, 6, 2, 1, &[1.0, 3.0, 7.0], 42, 400);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.complete,
                "bottleneck {} never completed",
                row.bottleneck
            );
        }
        assert_eq!(
            rows.iter().map(|r| r.final_level).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "each receiver must find its own level"
        );
        // Completion time falls as the subscribed rate rises.
        assert!(rows[0].rounds > rows[1].rounds);
        assert!(rows[1].rounds > rows[2].rounds);
    }

    #[test]
    fn wide_open_receiver_outruns_a_narrow_one_at_any_file_size() {
        for file_len in [100_000usize, 400_000] {
            let rows = layered_population_experiment(file_len, 6, 2, 1, &[1.0, 64.0], 7, 400);
            assert!(rows.iter().all(|r| r.complete));
            assert!(rows[1].final_level > rows[0].final_level);
            assert!(rows[1].rounds < rows[0].rounds);
            // The realized throughput (packets through the bottleneck per
            // round) scales with the subscribed rate.
            let throughput = |r: &LayeredOutcome| r.received as f64 / r.rounds.max(1) as f64;
            assert!(throughput(&rows[1]) > 2.0 * throughput(&rows[0]));
        }
    }
}
