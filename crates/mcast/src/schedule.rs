//! The reverse-binary packet transmission schedule of Section 7.1.2.
//!
//! The encoding is divided into blocks of `B = 2^{g−1}` packets (`g` layers
//! with rates 1, 1, 2, 4, …, 2^{g−2}).  In every round each layer transmits a
//! fixed-size subset of offsets from *every* block; the subsets are chosen by
//! fixing a prefix of the offset's `g−1`-bit representation from the round
//! number's bits so that
//!
//! * within one round, the layers of any cumulative subscription level send
//!   pairwise-disjoint offsets, and
//! * over `2^{g−1}` consecutive rounds every layer — and every cumulative
//!   subscription level — transmits a permutation of the entire block before
//!   repeating anything.
//!
//! Together these give the *One Level Property*: a receiver that stays at one
//! subscription level receives no duplicate packet before it has seen the
//! whole encoding, so (for loss below `(c−1−ε)/c`) it can reconstruct the
//! source without a single wasted reception.  Table 5 of the paper lists the
//! schedule for `g = 4`; the unit tests reproduce that table verbatim.

/// The layered transmission schedule for an encoding of `n` packets over `g`
/// multicast layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransmissionSchedule {
    layers: usize,
    n: usize,
}

impl TransmissionSchedule {
    /// Create a schedule for `n` encoding packets over `layers` layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`, `layers > 16` (the block size `2^{g-1}` would
    /// be absurd), or `n == 0`.
    pub fn new(layers: usize, n: usize) -> Self {
        assert!(layers > 0 && layers <= 16, "need between 1 and 16 layers");
        assert!(n > 0, "schedule needs a non-empty encoding");
        TransmissionSchedule { layers, n }
    }

    /// Number of layers `g`.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Total number of encoding packets.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block size `B = 2^{g−1}` (also the number of distinct rounds).
    pub fn block_size(&self) -> usize {
        1 << (self.layers - 1)
    }

    /// Number of blocks the encoding is divided into (the last block may be
    /// partial).
    pub fn num_blocks(&self) -> usize {
        self.n.div_ceil(self.block_size())
    }

    /// Relative bandwidth of `layer`: `B_0 = 1`, `B_i = 2^{i−1}` for `i ≥ 1`
    /// (the geometric rates of Section 7.1.1).
    pub fn layer_bandwidth(&self, layer: usize) -> usize {
        assert!(layer < self.layers, "layer {layer} out of range");
        if layer == 0 {
            1
        } else {
            1 << (layer - 1)
        }
    }

    /// Total relative bandwidth of cumulative subscription level `level`
    /// (layers `0..=level`).
    pub fn cumulative_bandwidth(&self, level: usize) -> usize {
        (0..=level).map(|l| self.layer_bandwidth(l)).sum()
    }

    /// The within-block packet offsets transmitted by `layer` in `round`.
    ///
    /// Offsets are `g−1`-bit numbers; the subset is selected by fixing a
    /// prefix derived from the round bits (see the module documentation and
    /// Table 5 of the paper).
    pub fn offsets_for(&self, layer: usize, round: usize) -> Vec<usize> {
        assert!(layer < self.layers, "layer {layer} out of range");
        let g = self.layers;
        if g == 1 {
            // Single layer: plain carousel over the block.
            return vec![round % self.block_size()];
        }
        let bits = g - 1;
        let j = round % self.block_size();
        let bit = |p: usize| (j >> p) & 1;
        // Number of leading offset bits fixed by this layer.
        let fixed = if layer == 0 { bits } else { g - layer };
        // Build the fixed prefix, most significant offset bit first: all but
        // the last fixed bit are complemented round bits; the last fixed bit
        // is the plain round bit.  Layer 0 complements every bit.
        let mut prefix = 0usize;
        for p in 0..fixed {
            let last = p == fixed - 1;
            let b = if layer == 0 || !last {
                1 - bit(p)
            } else {
                bit(p)
            };
            prefix = (prefix << 1) | b;
        }
        let free = bits - fixed;
        (0..(1usize << free))
            .map(|suffix| (prefix << free) | suffix)
            .collect()
    }

    /// Global encoding indices transmitted by `layer` in `round`: its
    /// within-block offsets replicated across every block, skipping indices
    /// beyond the end of a partial final block.
    pub fn transmission(&self, layer: usize, round: usize) -> Vec<usize> {
        let offsets = self.offsets_for(layer, round);
        let block = self.block_size();
        let mut out = Vec::with_capacity(offsets.len() * self.num_blocks());
        for b in 0..self.num_blocks() {
            for &o in &offsets {
                let idx = b * block + o;
                if idx < self.n {
                    out.push(idx);
                }
            }
        }
        out
    }

    /// Number of global indices [`TransmissionSchedule::transmission`] yields
    /// for `layer` in `round`, without materialising them — the per-round
    /// packet count a pacing driver (or a receiver estimating its loss rate)
    /// needs.  Varies slightly across rounds when the final block is partial.
    pub fn transmission_len(&self, layer: usize, round: usize) -> usize {
        let offsets = self.offsets_for(layer, round);
        let last_start = (self.num_blocks() - 1) * self.block_size();
        offsets.len() * (self.num_blocks() - 1)
            + offsets.iter().filter(|&&o| last_start + o < self.n).count()
    }

    /// Global indices received in `round` by a receiver subscribed to
    /// cumulative level `level` (layers `0..=level`).
    pub fn received_at_level(&self, level: usize, round: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for layer in 0..=level.min(self.layers - 1) {
            out.extend(self.transmission(layer, round));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// Reproduce Table 5 of the paper exactly (g = 4, one 8-packet block).
    #[test]
    fn table5_four_layer_schedule() {
        let s = TransmissionSchedule::new(4, 8);
        assert_eq!(s.block_size(), 8);
        // Rounds are 1-indexed in the paper; ours are 0-indexed.
        let expect_layer3: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3],
            vec![4, 5, 6, 7],
            vec![0, 1, 2, 3],
            vec![4, 5, 6, 7],
            vec![0, 1, 2, 3],
            vec![4, 5, 6, 7],
            vec![0, 1, 2, 3],
            vec![4, 5, 6, 7],
        ];
        let expect_layer2: Vec<Vec<usize>> = vec![
            vec![4, 5],
            vec![0, 1],
            vec![6, 7],
            vec![2, 3],
            vec![4, 5],
            vec![0, 1],
            vec![6, 7],
            vec![2, 3],
        ];
        let expect_layer1 = [6usize, 2, 4, 0, 7, 3, 5, 1];
        let expect_layer0 = [7usize, 3, 5, 1, 6, 2, 4, 0];
        for round in 0..8 {
            assert_eq!(
                s.offsets_for(3, round),
                expect_layer3[round],
                "layer 3 round {round}"
            );
            assert_eq!(
                s.offsets_for(2, round),
                expect_layer2[round],
                "layer 2 round {round}"
            );
            assert_eq!(
                s.offsets_for(1, round),
                vec![expect_layer1[round]],
                "layer 1 round {round}"
            );
            assert_eq!(
                s.offsets_for(0, round),
                vec![expect_layer0[round]],
                "layer 0 round {round}"
            );
        }
    }

    #[test]
    fn bandwidths_are_geometric() {
        let s = TransmissionSchedule::new(4, 8);
        assert_eq!(
            (0..4).map(|l| s.layer_bandwidth(l)).collect::<Vec<_>>(),
            vec![1, 1, 2, 4]
        );
        assert_eq!(s.cumulative_bandwidth(0), 1);
        assert_eq!(s.cumulative_bandwidth(3), 8);
        // Each round transmits exactly one block's worth across all layers.
        assert_eq!(s.cumulative_bandwidth(3), s.block_size());
    }

    #[test]
    fn each_layer_cycles_through_the_whole_block() {
        for g in 2..=6usize {
            let s = TransmissionSchedule::new(g, 1 << (g - 1));
            for layer in 0..g {
                let mut seen = HashSet::new();
                let rounds_per_cycle = s.block_size() / s.layer_bandwidth(layer);
                for round in 0..rounds_per_cycle {
                    for o in s.offsets_for(layer, round) {
                        assert!(seen.insert(o), "g={g} layer {layer} repeated offset {o}");
                    }
                }
                assert_eq!(seen.len(), s.block_size(), "g={g} layer {layer}");
            }
        }
    }

    #[test]
    fn one_level_property_within_a_round_and_across_a_cycle() {
        // For every cumulative subscription level, the offsets received over
        // the rounds of one coverage cycle are pairwise distinct and cover the
        // whole block — so a steady receiver sees no duplicate before it has
        // the entire encoding.
        for g in 2..=6usize {
            let s = TransmissionSchedule::new(g, 4 * (1 << (g - 1)));
            for level in 0..g {
                let per_round = s.cumulative_bandwidth(level);
                let rounds_per_cycle = s.block_size() / per_round;
                let mut seen = HashSet::new();
                for round in 0..rounds_per_cycle {
                    let mut this_round = HashSet::new();
                    for layer in 0..=level {
                        for o in s.offsets_for(layer, round) {
                            assert!(
                                this_round.insert(o),
                                "g={g} level {level} round {round}: duplicate within round"
                            );
                            assert!(
                                seen.insert(o),
                                "g={g} level {level} round {round}: duplicate within cycle"
                            );
                        }
                    }
                }
                assert_eq!(
                    seen.len(),
                    s.block_size(),
                    "g={g} level {level} must cover the block"
                );
            }
        }
    }

    #[test]
    fn transmission_replicates_across_blocks_and_respects_n() {
        let s = TransmissionSchedule::new(3, 10); // block size 4, last block partial
        assert_eq!(s.num_blocks(), 3);
        let tx = s.transmission(2, 0); // layer 2 sends 2 offsets per block
        for &idx in &tx {
            assert!(idx < 10);
        }
        // Offsets {0,1} at round 0 for layer 2 (g=3): blocks at 0,4,8.
        assert_eq!(tx, vec![0, 1, 4, 5, 8, 9]);
        let rx = s.received_at_level(2, 0);
        assert_eq!(
            rx.len(),
            tx.len() + s.transmission(1, 0).len() + s.transmission(0, 0).len()
        );
    }

    #[test]
    fn single_layer_degenerates_to_a_carousel() {
        // With one layer the block size is 1, so each round sends one packet
        // from every block — i.e. every round sweeps the whole encoding once.
        let s = TransmissionSchedule::new(1, 5);
        assert_eq!(s.block_size(), 1);
        assert_eq!(s.num_blocks(), 5);
        for r in 0..3 {
            assert_eq!(s.transmission(0, r), vec![0, 1, 2, 3, 4], "round {r}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every round at every level transmits pairwise-disjoint offsets.
        #[test]
        fn prop_no_duplicates_within_any_round(g in 2usize..7, round in 0usize..64) {
            let s = TransmissionSchedule::new(g, 1 << (g - 1));
            for level in 0..g {
                let mut seen = HashSet::new();
                for layer in 0..=level {
                    for o in s.offsets_for(layer, round) {
                        prop_assert!(seen.insert(o));
                    }
                }
            }
        }

        /// The top cumulative level (`g − 1`, i.e. all layers together) covers
        /// the whole block within a single round-period — each round sends
        /// exactly one block's worth, and over `block_size` rounds every
        /// offset appears `block_size` times in total.
        #[test]
        fn prop_full_subscription_covers_the_block_each_round(g in 2usize..7, start in 0usize..64) {
            let s = TransmissionSchedule::new(g, 1 << (g - 1));
            for round in start..start + s.block_size() {
                let mut seen = HashSet::new();
                for layer in 0..g {
                    for o in s.offsets_for(layer, round) {
                        prop_assert!(seen.insert(o), "duplicate offset {o} in round {round}");
                    }
                }
                prop_assert_eq!(seen.len(), s.block_size(), "round {} must cover the block", round);
            }
        }

        /// `transmission_len` agrees with the materialised transmission for
        /// every layer and round, including partial final blocks.
        #[test]
        fn prop_transmission_len_matches_transmission(
            g in 1usize..7,
            round in 0usize..64,
            extra in 0usize..40,
        ) {
            let n = (1 << (g - 1)) + extra; // at least one (possibly partial) block
            let s = TransmissionSchedule::new(g, n);
            for layer in 0..g {
                prop_assert_eq!(
                    s.transmission_len(layer, round),
                    s.transmission(layer, round).len(),
                    "g={} layer={} round={} n={}", g, layer, round, n
                );
            }
        }
    }
}
