//! # df-mcast — layered multicast scheduling and congestion control
//!
//! Reproduces Section 7.1 of Byers, Luby, Mitzenmacher & Rege (SIGCOMM '98):
//!
//! * [`schedule`] — the reverse-binary packet transmission scheme that spreads
//!   the encoding across multicast layers so that a receiver at a fixed
//!   subscription level sees no duplicate packet before it could have decoded
//!   (the *One Level Property*, Table 5 / Figure 7 of the paper).
//! * [`layers`] — geometric layer rates, sender-driven synchronisation points
//!   and burst periods, and a simulated receiver whose subscription level
//!   adapts to its bottleneck bandwidth without any feedback to the source
//!   (the congestion-control scheme of Vicisano/Rizzo/Crowcroft adopted by the
//!   paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layers;
pub mod schedule;

pub use layers::{
    simulate_single_layer_receiver, LayeredReceiver, LayeredSession, ReceiverReport, MAX_LAYERS,
    MAX_SP_INTERVAL,
};
pub use schedule::TransmissionSchedule;
