//! Layered multicast sessions and adaptive receivers (Sections 7.1.1 and 7.3).
//!
//! The server organises the encoding into `g` cumulative layers with
//! geometrically increasing rates and drives congestion control itself:
//! specially marked *synchronisation points* (SPs) are the only instants at
//! which a receiver may join a higher layer, and periodic *burst periods*
//! (packets sent at twice the normal rate) let a receiver probe whether it
//! could sustain the next level without sending any feedback to the source.
//! Receivers subscribe to a prefix of the layers, move up after an SP if the
//! preceding burst caused no loss, and drop a layer whenever they experience
//! sustained loss.
//!
//! [`LayeredSession::simulate_receiver`] runs one receiver through this
//! protocol against a bottleneck-bandwidth channel with additional random
//! loss and reports the reception, coding and distinctness efficiencies of
//! Section 7.3 — the quantities plotted in Figure 8 of the paper.

use crate::schedule::TransmissionSchedule;
use df_core::{AddOutcome, Mark, TornadoCode};
use rand::Rng;
use serde::Serialize;

/// A layered transmission session for one Tornado-encoded file.
#[derive(Debug, Clone)]
pub struct LayeredSession {
    schedule: TransmissionSchedule,
    /// Rounds between synchronisation points.
    sp_interval: usize,
    /// Rounds of double-rate burst preceding each SP.
    burst_rounds: usize,
}

impl LayeredSession {
    /// Create a session over `n` encoding packets and `layers` multicast
    /// groups, with an SP every `sp_interval` rounds preceded by
    /// `burst_rounds` rounds of double-rate bursting.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (no layers, empty encoding, zero SP
    /// interval, or bursts longer than the SP interval).
    pub fn new(layers: usize, n: usize, sp_interval: usize, burst_rounds: usize) -> Self {
        assert!(sp_interval > 0, "SP interval must be positive");
        assert!(
            burst_rounds < sp_interval,
            "burst must be shorter than the SP interval"
        );
        LayeredSession {
            schedule: TransmissionSchedule::new(layers, n),
            sp_interval,
            burst_rounds,
        }
    }

    /// The packet schedule in use.
    pub fn schedule(&self) -> &TransmissionSchedule {
        &self.schedule
    }

    /// True if `round` is a synchronisation point (a join opportunity).
    pub fn is_sync_point(&self, round: usize) -> bool {
        round.is_multiple_of(self.sp_interval) && round > 0
    }

    /// True if `round` falls inside the burst period preceding the next SP.
    pub fn is_burst(&self, round: usize) -> bool {
        let phase = round % self.sp_interval;
        phase + self.burst_rounds >= self.sp_interval
    }

    /// Simulate one adaptive receiver downloading `code` through this session.
    ///
    /// `bottleneck` is the receiver's bottleneck bandwidth in units of the
    /// base-layer rate; `extra_loss` is an additional independent loss
    /// probability on every packet (congestion elsewhere in the network).
    /// Packets beyond the bottleneck within a round are dropped (tail drop),
    /// which is both how the receiver experiences congestion and the signal
    /// its join/leave decisions react to.
    pub fn simulate_receiver<R: Rng + ?Sized>(
        &self,
        code: &TornadoCode,
        bottleneck: f64,
        extra_loss: f64,
        rng: &mut R,
    ) -> ReceiverReport {
        let g = self.schedule.layers();
        let blocks = self.schedule.num_blocks() as f64;
        let mut level = 0usize; // current cumulative subscription level
        let mut decoder = code.symbolic_decoder();
        let mut seen = vec![false; code.n()];
        let mut received = 0usize;
        let mut distinct = 0usize;
        let mut loss_since_sp = false;
        let mut burst_loss = false;
        let mut round = 0usize;
        let max_rounds = 64 * self.schedule.block_size().max(self.sp_interval) * 64;
        let mut complete = false;
        while round < max_rounds && !complete {
            // Join/leave decisions happen at SPs based on what the last burst
            // and inter-SP period showed.
            if self.is_sync_point(round) {
                if loss_since_sp {
                    level = level.saturating_sub(1);
                } else if !burst_loss && level + 1 < g {
                    level += 1;
                }
                loss_since_sp = false;
                burst_loss = false;
            }
            let burst = self.is_burst(round);
            let rate_multiplier = if burst { 2.0 } else { 1.0 };
            // Offered load at this subscription level, in base-rate units,
            // normalised per block so the bottleneck is file-size independent.
            let offered = self.schedule.cumulative_bandwidth(level) as f64 * rate_multiplier;
            let deliver_fraction = (bottleneck / offered).min(1.0);
            let mut round_packets: Vec<usize> = Vec::new();
            for layer in 0..=level {
                round_packets.extend(self.schedule.transmission(layer, round));
                if burst {
                    // The burst repeats the layer's packets at double rate; the
                    // extra copies stress the bottleneck but carry no new data.
                    round_packets.extend(self.schedule.transmission(layer, round));
                }
            }
            for idx in round_packets {
                // Tail-drop at the bottleneck plus independent background loss.
                let dropped = rng.gen::<f64>() >= deliver_fraction || rng.gen::<f64>() < extra_loss;
                if dropped {
                    if burst {
                        burst_loss = true;
                    } else {
                        loss_since_sp = true;
                    }
                    continue;
                }
                received += 1;
                if !seen[idx] {
                    seen[idx] = true;
                    distinct += 1;
                }
                if decoder.add_packet(idx, Mark).expect("index in range") == AddOutcome::Complete {
                    complete = true;
                    break;
                }
            }
            round += 1;
        }
        let _ = blocks;
        ReceiverReport {
            complete,
            received,
            distinct,
            k: code.k(),
            final_level: level,
            rounds: round,
        }
    }
}

/// Outcome of one simulated layered (or single-layer) receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReceiverReport {
    /// Whether the receiver reconstructed the file within the simulation
    /// horizon.
    pub complete: bool,
    /// Packets received (after loss), including duplicates.
    pub received: usize,
    /// Distinct encoding packets received.
    pub distinct: usize,
    /// Source packets in the file.
    pub k: usize,
    /// Subscription level at the end of the download.
    pub final_level: usize,
    /// Rounds the download took.
    pub rounds: usize,
}

impl ReceiverReport {
    /// Reception efficiency `η = k / received`.
    pub fn reception_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.k as f64 / self.received as f64
        }
    }

    /// Coding efficiency `η_c = k / distinct`.
    pub fn coding_efficiency(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.k as f64 / self.distinct as f64
        }
    }

    /// Distinctness efficiency `η_d = distinct / received`.
    pub fn distinctness_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.distinct as f64 / self.received as f64
        }
    }

    /// Overall loss rate experienced relative to what was transmitted to the
    /// receiver's subscription — not tracked directly; use the efficiencies.
    pub fn reception_overhead(&self) -> f64 {
        self.received as f64 / self.k as f64 - 1.0
    }
}

/// A single-layer receiver at a fixed loss rate — the "single layer protocol"
/// control experiment of Section 7.3 (left half of Figure 8).  The receiver
/// simply listens to layer 0's schedule (a carousel) and loses each packet
/// independently with probability `loss`.
pub fn simulate_single_layer_receiver<R: Rng + ?Sized>(
    code: &TornadoCode,
    schedule: &TransmissionSchedule,
    loss: f64,
    rng: &mut R,
) -> ReceiverReport {
    let mut decoder = code.symbolic_decoder();
    let mut seen = vec![false; code.n()];
    let mut received = 0usize;
    let mut distinct = 0usize;
    let mut complete = false;
    let mut round = 0usize;
    // A single-layer receiver subscribes to every layer's traffic on one
    // group; equivalently it sees the full per-round block pattern.
    let max_rounds = 64 * schedule.block_size() * 64;
    while round < max_rounds && !complete {
        for layer in 0..schedule.layers() {
            for idx in schedule.transmission(layer, round) {
                if rng.gen::<f64>() < loss {
                    continue;
                }
                received += 1;
                if !seen[idx] {
                    seen[idx] = true;
                    distinct += 1;
                }
                if decoder.add_packet(idx, Mark).expect("index in range") == AddOutcome::Complete {
                    complete = true;
                    break;
                }
            }
            if complete {
                break;
            }
        }
        round += 1;
    }
    ReceiverReport {
        complete,
        received,
        distinct,
        k: code.k(),
        final_level: 0,
        rounds: round,
    }
}

/// One simulated receiver used by the `df-proto` prototype experiments; kept
/// here so both the prototype and the bench harness share it.
pub type LayeredReceiver = ReceiverReport;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn code() -> TornadoCode {
        TornadoCode::new_a(1000, 7).unwrap()
    }

    #[test]
    fn sync_points_and_bursts_alternate_sensibly() {
        let s = LayeredSession::new(4, 2000, 16, 2);
        assert!(!s.is_sync_point(0));
        assert!(s.is_sync_point(16));
        assert!(!s.is_sync_point(17));
        assert!(s.is_burst(14));
        assert!(s.is_burst(15));
        assert!(!s.is_burst(3));
    }

    #[test]
    fn single_layer_receiver_no_loss_has_full_distinctness() {
        let code = code();
        let schedule = TransmissionSchedule::new(4, code.n());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = simulate_single_layer_receiver(&code, &schedule, 0.0, &mut rng);
        assert!(r.complete);
        // One Level Property: no duplicates before reconstruction at zero loss.
        assert!((r.distinctness_efficiency() - 1.0).abs() < 1e-12);
        assert!(r.coding_efficiency() > 0.7);
    }

    #[test]
    fn single_layer_distinctness_stays_high_below_half_loss() {
        let code = code();
        let schedule = TransmissionSchedule::new(4, code.n());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let r = simulate_single_layer_receiver(&code, &schedule, 0.3, &mut rng);
        assert!(r.complete);
        assert!(
            r.distinctness_efficiency() > 0.95,
            "η_d = {} should stay near 1 below 50 % loss",
            r.distinctness_efficiency()
        );
    }

    #[test]
    fn severe_loss_still_reconstructs_with_reduced_efficiency() {
        let code = code();
        let schedule = TransmissionSchedule::new(4, code.n());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = simulate_single_layer_receiver(&code, &schedule, 0.7, &mut rng);
        assert!(r.complete);
        assert!(r.distinctness_efficiency() < 1.0);
        assert!(
            r.reception_efficiency() > 0.4,
            "η = {}",
            r.reception_efficiency()
        );
    }

    #[test]
    fn layered_receiver_converges_to_its_bottleneck_level() {
        let code = code();
        let session = LayeredSession::new(4, code.n(), 8, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Bottleneck of 4 base-rate units supports cumulative level 2
        // (bandwidth 1+1+2 = 4) but not level 3 (bandwidth 8).
        let r = session.simulate_receiver(&code, 4.0, 0.0, &mut rng);
        assert!(r.complete);
        assert!(
            r.final_level <= 2,
            "level {} exceeds the bottleneck",
            r.final_level
        );
    }

    #[test]
    fn wide_bottleneck_receiver_reaches_the_top_level_and_downloads_fast() {
        // Frequent SPs so the wide receiver has several join opportunities
        // before the (short) download finishes.
        let code = code();
        let session = LayeredSession::new(4, code.n(), 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let fast = session.simulate_receiver(&code, 32.0, 0.0, &mut rng);
        let slow = session.simulate_receiver(&code, 1.0, 0.0, &mut rng);
        assert!(fast.complete && slow.complete);
        assert!(
            fast.final_level > slow.final_level,
            "fast level {} vs slow level {}",
            fast.final_level,
            slow.final_level
        );
        // A higher subscription level means more packets per round reach the
        // receiver, i.e. higher download throughput.
        let throughput = |r: &ReceiverReport| r.received as f64 / r.rounds.max(1) as f64;
        assert!(
            throughput(&fast) > throughput(&slow),
            "fast throughput {} must beat slow throughput {}",
            throughput(&fast),
            throughput(&slow)
        );
    }

    #[test]
    fn layer_switching_costs_distinctness_efficiency() {
        // A receiver whose bottleneck sits between levels keeps oscillating,
        // which is exactly the effect the paper reports: duplicates appear at
        // moderate loss because of subscription changes.
        let code = code();
        let session = LayeredSession::new(4, code.n(), 8, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let r = session.simulate_receiver(&code, 3.0, 0.10, &mut rng);
        assert!(r.complete);
        assert!(r.distinctness_efficiency() <= 1.0);
        assert!(r.reception_efficiency() > 0.3);
    }
}
