//! Layered multicast sessions and adaptive receivers (Sections 7.1.1 and 7.3).
//!
//! The server organises the encoding into `g` cumulative layers with
//! geometrically increasing rates and drives congestion control itself:
//! specially marked *synchronisation points* (SPs) are the only instants at
//! which a receiver may join a higher layer, and periodic *burst periods*
//! (packets sent at twice the normal rate) let a receiver probe whether it
//! could sustain the next level without sending any feedback to the source.
//! Receivers subscribe to a prefix of the layers, move up after an SP if the
//! preceding burst caused no loss, and drop a layer whenever they experience
//! sustained loss.
//!
//! [`LayeredSession::simulate_receiver`] runs one receiver through this
//! protocol against a bottleneck-bandwidth channel with additional random
//! loss and reports the reception, coding and distinctness efficiencies of
//! Section 7.3 — the quantities plotted in Figure 8 of the paper.

use crate::schedule::TransmissionSchedule;
use df_core::{AddOutcome, Mark, TornadoCode, TornadoError};
use rand::Rng;
use serde::Serialize;

/// Most layers a layered session may use — the reverse-binary schedule's
/// block size is `2^(layers−1)`, so 16 layers is already a 32 768-packet
/// block ([`TransmissionSchedule`] enforces the same cap).
pub const MAX_LAYERS: usize = 16;

/// Longest admissible SP interval.  Receiver-side loss accounting holds
/// O(`sp_interval`) round counters, so the bound keeps what a session (or a
/// hostile announcement replaying one) can make a receiver track finite;
/// protocol clients enforce the same limit on wire-sourced cadences.
pub const MAX_SP_INTERVAL: usize = 1 << 16;

/// A layered transmission session for one Tornado-encoded file.
#[derive(Debug, Clone)]
pub struct LayeredSession {
    schedule: TransmissionSchedule,
    /// Rounds between synchronisation points.
    sp_interval: usize,
    /// Rounds of double-rate burst preceding each SP.
    burst_rounds: usize,
}

impl LayeredSession {
    /// Create a session over `n` encoding packets and `layers` multicast
    /// groups, with an SP every `sp_interval` rounds preceded by
    /// `burst_rounds` rounds of double-rate bursting.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::InvalidParameters`] for degenerate parameters:
    /// no layers (or more than the [`MAX_LAYERS`] = 16 the schedule
    /// supports), an empty encoding, an SP interval shorter than 2 rounds
    /// (`sp_interval == 0` would divide by zero in the round phase
    /// arithmetic, and `sp_interval == 1` would make *every* round a sync
    /// point, leaving no inter-SP rounds to measure loss over) or longer
    /// than [`MAX_SP_INTERVAL`], or bursts at least as long as the SP
    /// interval (which would misclassify every loss as burst loss and
    /// freeze the join/leave logic).
    pub fn new(
        layers: usize,
        n: usize,
        sp_interval: usize,
        burst_rounds: usize,
    ) -> df_core::Result<Self> {
        let invalid = |reason: String| TornadoError::InvalidParameters { reason };
        if layers == 0 || layers > MAX_LAYERS {
            return Err(invalid(format!(
                "need between 1 and {MAX_LAYERS} layers, got {layers}"
            )));
        }
        if n == 0 {
            return Err(invalid("layered session needs a non-empty encoding".into()));
        }
        if !(2..=MAX_SP_INTERVAL).contains(&sp_interval) {
            return Err(invalid(format!(
                "SP interval must be between 2 and {MAX_SP_INTERVAL} rounds, got {sp_interval}"
            )));
        }
        if burst_rounds >= sp_interval {
            return Err(invalid(format!(
                "burst ({burst_rounds} rounds) must be shorter than the SP \
                 interval ({sp_interval} rounds)"
            )));
        }
        Ok(LayeredSession {
            schedule: TransmissionSchedule::new(layers, n),
            sp_interval,
            burst_rounds,
        })
    }

    /// The packet schedule in use.
    pub fn schedule(&self) -> &TransmissionSchedule {
        &self.schedule
    }

    /// Rounds between synchronisation points.
    pub fn sp_interval(&self) -> usize {
        self.sp_interval
    }

    /// Rounds of double-rate burst preceding each SP.
    pub fn burst_rounds(&self) -> usize {
        self.burst_rounds
    }

    /// True if `round` is a synchronisation point (a join opportunity).
    pub fn is_sync_point(&self, round: usize) -> bool {
        round.is_multiple_of(self.sp_interval) && round > 0
    }

    /// True if `round` falls inside the burst period preceding the next SP.
    pub fn is_burst(&self, round: usize) -> bool {
        let phase = round % self.sp_interval;
        phase + self.burst_rounds >= self.sp_interval
    }

    /// Simulate one adaptive receiver downloading `code` through this session.
    ///
    /// `bottleneck` is the receiver's bottleneck bandwidth in units of the
    /// base-layer rate; `extra_loss` is an additional independent loss
    /// probability on every packet (congestion elsewhere in the network).
    /// Packets beyond the bottleneck within a round are dropped (tail drop),
    /// which is both how the receiver experiences congestion and the signal
    /// its join/leave decisions react to.
    ///
    /// The base layer sends one packet per block per round, so a bottleneck
    /// of `b` base-rate units is a per-round delivery budget of `b · blocks`
    /// packets — normalised per block, which is what makes the bottleneck
    /// comparison file-size independent: a receiver behind a 3× bottleneck
    /// converges to the same subscription level whether the file spans 10
    /// blocks or 10 000.
    pub fn simulate_receiver<R: Rng + ?Sized>(
        &self,
        code: &TornadoCode,
        bottleneck: f64,
        extra_loss: f64,
        rng: &mut R,
    ) -> ReceiverReport {
        let g = self.schedule.layers();
        let blocks = self.schedule.num_blocks() as f64;
        // Per-round delivery budget at the receiver's access link, in
        // packets; everything past it within one round is tail-dropped.
        let budget = (bottleneck * blocks).floor().max(0.0) as usize;
        let mut level = 0usize; // current cumulative subscription level
        let mut decoder = code.symbolic_decoder();
        let mut seen = vec![false; code.n()];
        let mut received = 0usize;
        let mut distinct = 0usize;
        let mut loss_since_sp = false;
        let mut burst_loss = false;
        let mut round = 0usize;
        let max_rounds = 64 * self.schedule.block_size().max(self.sp_interval) * 64;
        let mut complete = false;
        while round < max_rounds && !complete {
            // Join/leave decisions happen at SPs based on what the last burst
            // and inter-SP period showed.
            if self.is_sync_point(round) {
                if loss_since_sp {
                    level = level.saturating_sub(1);
                } else if !burst_loss && level + 1 < g {
                    level += 1;
                }
                loss_since_sp = false;
                burst_loss = false;
            }
            let burst = self.is_burst(round);
            let mut round_packets: Vec<usize> = Vec::new();
            for layer in 0..=level {
                round_packets.extend(self.schedule.transmission(layer, round));
                if burst {
                    // The burst repeats the layer's packets at double rate; the
                    // extra copies stress the bottleneck but carry no new data.
                    round_packets.extend(self.schedule.transmission(layer, round));
                }
            }
            for (pos, idx) in round_packets.into_iter().enumerate() {
                // Deterministic tail-drop at the bottleneck: the packets of a
                // round arrive lowest layer first, and whatever exceeds the
                // budget never makes it through the access link.  Independent
                // background loss comes on top.
                let dropped = pos >= budget || (extra_loss > 0.0 && rng.gen::<f64>() < extra_loss);
                if dropped {
                    if burst {
                        burst_loss = true;
                    } else {
                        loss_since_sp = true;
                    }
                    continue;
                }
                received += 1;
                if !seen[idx] {
                    seen[idx] = true;
                    distinct += 1;
                }
                if decoder.add_packet(idx, Mark).expect("index in range") == AddOutcome::Complete {
                    complete = true;
                    break;
                }
            }
            round += 1;
        }
        ReceiverReport {
            complete,
            received,
            distinct,
            k: code.k(),
            final_level: level,
            rounds: round,
        }
    }
}

/// Outcome of one simulated layered (or single-layer) receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReceiverReport {
    /// Whether the receiver reconstructed the file within the simulation
    /// horizon.
    pub complete: bool,
    /// Packets received (after loss), including duplicates.
    pub received: usize,
    /// Distinct encoding packets received.
    pub distinct: usize,
    /// Source packets in the file.
    pub k: usize,
    /// Subscription level at the end of the download.
    pub final_level: usize,
    /// Rounds the download took.
    pub rounds: usize,
}

impl ReceiverReport {
    /// Reception efficiency `η = k / received`.
    pub fn reception_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.k as f64 / self.received as f64
        }
    }

    /// Coding efficiency `η_c = k / distinct`.
    pub fn coding_efficiency(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.k as f64 / self.distinct as f64
        }
    }

    /// Distinctness efficiency `η_d = distinct / received`.
    pub fn distinctness_efficiency(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.distinct as f64 / self.received as f64
        }
    }

    /// Overall loss rate experienced relative to what was transmitted to the
    /// receiver's subscription — not tracked directly; use the efficiencies.
    pub fn reception_overhead(&self) -> f64 {
        self.received as f64 / self.k as f64 - 1.0
    }
}

/// A single-layer receiver at a fixed loss rate — the "single layer protocol"
/// control experiment of Section 7.3 (left half of Figure 8).  The receiver
/// simply listens to layer 0's schedule (a carousel) and loses each packet
/// independently with probability `loss`.
pub fn simulate_single_layer_receiver<R: Rng + ?Sized>(
    code: &TornadoCode,
    schedule: &TransmissionSchedule,
    loss: f64,
    rng: &mut R,
) -> ReceiverReport {
    let mut decoder = code.symbolic_decoder();
    let mut seen = vec![false; code.n()];
    let mut received = 0usize;
    let mut distinct = 0usize;
    let mut complete = false;
    let mut round = 0usize;
    // A single-layer receiver subscribes to every layer's traffic on one
    // group; equivalently it sees the full per-round block pattern.
    let max_rounds = 64 * schedule.block_size() * 64;
    while round < max_rounds && !complete {
        for layer in 0..schedule.layers() {
            for idx in schedule.transmission(layer, round) {
                if rng.gen::<f64>() < loss {
                    continue;
                }
                received += 1;
                if !seen[idx] {
                    seen[idx] = true;
                    distinct += 1;
                }
                if decoder.add_packet(idx, Mark).expect("index in range") == AddOutcome::Complete {
                    complete = true;
                    break;
                }
            }
            if complete {
                break;
            }
        }
        round += 1;
    }
    ReceiverReport {
        complete,
        received,
        distinct,
        k: code.k(),
        final_level: 0,
        rounds: round,
    }
}

/// One simulated receiver used by the `df-proto` prototype experiments; kept
/// here so both the prototype and the bench harness share it.
pub type LayeredReceiver = ReceiverReport;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn code() -> TornadoCode {
        TornadoCode::new_a(1000, 7).unwrap()
    }

    #[test]
    fn sync_points_and_bursts_alternate_sensibly() {
        let s = LayeredSession::new(4, 2000, 16, 2).unwrap();
        assert!(!s.is_sync_point(0));
        assert!(s.is_sync_point(16));
        assert!(!s.is_sync_point(17));
        assert!(s.is_burst(14));
        assert!(s.is_burst(15));
        assert!(!s.is_burst(3));
        assert_eq!((s.sp_interval(), s.burst_rounds()), (16, 2));
    }

    #[test]
    fn degenerate_session_parameters_are_constructor_errors() {
        use df_core::TornadoError;
        // (layers, n, sp_interval, burst_rounds) combinations that used to
        // panic (or construct, then panic or never-burst downstream).
        for (layers, n, sp, burst) in [
            (0usize, 100usize, 8usize, 1usize), // no layers
            (17, 100, 8, 1),                    // beyond the schedule's maximum
            (4, 0, 8, 1),                       // empty encoding
            (4, 100, 0, 0),                     // SP interval of zero: division by zero downstream
            (4, 100, 1, 0),                     // every round an SP: no inter-SP loss window
            (4, 100, MAX_SP_INTERVAL + 1, 0),   // unbounded receiver accounting
            (4, 100, 8, 8),                     // burst as long as the SP interval
            (4, 100, 8, 9),                     // burst longer than the SP interval
        ] {
            match LayeredSession::new(layers, n, sp, burst) {
                Err(TornadoError::InvalidParameters { .. }) => {}
                other => panic!("({layers}, {n}, {sp}, {burst}) must be rejected, got {other:?}"),
            }
        }
        assert!(
            LayeredSession::new(4, 100, 2, 1).is_ok(),
            "minimal valid SP spacing"
        );
    }

    #[test]
    fn single_layer_receiver_no_loss_has_full_distinctness() {
        let code = code();
        let schedule = TransmissionSchedule::new(4, code.n());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = simulate_single_layer_receiver(&code, &schedule, 0.0, &mut rng);
        assert!(r.complete);
        // One Level Property: no duplicates before reconstruction at zero loss.
        assert!((r.distinctness_efficiency() - 1.0).abs() < 1e-12);
        assert!(r.coding_efficiency() > 0.7);
    }

    #[test]
    fn single_layer_distinctness_stays_high_below_half_loss() {
        let code = code();
        let schedule = TransmissionSchedule::new(4, code.n());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let r = simulate_single_layer_receiver(&code, &schedule, 0.3, &mut rng);
        assert!(r.complete);
        assert!(
            r.distinctness_efficiency() > 0.95,
            "η_d = {} should stay near 1 below 50 % loss",
            r.distinctness_efficiency()
        );
    }

    #[test]
    fn severe_loss_still_reconstructs_with_reduced_efficiency() {
        let code = code();
        let schedule = TransmissionSchedule::new(4, code.n());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = simulate_single_layer_receiver(&code, &schedule, 0.7, &mut rng);
        assert!(r.complete);
        assert!(r.distinctness_efficiency() < 1.0);
        assert!(
            r.reception_efficiency() > 0.4,
            "η = {}",
            r.reception_efficiency()
        );
    }

    #[test]
    fn layered_receiver_converges_to_its_bottleneck_level() {
        // Six layers and a tight SP cadence so the receiver has several join
        // opportunities before the download completes (at g = 6 a base-layer
        // download spans ~17 rounds; SPs every 2 rounds).
        let code = code();
        let session = LayeredSession::new(6, code.n(), 2, 1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Bottleneck of 4 base-rate units supports cumulative level 2
        // (bandwidth 1+1+2 = 4) but not level 3 (bandwidth 8); with the
        // deterministic tail-drop model the burst probe (2×4 = 8 > 4) blocks
        // the next join exactly, so convergence is to level 2 exactly.
        let r = session.simulate_receiver(&code, 4.0, 0.0, &mut rng);
        assert!(r.complete);
        assert_eq!(
            r.final_level, 2,
            "a 4× bottleneck must converge to cumulative level 2"
        );
    }

    #[test]
    fn bottleneck_comparison_is_file_size_independent() {
        // The per-block normalisation fix: the same bottleneck ratio must
        // converge to the same subscription level regardless of how many
        // blocks the encoding spans.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut levels = Vec::new();
        for k in [250usize, 1000, 4000] {
            let code = TornadoCode::new_a(k, 7).unwrap();
            let session = LayeredSession::new(6, code.n(), 2, 1).unwrap();
            let r = session.simulate_receiver(&code, 3.0, 0.0, &mut rng);
            assert!(r.complete, "k = {k} did not complete");
            levels.push(r.final_level);
        }
        assert_eq!(
            levels,
            vec![1, 1, 1],
            "a 3× bottleneck sustains level 1 (rate 2) but fails the level-2 \
             burst probe (rate 4) at every file size"
        );
    }

    #[test]
    fn wide_bottleneck_receiver_reaches_the_top_level_and_downloads_fast() {
        // Frequent SPs so the wide receiver has several join opportunities
        // before the (short) download finishes.
        let code = code();
        let session = LayeredSession::new(6, code.n(), 2, 1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let fast = session.simulate_receiver(&code, 32.0, 0.0, &mut rng);
        let slow = session.simulate_receiver(&code, 1.0, 0.0, &mut rng);
        assert!(fast.complete && slow.complete);
        assert!(
            fast.final_level > slow.final_level,
            "fast level {} vs slow level {}",
            fast.final_level,
            slow.final_level
        );
        // A higher subscription level means more packets per round reach the
        // receiver, i.e. higher download throughput.
        let throughput = |r: &ReceiverReport| r.received as f64 / r.rounds.max(1) as f64;
        assert!(
            throughput(&fast) > throughput(&slow),
            "fast throughput {} must beat slow throughput {}",
            throughput(&fast),
            throughput(&slow)
        );
    }

    #[test]
    fn burst_loss_is_a_clean_probe_not_a_drop_signal() {
        // A receiver whose bottleneck exactly fits its level loses packets
        // *only* during bursts (the deterministic tail-drop of the doubled
        // rate), and that loss must block joins without ever forcing a drop:
        // the receiver stays pinned at its level from the first SP on.
        let code = code();
        let session = LayeredSession::new(6, code.n(), 2, 1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        // 2 base-rate units: level 1 fits exactly (1+1), burst (4) does not.
        let r = session.simulate_receiver(&code, 2.0, 0.0, &mut rng);
        assert!(r.complete);
        assert_eq!(r.final_level, 1, "must hold level 1, not oscillate");
    }

    #[test]
    fn layer_switching_costs_distinctness_efficiency() {
        // A receiver whose bottleneck sits between levels keeps oscillating,
        // which is exactly the effect the paper reports: duplicates appear at
        // moderate loss because of subscription changes.
        let code = code();
        let session = LayeredSession::new(6, code.n(), 2, 1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let r = session.simulate_receiver(&code, 3.0, 0.10, &mut rng);
        assert!(r.complete);
        assert!(r.distinctness_efficiency() <= 1.0);
        assert!(r.reception_efficiency() > 0.3);
    }
}
