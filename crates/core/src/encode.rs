//! The Tornado encoder: computing every check packet of the cascade plus the
//! final-code check packets.
//!
//! Encoding is a single pass over the cascade (Figure 1 of the paper): each
//! level-`i+1` packet is the XOR of its neighbours in level `i`, and the final
//! level is additionally stretched by the conventional MDS code.  The total
//! work is one XOR per graph edge plus the final block — the
//! `(k + ℓ) ln(1/ε) P` encoding time of Table 1.

use crate::cascade::Cascade;
use crate::error::{Result, TornadoError};
use df_gf::field::xor_slice;

/// Produce the full encoding of `source`: `n` packets whose first `k` are the
/// source packets themselves (the code is systematic).
///
/// Any packet length works: a GF(2^16) final block pads odd-length packets
/// internally (its check packets then carry two extra bytes; see
/// [`crate::cascade::FinalCode`]).
///
/// # Errors
///
/// Returns [`TornadoError::MalformedInput`] if the source packet count does
/// not match the cascade's `k` or the packets have inconsistent lengths, and
/// propagates final-code errors.
pub fn encode(cascade: &Cascade, source: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
    if source.len() != cascade.k() {
        return Err(TornadoError::MalformedInput {
            reason: format!(
                "expected {} source packets, got {}",
                cascade.k(),
                source.len()
            ),
        });
    }
    let len = source.first().map(|p| p.len()).unwrap_or(0);
    if len == 0 || source.iter().any(|p| p.len() != len) {
        return Err(TornadoError::MalformedInput {
            reason: "source packets must be non-empty and of equal length".to_string(),
        });
    }

    let mut encoding: Vec<Vec<u8>> = Vec::with_capacity(cascade.n());
    encoding.extend(source.iter().cloned());

    // Cascade levels: level i+1 packets are XORs over level i.
    for (level, graph) in cascade.graphs().iter().enumerate() {
        let left_offset = cascade.level_offset(level);
        let mut next_level: Vec<Vec<u8>> = Vec::with_capacity(graph.right());
        for c in 0..graph.right() {
            let mut acc = vec![0u8; len];
            for &l in graph.check_neighbors(c) {
                xor_slice(&mut acc, &encoding[left_offset + l as usize]);
            }
            next_level.push(acc);
        }
        encoding.extend(next_level);
    }

    // Final conventional code over the last level, read in place.
    let last_level = cascade.num_levels() - 1;
    let offset = cascade.level_offset(last_level);
    let size = cascade.level_sizes()[last_level];
    let checks = cascade
        .final_code()
        .encode_checks(&encoding[offset..offset + size])?;
    encoding.extend(checks);

    debug_assert_eq!(encoding.len(), cascade.n());
    Ok(encoding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::Cascade;
    use crate::profile::TORNADO_A;
    use df_gf::field::xor_slice;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_source(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn encoding_is_systematic_and_complete() {
        let cascade = Cascade::build(300, TORNADO_A, 1).unwrap();
        let src = random_source(300, 40, 1);
        let enc = encode(&cascade, &src).unwrap();
        assert_eq!(enc.len(), cascade.n());
        assert_eq!(&enc[..300], &src[..]);
        assert!(enc.iter().all(|p| p.len() == 40));
    }

    #[test]
    fn check_packets_satisfy_their_constraints() {
        let cascade = Cascade::build(400, TORNADO_A, 2).unwrap();
        let src = random_source(400, 16, 2);
        let enc = encode(&cascade, &src).unwrap();
        for (level, graph) in cascade.graphs().iter().enumerate() {
            let left_offset = cascade.level_offset(level);
            let check_offset = cascade.level_offset(level + 1);
            for c in 0..graph.right() {
                let mut acc = vec![0u8; 16];
                for &l in graph.check_neighbors(c) {
                    xor_slice(&mut acc, &enc[left_offset + l as usize]);
                }
                assert_eq!(acc, enc[check_offset + c], "level {level} check {c}");
            }
        }
    }

    #[test]
    fn wrong_source_count_rejected() {
        let cascade = Cascade::build(10, TORNADO_A, 3).unwrap();
        let src = random_source(9, 8, 3);
        assert!(encode(&cascade, &src).is_err());
    }

    #[test]
    fn inconsistent_lengths_rejected() {
        let cascade = Cascade::build(3, TORNADO_A, 4).unwrap();
        let src = vec![vec![1u8; 8], vec![2u8; 8], vec![3u8; 9]];
        assert!(encode(&cascade, &src).is_err());
        let empty = vec![vec![], vec![], vec![]];
        assert!(encode(&cascade, &empty).is_err());
    }

    #[test]
    fn odd_packet_length_round_trips_through_large_final_block() {
        // A cascade whose final block exceeds 256 packets uses GF(2^16);
        // odd packet lengths used to hard-error here, and must now be handled
        // transparently by the final code's padding scheme.
        use crate::decode::{AddOutcome, PayloadDecoder};
        use rand::seq::SliceRandom;

        let cascade = Cascade::build(2000, crate::profile::TORNADO_B, 5).unwrap();
        assert!(cascade.final_code().n() > 256, "premise: GF(2^16) final");
        let src = random_source(2000, 7, 5);
        let enc = encode(&cascade, &src).expect("odd lengths must encode");
        // Cascade-level packets keep the original length; GF(2^16) check
        // packets carry the two padding/marker bytes.
        assert!(enc[..cascade.rs_offset()].iter().all(|p| p.len() == 7));
        assert!(enc[cascade.rs_offset()..].iter().all(|p| p.len() == 9));

        let mut order: Vec<usize> = (0..cascade.n()).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(55));
        let mut dec = PayloadDecoder::new(&cascade);
        for &i in &order {
            if dec.add_packet_ref(i, &enc[i]).unwrap() == AddOutcome::Complete {
                break;
            }
        }
        assert!(dec.is_complete());
        assert_eq!(dec.source().unwrap(), src);
    }
}
