//! Error types for Tornado code construction, encoding and decoding.

/// Errors produced by the `df-core` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TornadoError {
    /// The requested code parameters are unsupported.
    InvalidParameters {
        /// Description of what was wrong.
        reason: String,
    },
    /// The caller supplied packets whose count or lengths are inconsistent
    /// with the code parameters.
    MalformedInput {
        /// Description of the inconsistency.
        reason: String,
    },
    /// The decoder has not yet received enough packets to reconstruct the
    /// source data.  Unlike an MDS code this is not a fixed threshold: it
    /// depends on *which* packets arrived (the reception-overhead variation
    /// of Figure 2 in the paper).
    NeedMorePackets {
        /// Number of distinct encoding packets received so far.
        received: usize,
        /// Number of source packets (`k`); useful to compute the overhead so
        /// far as `received as f64 / k as f64 - 1.0`.
        k: usize,
    },
    /// An error bubbled up from the Reed–Solomon code protecting the final
    /// cascade level.
    FinalLevelCode(String),
}

impl std::fmt::Display for TornadoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornadoError::InvalidParameters { reason } => {
                write!(f, "invalid Tornado code parameters: {reason}")
            }
            TornadoError::MalformedInput { reason } => write!(f, "malformed input: {reason}"),
            TornadoError::NeedMorePackets { received, k } => write!(
                f,
                "cannot reconstruct source yet: {received} packets received for k = {k}"
            ),
            TornadoError::FinalLevelCode(msg) => {
                write!(f, "final-level Reed-Solomon code failed: {msg}")
            }
        }
    }
}

impl std::error::Error for TornadoError {}

impl From<df_rs::RsError> for TornadoError {
    fn from(value: df_rs::RsError) -> Self {
        TornadoError::FinalLevelCode(value.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TornadoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = TornadoError::NeedMorePackets {
            received: 900,
            k: 1000,
        };
        let msg = e.to_string();
        assert!(msg.contains("900"));
        assert!(msg.contains("1000"));
    }

    #[test]
    fn rs_error_converts() {
        let rs = df_rs::RsError::NotEnoughPackets { have: 1, need: 2 };
        let e: TornadoError = rs.into();
        assert!(matches!(e, TornadoError::FinalLevelCode(_)));
    }
}
